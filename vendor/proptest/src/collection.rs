//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications: an exact length, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element`-generated values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
