//! Strategies: how test-case values are generated.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for one test parameter.
///
/// Unlike the real crate there is no value tree and no shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase, for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies!((A, B), (A, B, C), (A, B, C, D));

macro_rules! impl_int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span) as $ty
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range {:?}", self);
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range {lo}..={hi}");
        // 53-bit fraction over [0, 1] *inclusive*, so both endpoints (e.g.
        // probability 0 and 1) are reachable.
        let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + t * (hi - lo)
    }
}
