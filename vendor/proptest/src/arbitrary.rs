//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The whole-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
