//! Offline property-testing harness exposing the subset of proptest's API
//! the workspace uses: the `proptest!` macro, range / `any` / `Just` /
//! `prop_map` / `prop_oneof!` / `collection::vec` strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and values
//!   (via the assertion message) but is not minimized.
//! * **Deterministic seeding.** Each test's RNG is seeded from its name, so
//!   failures reproduce exactly run-over-run — CI cannot flake.
//! * Only the strategy combinators the workspace uses are provided.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, flip in any::<bool>()) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __pt_case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)*
                    let __pt_values = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg,)*
                    );
                    let __pt_result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __pt_result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __pt_case, config.cases, e, __pt_values,
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fail the
/// current case (with no panic unwind through the generator) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u32..=8, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=8).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            xs in prop::collection::vec(0u64..10, 2..5),
            fixed in prop::collection::vec(any::<bool>(), 7),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert_eq!(fixed.len(), 7);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)],
        ) {
            prop_assert!(v == 1 || (20..40).contains(&v), "unexpected {v}");
        }
    }

    #[test]
    fn failures_report_and_panic() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err(), "failing property must panic");
    }

    #[test]
    fn early_ok_return_is_allowed() {
        proptest! {
            fn skips(x in 0u32..10) {
                if x % 2 == 0 {
                    return Ok(());
                }
                prop_assert!(x % 2 == 1);
            }
        }
        skips();
    }
}
