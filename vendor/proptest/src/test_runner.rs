//! Configuration, per-test RNG, and the failure type threaded through
//! `prop_assert!`.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }

    /// Compatibility alias used by some call sites of the real crate.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test generator (xoshiro256++ seeded from the test's
/// fully-qualified name), so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut word = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [word(), word(), word(), word()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, span)` with zone-based rejection.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform on `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
