//! Offline shim of `parking_lot`'s `Mutex` API over `std::sync::Mutex`.
//!
//! Matches the parts of the real crate the workspace uses: `lock()` returns
//! a guard directly (no `Result`), and `into_inner()` returns the value
//! directly. Poisoning is transparently ignored, as parking_lot has no
//! poisoning — a panicked critical section simply leaves the data as-is.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_take_and_into_inner() {
        let m = Mutex::new(Some(3));
        assert_eq!(m.lock().take(), Some(3));
        assert_eq!(m.into_inner(), None);
    }

    #[test]
    fn survives_a_panicked_critical_section() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "parking_lot semantics: no poisoning");
    }
}
