//! The standard (uniform) distribution over primitive types.

use crate::Rng;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The distribution `Rng::gen` draws from: uniform over the type's domain
/// (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
