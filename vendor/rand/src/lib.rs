//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! small slice of `rand` 0.8 that the simulators use is vendored here:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++), seedable from a `u64`.
//! * [`SeedableRng::seed_from_u64`] — the only construction path the
//!   workspace uses; every stream is derived deterministically.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the primitive
//!   types the simulators draw (`u32`/`u64`/`usize`/`f64`/`bool`).
//!
//! The statistical quality requirements are those of a simulation RNG:
//! xoshiro256++ passes BigCrush and the integer ranges use zone-based
//! rejection, so no modulo bias enters the collision draws. The stream is
//! **not** bit-compatible with upstream `rand`; determinism guarantees in
//! this repository are internal (same seed ⇒ same run), which is all the
//! sweeps rely on.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// A source of random 64-bit words. Object-safe core of [`Rng`].
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard (uniform) distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion, so
    /// nearby seeds yield unrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by zone-based rejection (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Largest multiple of `span` that fits in u64, minus one.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range: {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range: {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is valid.
                    return rng.next_u64() as $ty;
                }
                lo + uniform_below(rng, span) as $ty
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range: {:?}", self);
        let f: f64 = Standard.sample(rng); // [0, 1)
        self.start + f * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let a = SmallRng::seed_from_u64(1).next_u64();
        let b = SmallRng::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "streams too similar");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn unit_floats_cover_and_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn small_ranges_are_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed histogram: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        // gen draws from [0, 1), so p = 1.0 always succeeds.
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn references_also_implement_rng() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
