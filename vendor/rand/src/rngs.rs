//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm `rand`'s `SmallRng` uses on 64-bit targets.
///
/// Fast (4 u64 of state, a handful of ops per word), equidistributed, and
/// passes BigCrush; entirely unsuitable for cryptography, which is fine for
/// a simulation workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> SmallRng {
        // Expand the seed with SplitMix64, as rand_xoshiro documents; the
        // all-zero state (unreachable this way) would be a fixed point.
        let mut x = state;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_xoshiro256plusplus_reference_vectors() {
        // Reference sequence for the state {1, 2, 3, 4} from the official
        // xoshiro256plusplus.c implementation (Blackman & Vigna).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn state_never_collapses_to_zero() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..1_000 {
            rng.next_u64();
        }
        assert_ne!(rng.s, [0, 0, 0, 0]);
    }
}
