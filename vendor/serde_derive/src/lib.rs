//! No-op `#[derive(Serialize, Deserialize)]` companions to the vendored
//! `serde` shim.
//!
//! The workspace derives the traits on its data types so the structure is
//! serialization-ready, but nothing in the workspace bounds on the traits
//! yet (CSV output is hand-rendered), so the derives validate nothing and
//! emit no code. When real serialization lands, these become real derives —
//! or the shim is replaced by upstream serde wholesale.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
