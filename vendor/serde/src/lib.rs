//! Offline shim of the `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` names — trait and derive-macro —
//! so data types across the workspace can declare themselves
//! serialization-ready. The derives are no-ops (see `serde_derive`); no
//! code in the workspace currently bounds on these traits.

/// Marker for types that will serialize once a real serde is available.
pub trait Serialize {}

/// Marker for types that will deserialize once a real serde is available.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
