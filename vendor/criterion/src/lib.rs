//! Offline micro-benchmark harness exposing the subset of criterion's API
//! the workspace benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros, `black_box`).
//!
//! Measurement model: per bench function, warm up for `warm_up_time`, then
//! collect `sample_size` samples; each sample runs a batch of iterations
//! sized so a sample lasts roughly `measurement_time / sample_size`. The
//! median and min/max of the per-iteration time are printed to stderr —
//! enough to compare hot paths run-over-run, without the statistical
//! machinery (or report output) of the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("── group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &id, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs the
/// workload for one sample.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Wall time the sample's iterations took.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    // Warm-up: also discovers the iteration cost so samples can be batched.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        warm_iters += b.iters;
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

    let sample_budget = c.measurement_time.as_nanos() / c.sample_size.max(1) as u128;
    let iters_per_sample = (sample_budget / per_iter.max(1)).clamp(1, 1 << 24) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);
    eprintln!(
        "{id:<48} median {:>12} [min {}, max {}] × {iters_per_sample} iters/sample",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// `criterion_group! { name = benches; config = expr; targets = f1, f2 }`
/// or `criterion_group!(benches, f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
