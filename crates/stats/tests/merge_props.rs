//! Property tests for the `MergeableAccumulator` seam: merging sharded
//! partial state must be associative and must agree — bit-for-bit — with
//! folding every trial sequentially into one accumulator, because the
//! process-sharded sweep pipeline reports merged state as if it came from a
//! single run.

use contention_core::merge::MergeableAccumulator;
use contention_stats::stream::{Extrema, StreamingSample};
use proptest::prelude::*;

const MAX_SHARDS: u32 = 4;

/// Per-trial values with a shard assignment each — an arbitrary (not
/// necessarily contiguous) partition of the trials across `MAX_SHARDS`
/// shards, including possibly-empty shards.
fn trials_strategy() -> impl Strategy<Value = Vec<(f64, u32)>> {
    prop::collection::vec((0.0f64..1e9, 0u32..MAX_SHARDS), 1..48)
}

/// Builds one partial sample per shard from the assigned trials.
fn sharded_samples(trials: &[(f64, u32)]) -> Vec<StreamingSample> {
    let mut shards: Vec<StreamingSample> = (0..MAX_SHARDS)
        .map(|_| StreamingSample::new(trials.len()))
        .collect();
    for (t, &(value, shard)) in trials.iter().enumerate() {
        shards[shard as usize].record(t, value);
    }
    shards
}

/// The bit image of a sample's raw buffer (NaN sentinels included).
fn bits(s: &StreamingSample) -> Vec<u64> {
    s.raw().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-shard samples — in any grouping — reproduces the
    /// sequential fold bit-for-bit.
    #[test]
    fn sample_merge_agrees_with_sequential_fold(trials in trials_strategy()) {
        let mut sequential = StreamingSample::new(trials.len());
        for (t, &(value, _)) in trials.iter().enumerate() {
            sequential.record(t, value);
        }

        // Left fold: ((s0 + s1) + s2) + s3.
        let mut shards = sharded_samples(&trials).into_iter();
        let mut left = shards.next().expect("shards");
        for shard in shards {
            left.merge(shard);
        }
        prop_assert_eq!(bits(&left), bits(&sequential));

        // Right fold: s0 + (s1 + (s2 + s3)) — associativity.
        let mut right = None;
        for shard in sharded_samples(&trials).into_iter().rev() {
            let mut acc = shard;
            if let Some(prev) = right.take() {
                acc.merge(prev);
            }
            right = Some(acc);
        }
        prop_assert_eq!(bits(&right.expect("shards")), bits(&sequential));
    }

    /// Partial merges stay partial and never invent or lose trials: the
    /// union of any prefix of shards holds exactly that prefix's trials.
    #[test]
    fn sample_merge_preserves_fill_counts(trials in trials_strategy()) {
        let shards = sharded_samples(&trials);
        let mut acc = StreamingSample::new(trials.len());
        let mut expected = 0;
        for (i, shard) in shards.into_iter().enumerate() {
            expected += trials.iter().filter(|&&(_, s)| s as usize == i).count();
            acc.merge(shard);
            prop_assert_eq!(acc.filled(), expected, "after shard {}", i);
        }
        prop_assert!(acc.is_complete());
    }

    /// A duplicated shard violates exactly-once across the merge boundary
    /// and must be rejected (fallible path — no panic).
    #[test]
    fn duplicate_shard_is_rejected(trials in trials_strategy()) {
        let shards = sharded_samples(&trials);
        // Find a non-empty shard to duplicate; skip degenerate cases.
        let Some(dup) = shards.iter().find(|s| s.filled() > 0) else {
            unreachable!("some shard holds a trial");
        };
        let mut acc = dup.clone();
        let err = acc.try_merge(dup.clone()).unwrap_err();
        prop_assert!(err.contains("more than one operand"), "{}", err);
    }

    /// Extrema: merging per-shard state in either association equals the
    /// sequential fold, bit-for-bit (count, min, max).
    #[test]
    fn extrema_merge_agrees_with_sequential_fold(trials in trials_strategy()) {
        let mut sequential = Extrema::new();
        for &(value, _) in &trials {
            sequential.record(value);
        }

        let mut shards: Vec<Extrema> = (0..MAX_SHARDS).map(|_| Extrema::new()).collect();
        for &(value, shard) in &trials {
            shards[shard as usize].record(value);
        }

        let mut left = Extrema::new();
        for shard in &shards {
            left.merge(*shard);
        }
        let mut right = Extrema::new();
        for shard in shards.iter().rev() {
            right.merge(*shard);
        }
        for merged in [left, right] {
            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert_eq!(merged.min().to_bits(), sequential.min().to_bits());
            prop_assert_eq!(merged.max().to_bits(), sequential.max().to_bits());
        }
    }
}
