//! Ordinary least squares with slope inference.
//!
//! Figure 14 fits "a linear regression model of LLB − BEB on the
//! [payload size]" and reports the slope (≈ +700 µs per extra 100 B) and
//! that it is "statistically significant (p-value less than 0.001)". This
//! module provides exactly that: OLS fit, standard error of the slope, the
//! t statistic, and a two-sided p-value from the Student-t distribution.

use crate::special::two_sided_p;
use serde::{Deserialize, Serialize};

/// Result of an OLS fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Standard error of the slope estimate.
    pub slope_std_err: f64,
    /// t statistic for H0: slope = 0.
    pub t_statistic: f64,
    /// Two-sided p-value for H0: slope = 0.
    pub p_value: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residual degrees of freedom (n − 2).
    pub df: usize,
}

/// Fits `y` on `x` by ordinary least squares.
///
/// Requires at least 3 points (otherwise no residual degrees of freedom) and
/// non-constant `x`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x and y must pair up");
    let n = x.len();
    assert!(n >= 3, "need at least 3 points, got {n}");

    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let sxx: f64 = x.iter().map(|xi| (xi - mean_x) * (xi - mean_x)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = x
        .iter()
        .zip(y)
        .map(|(xi, yi)| (xi - mean_x) * (yi - mean_y))
        .sum();

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(xi, yi)| {
            let e = yi - (intercept + slope * xi);
            e * e
        })
        .sum();
    let ss_tot: f64 = y.iter().map(|yi| (yi - mean_y) * (yi - mean_y)).sum();
    let df = n - 2;
    let sigma2 = ss_res / df as f64;
    let slope_std_err = (sigma2 / sxx).sqrt();
    let t_statistic = if slope_std_err == 0.0 {
        // Perfect fit: report an effectively-infinite statistic.
        f64::INFINITY * slope.signum()
    } else {
        slope / slope_std_err
    };
    let p_value = if t_statistic.is_infinite() {
        0.0
    } else {
        two_sided_p(t_statistic, df as f64)
    };
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    LinearFit {
        slope,
        intercept,
        slope_std_err,
        t_statistic,
        p_value,
        r_squared,
        df,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|xi| 3.0 * xi + 2.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert_eq!(fit.p_value, 0.0);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_slope_under_noise() {
        let mut rng = SmallRng::seed_from_u64(99);
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|xi| 7.0 * xi + 100.0 + (rng.gen::<f64>() - 0.5) * 20.0)
            .collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 7.0).abs() < 0.05, "slope {}", fit.slope);
        assert!(fit.p_value < 1e-6);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn no_relationship_gives_large_p() {
        // y is pure noise: slope should not be significant.
        let mut rng = SmallRng::seed_from_u64(3);
        let x: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..60).map(|_| rng.gen::<f64>()).collect();
        let fit = linear_fit(&x, &y);
        assert!(fit.p_value > 0.01, "spurious significance: {:?}", fit);
        assert!(fit.r_squared < 0.2);
    }

    #[test]
    fn negative_slope_is_signed() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|xi| -2.0 * xi + 5.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope + 2.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_standard_error() {
        // Small worked example: x = 1..5, y = (2, 4, 5, 4, 5).
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 5.0, 4.0, 5.0];
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 0.6).abs() < 1e-12);
        assert!((fit.intercept - 2.2).abs() < 1e-12);
        // SSres = 2.4, sigma² = 0.8, SE = sqrt(0.8/10) ≈ 0.2828.
        assert!((fit.slope_std_err - (0.08f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let _ = linear_fit(&[1.0, 2.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must not be constant")]
    fn constant_x_panics() {
        let _ = linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }
}
