//! # contention-stats
//!
//! The statistical toolkit the paper's evaluation relies on:
//!
//! * [`summary`] — medians, quartiles, means, standard deviations.
//! * [`outliers`] — the paper's rule (§III-A, footnote 4): with
//!   `Δ = Q3 − Q1`, discard points farther than `1.5Δ` from the *median*.
//! * [`ci`] — 95 % confidence intervals for the median (distribution-free
//!   order-statistic method, plus a bootstrap cross-check), as drawn on every
//!   figure.
//! * [`regression`] — ordinary least squares with a two-sided t-test on the
//!   slope (Figure 14's "p-value less than 0.001").
//! * [`special`] — ln Γ, the regularized incomplete beta function, and the
//!   Student-t CDF backing the p-values.
//! * [`histogram`] — a fixed-footprint log-bucketed latency histogram
//!   ([`histogram::LatencyHistogram`]) for streaming percentile queries
//!   over millions of samples (exact mean/max, nearest-rank percentiles,
//!   bucket-wise merge).
//! * [`stream`] — order-independent streaming collectors
//!   ([`stream::StreamingSample`], [`stream::Extrema`]) that feed the
//!   pipeline above from the sweep engine's fold seam without retaining
//!   full per-trial records.

pub mod ci;
pub mod histogram;
pub mod outliers;
pub mod regression;
pub mod special;
pub mod stream;
pub mod summary;

pub use ci::{bootstrap_median_ci, median_ci95};
pub use histogram::LatencyHistogram;
pub use outliers::filter_outliers;
pub use regression::{linear_fit, LinearFit};
pub use stream::{Extrema, StreamingSample};
pub use summary::Summary;
