//! Fixed-footprint log-bucketed latency histogram (HDR-style, base 2 with
//! 64 sub-buckets per octave).
//!
//! The dynamic-traffic engine records one latency per completed packet. A
//! sorted `Vec<u64>` makes percentile queries exact but costs O(completed)
//! memory and an O(k log k) sort per trial — unacceptable once a trial
//! sustains millions of arrivals. This histogram is the streaming
//! replacement: a fixed array of 3 776 counters (~30 KiB) whose bucket
//! boundaries grow geometrically, giving
//!
//! * **exact** values for samples `< 128` (buckets of width 1),
//! * relative error `< 1/64` (~1.6 %) above that,
//! * an **exact** mean (the sum is kept as a `u128`), and
//! * an **exact** maximum (tracked separately from the buckets).
//!
//! Percentiles use the nearest-rank definition: `percentile(q)` is the
//! smallest recorded value `v` such that at least `ceil(q · n)` samples are
//! `≤ v` (reported as the lower bound of `v`'s bucket). This is the
//! *corrected* rank — the pre-histogram implementation truncated
//! `(n · q) as usize`, biasing small-sample percentiles one rank high.
//!
//! Histograms merge by bucket-wise addition, so per-shard histograms combine
//! into exactly the histogram a single process would have produced — the
//! property [`contention_core::merge::MergeableAccumulator`] demands of
//! everything on the shard seam (the impl lives with `DynamicMetrics` in
//! `contention-slotted`; this crate stays dependency-light).

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of two.
const SUB_BITS: u32 = 6;
const SUBS: u64 = 1 << SUB_BITS;
/// Buckets 0..128 are exact; octaves 7..=63 contribute 64 buckets each.
const BUCKETS: usize = (2 * SUBS as usize) + SUBS as usize * (63 - SUB_BITS as usize);

/// Streaming log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Bucket index for a sample value.
#[inline]
fn index_of(v: u64) -> usize {
    if v < 2 * SUBS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = (v >> (msb - SUB_BITS)) & (SUBS - 1);
        (((msb - SUB_BITS) as u64) * SUBS + SUBS + sub) as usize
    }
}

/// Lower bound of the bucket at `idx` (the value `percentile` reports).
#[inline]
fn value_of(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < 2 * SUBS {
        idx
    } else {
        let msb = (idx >> SUB_BITS) + SUB_BITS as u64 - 1;
        let sub = idx & (SUBS - 1);
        (SUBS + sub) << (msb - SUB_BITS as u64)
    }
}

impl LatencyHistogram {
    /// An empty histogram. Allocates its counter array once, up front.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank percentile, `q ∈ (0, 1]`: the bucket lower bound of the
    /// `ceil(q · n)`-th smallest sample (0 if empty). Exact for values
    /// `< 128`; relative error `< 1/64` above. `q = 1` returns the exact
    /// maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return value_of(idx);
            }
        }
        self.max
    }

    /// Reset to empty without freeing the counter array.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Bucket-wise merge: `self` afterwards equals the histogram of the
    /// concatenated sample streams.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every representable value maps to a bucket whose lower bound is
        // ≤ the value, and bucket lower bounds strictly increase.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let lo = value_of(idx);
            assert_eq!(index_of(lo), idx, "lower bound must map back to bucket");
            if let Some(p) = prev {
                assert!(lo > p, "bucket bounds must increase: {p} !< {lo}");
            }
            prev = Some(lo);
        }
        for v in [0u64, 1, 63, 64, 127, 128, 129, 1000, 1 << 20, u64::MAX] {
            let idx = index_of(v);
            assert!(idx < BUCKETS);
            assert!(value_of(idx) <= v);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..128u64 {
            h.record(v);
        }
        for v in 0..128u64 {
            let q = (v + 1) as f64 / 128.0;
            assert_eq!(h.percentile(q), v, "q={q}");
        }
    }

    #[test]
    fn nearest_rank_percentile_hand_computed_20_samples() {
        // The satellite regression test: 20 samples 1..=20. Nearest rank for
        // p95 is ceil(0.95 · 20) = 19 → the 19th smallest = 19. The
        // pre-overhaul code computed (20 · 0.95) as usize = 19 as a 0-based
        // *index*, returning the 20th smallest (= 20) instead.
        let mut h = LatencyHistogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.95), 19);
        assert_eq!(h.percentile(0.50), 10); // ceil(10.0) = rank 10
        assert_eq!(h.percentile(0.05), 1); // ceil(1.0) = rank 1
        assert_eq!(h.percentile(1.0), 20);
        assert_eq!(h.mean(), 10.5);
        assert_eq!(h.max(), 20);
        assert_eq!(h.count(), 20);
    }

    #[test]
    fn large_values_within_relative_error() {
        let mut h = LatencyHistogram::new();
        let v = 1_000_003u64;
        h.record(v);
        let p = h.percentile(0.5);
        assert!(p <= v);
        assert!((v - p) as f64 / (v as f64) < 1.0 / 64.0, "p={p}");
        assert_eq!(h.max(), v);
        assert_eq!(h.percentile(1.0), v);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [3u64, 7, 900, 12_345, 2, 2, 64] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 1 << 30, 17, 500] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.mean(), all.mean());
    }

    #[test]
    fn clear_resets_without_shrinking() {
        let mut h = LatencyHistogram::new();
        h.record(9);
        h.clear();
        assert_eq!(h, LatencyHistogram::new());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.95), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }
}
