//! 95 % confidence intervals for the median — the error bars on every figure.
//!
//! Primary method: the distribution-free order-statistic interval. For a
//! sample of size `n`, the interval `[x_(l), x_(u)]` with
//! `l = ⌊(n − 1.96√n)/2⌋` and `u = n − l` covers the median with ≥95 %
//! probability under mild assumptions. A seeded bootstrap is provided as a
//! cross-check (and for the very small samples where the order-statistic
//! ranks collapse onto the extremes).

use crate::summary::median;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Distribution-free 95 % CI for the median: `(low, high)` sample values.
pub fn median_ci95(sample: &[f64]) -> (f64, f64) {
    assert!(!sample.is_empty(), "empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n == 1 {
        return (sorted[0], sorted[0]);
    }
    let nf = n as f64;
    let half_width = 1.96 * nf.sqrt() / 2.0;
    let lo_rank = ((nf / 2.0 - half_width).floor().max(0.0)) as usize;
    let hi_rank = ((nf / 2.0 + half_width).ceil() as usize).min(n - 1);
    (sorted[lo_rank], sorted[hi_rank])
}

/// Percentile-bootstrap 95 % CI for the median with `resamples` draws.
/// Deterministic for a given `seed`.
pub fn bootstrap_median_ci(sample: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    assert!(!sample.is_empty(), "empty sample");
    assert!(resamples >= 40, "too few resamples for a 95% interval");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut medians = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; sample.len()];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = sample[rng.gen_range(0..sample.len())];
        }
        medians.push(median(&scratch));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lo = medians[(resamples as f64 * 0.025) as usize];
    let hi = medians[((resamples as f64 * 0.975) as usize).min(resamples - 1)];
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_median() {
        let sample: Vec<f64> = (0..30).map(|x| x as f64).collect();
        let m = median(&sample);
        let (lo, hi) = median_ci95(&sample);
        assert!(lo <= m && m <= hi);
        assert!(lo >= 0.0 && hi <= 29.0);
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        // Same underlying shape, more points → tighter interval.
        let small: Vec<f64> = (0..20).map(|x| (x % 10) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|x| (x % 10) as f64).collect();
        let (lo_s, hi_s) = median_ci95(&small);
        let (lo_l, hi_l) = median_ci95(&large);
        assert!(hi_l - lo_l <= hi_s - lo_s);
    }

    #[test]
    fn singleton_and_pair() {
        assert_eq!(median_ci95(&[7.0]), (7.0, 7.0));
        let (lo, hi) = median_ci95(&[1.0, 2.0]);
        assert!(lo <= hi);
    }

    #[test]
    fn bootstrap_brackets_median_and_is_deterministic() {
        let sample: Vec<f64> = (0..50).map(|x| (x * 3 % 17) as f64).collect();
        let m = median(&sample);
        let a = bootstrap_median_ci(&sample, 500, 42);
        let b = bootstrap_median_ci(&sample, 500, 42);
        assert_eq!(a, b);
        assert!(a.0 <= m && m <= a.1);
    }

    #[test]
    fn methods_roughly_agree() {
        let sample: Vec<f64> = (0..100).map(|x| 50.0 + ((x * 7919) % 23) as f64).collect();
        let (lo_o, hi_o) = median_ci95(&sample);
        let (lo_b, hi_b) = bootstrap_median_ci(&sample, 2_000, 1);
        // Same ballpark: intervals overlap.
        assert!(lo_o <= hi_b && lo_b <= hi_o);
    }

    #[test]
    fn coverage_on_synthetic_data() {
        // Empirical coverage check: for 200 samples of size 30 from a known
        // distribution with true median 0.5, the interval should cover ≥ 85 %
        // of the time (being conservative about the discrete rank bound).
        let mut rng = SmallRng::seed_from_u64(7);
        let mut covered = 0;
        for _ in 0..200 {
            let sample: Vec<f64> = (0..30).map(|_| rng.gen::<f64>()).collect();
            let (lo, hi) = median_ci95(&sample);
            if lo <= 0.5 && 0.5 <= hi {
                covered += 1;
            }
        }
        assert!(covered >= 170, "coverage only {covered}/200");
    }
}
