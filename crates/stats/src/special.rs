//! Special functions backing the regression p-values.
//!
//! Implemented from the classic numerically-stable recipes (Lanczos ln Γ,
//! Lentz continued fraction for the regularized incomplete beta) so the crate
//! stays dependency-free. Accuracy ~1e-10 over the ranges the t-test needs.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function I_x(a, b) via Lentz's continued
/// fraction with the standard symmetry switch for convergence.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai requires positive parameters");
    assert!(
        (0.0..=1.0).contains(&x),
        "betai requires 0 ≤ x ≤ 1, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t statistic.
pub fn two_sided_p(t: f64, df: f64) -> f64 {
    2.0 * (1.0 - student_t_cdf(t.abs(), df))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10); // Γ(1) = 1
        assert!((ln_gamma(2.0)).abs() < 1e-10); // Γ(2) = 1
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10); // Γ(5) = 24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries_and_symmetry() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let v = betai(2.5, 1.5, 0.3);
        let w = 1.0 - betai(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x.
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_cdf_matches_tables() {
        // t = 0 → 0.5 for all df.
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // df=1 (Cauchy): CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
        // df=10, t=2.228: CDF ≈ 0.975 (classic 95% two-sided critical value).
        assert!((student_t_cdf(2.228, 10.0) - 0.975).abs() < 2e-4);
        // Large df approaches the normal: CDF(1.96, 10_000) ≈ 0.975.
        assert!((student_t_cdf(1.96, 10_000.0) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn two_sided_p_values() {
        // |t| = 2.228 at df = 10 → p ≈ 0.05.
        assert!((two_sided_p(2.228, 10.0) - 0.05).abs() < 5e-4);
        assert!((two_sided_p(-2.228, 10.0) - 0.05).abs() < 5e-4);
        // Huge t → vanishing p.
        assert!(two_sided_p(50.0, 30.0) < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut last = 0.0;
        for i in -40..=40 {
            let c = student_t_cdf(i as f64 / 4.0, 5.0);
            assert!(c >= last - 1e-12);
            last = c;
        }
    }
}
