//! Streaming per-metric collectors for the sweep engine's fold seam.
//!
//! The engine delivers each trial's result to its cell exactly once, but in
//! whatever order the workers finish. Both collectors here are immune to
//! that order by construction:
//!
//! * [`StreamingSample`] — a position-addressed flat `f64` buffer: trial `t`
//!   writes slot `t`, so the final buffer is in trial order bit-for-bit
//!   regardless of scheduling. This is what feeds the paper's
//!   outlier → median → CI pipeline, at 8 bytes per (trial, metric) instead
//!   of a full per-trial summary.
//! * [`Extrema`] — count / min / max in O(1) memory; min and max are exact
//!   and commutative, so this stays deterministic too. For sweeps that only
//!   need bounds or a completion count.

/// A flat per-trial sample buffer addressed by trial index.
///
/// Unfilled slots hold NaN as a sentinel; [`StreamingSample::values`]
/// asserts completeness, which doubles as an exactly-once check on the
/// engine's delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSample {
    values: Vec<f64>,
}

impl StreamingSample {
    /// A buffer awaiting `trials` recordings.
    pub fn new(trials: usize) -> StreamingSample {
        StreamingSample {
            values: vec![f64::NAN; trials],
        }
    }

    /// Records trial `trial`'s value. Values must be non-NaN (every metric
    /// is a count or a time) and each slot must be written exactly once.
    pub fn record(&mut self, trial: usize, value: f64) {
        assert!(!value.is_nan(), "metric values must not be NaN");
        let slot = &mut self.values[trial];
        assert!(slot.is_nan(), "trial {trial} recorded twice");
        *slot = value;
    }

    /// Number of slots (trials), filled or not.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True once every trial has been recorded.
    pub fn is_complete(&self) -> bool {
        !self.values.iter().any(|v| v.is_nan())
    }

    /// The complete sample in trial order; panics if any trial is missing.
    pub fn values(&self) -> &[f64] {
        assert!(
            self.is_complete(),
            "sample incomplete: {} of {} trials recorded",
            self.values.iter().filter(|v| !v.is_nan()).count(),
            self.values.len()
        );
        &self.values
    }

    /// Bytes this collector retains per trial: one `f64`.
    pub const BYTES_PER_TRIAL: usize = std::mem::size_of::<f64>();
}

/// Exact count / min / max in constant memory.
///
/// Every operation is commutative and exact (no floating-point rounding
/// depends on order), so a sweep folded through `Extrema` is bit-identical
/// across thread counts and batch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    count: u64,
    min: f64,
    max: f64,
}

impl Default for Extrema {
    fn default() -> Extrema {
        Extrema {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Extrema {
    pub fn new() -> Extrema {
        Extrema::default()
    }

    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "metric values must not be NaN");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (+∞ before any recording).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (−∞ before any recording).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_order_independent() {
        let mut forward = StreamingSample::new(4);
        let mut backward = StreamingSample::new(4);
        for t in 0..4 {
            forward.record(t, t as f64 * 1.5);
        }
        for t in (0..4).rev() {
            backward.record(t, t as f64 * 1.5);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.values(), &[0.0, 1.5, 3.0, 4.5]);
    }

    #[test]
    fn completeness_is_tracked() {
        let mut s = StreamingSample::new(2);
        assert!(!s.is_complete());
        s.record(1, 7.0);
        assert!(!s.is_complete());
        s.record(0, 3.0);
        assert!(s.is_complete());
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn double_recording_panics() {
        let mut s = StreamingSample::new(2);
        s.record(0, 1.0);
        s.record(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn reading_an_incomplete_sample_panics() {
        let mut s = StreamingSample::new(2);
        s.record(0, 1.0);
        let _ = s.values();
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_values_are_rejected() {
        let mut s = StreamingSample::new(1);
        s.record(0, f64::NAN);
    }

    #[test]
    fn empty_sample_is_trivially_complete() {
        let s = StreamingSample::new(0);
        assert!(s.is_empty());
        assert!(s.is_complete());
        assert!(s.values().is_empty());
    }

    #[test]
    fn extrema_tracks_bounds_in_any_order() {
        let mut a = Extrema::new();
        let mut b = Extrema::new();
        let values = [3.0, -1.0, 7.5, 0.0];
        for v in values {
            a.record(v);
        }
        for v in values.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a, b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.max(), 7.5);
    }

    #[test]
    fn extrema_starts_empty() {
        let e = Extrema::new();
        assert_eq!(e.count(), 0);
        assert!(e.min().is_infinite() && e.min() > 0.0);
        assert!(e.max().is_infinite() && e.max() < 0.0);
    }
}
