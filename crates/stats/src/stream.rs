//! Streaming per-metric collectors for the sweep engine's fold seam.
//!
//! The engine delivers each trial's result to its cell exactly once, but in
//! whatever order the workers finish. Both collectors here are immune to
//! that order by construction:
//!
//! * [`StreamingSample`] — a position-addressed flat `f64` buffer: trial `t`
//!   writes slot `t`, so the final buffer is in trial order bit-for-bit
//!   regardless of scheduling. This is what feeds the paper's
//!   outlier → median → CI pipeline, at 8 bytes per (trial, metric) instead
//!   of a full per-trial summary.
//! * [`Extrema`] — count / min / max in O(1) memory; min and max are exact
//!   and commutative, so this stays deterministic too. For sweeps that only
//!   need bounds or a completion count.

use contention_core::merge::{DedupMergeableAccumulator, MergeStats, MergeableAccumulator};

/// A flat per-trial sample buffer addressed by trial index.
///
/// Unfilled slots hold NaN as a sentinel; [`StreamingSample::values`]
/// asserts completeness, which doubles as an exactly-once check on the
/// engine's delivery. The same sentinel is what makes partial buffers
/// mergeable across processes: a merge unions the filled slots of two
/// buffers and rejects any slot both sides filled, so the exactly-once
/// invariant extends across shard boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSample {
    values: Vec<f64>,
}

impl StreamingSample {
    /// A buffer awaiting `trials` recordings.
    pub fn new(trials: usize) -> StreamingSample {
        StreamingSample {
            values: vec![f64::NAN; trials],
        }
    }

    /// Records trial `trial`'s value. Values must be non-NaN (every metric
    /// is a count or a time) and each slot must be written exactly once.
    pub fn record(&mut self, trial: usize, value: f64) {
        assert!(!value.is_nan(), "metric values must not be NaN");
        let slot = &mut self.values[trial];
        assert!(slot.is_nan(), "trial {trial} recorded twice");
        *slot = value;
    }

    /// Number of slots (trials), filled or not.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True once every trial has been recorded.
    pub fn is_complete(&self) -> bool {
        !self.values.iter().any(|v| v.is_nan())
    }

    /// The complete sample in trial order; panics if any trial is missing.
    pub fn values(&self) -> &[f64] {
        assert!(
            self.is_complete(),
            "sample incomplete: {} of {} trials recorded",
            self.values.iter().filter(|v| !v.is_nan()).count(),
            self.values.len()
        );
        &self.values
    }

    /// Number of trials recorded so far.
    pub fn filled(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }

    /// The raw buffer, NaN sentinels included — what a partial-state
    /// artifact serializes (NaN ↔ JSON `null`).
    pub fn raw(&self) -> &[f64] {
        &self.values
    }

    /// Rebuilds a (possibly partial) buffer from its raw image — the
    /// deserialization side of [`StreamingSample::raw`]. NaN slots are
    /// "not yet recorded".
    pub fn from_raw(values: Vec<f64>) -> StreamingSample {
        StreamingSample { values }
    }

    /// Fallible merge: unions the filled slots of `other` into `self`,
    /// erroring (instead of panicking) on a shape mismatch or a slot both
    /// operands filled — for merging untrusted on-disk shard state.
    pub fn try_merge(&mut self, other: StreamingSample) -> Result<(), String> {
        if self.values.len() != other.values.len() {
            return Err(format!(
                "cannot merge samples of {} and {} trials",
                self.values.len(),
                other.values.len()
            ));
        }
        for (trial, (slot, value)) in self.values.iter_mut().zip(&other.values).enumerate() {
            if value.is_nan() {
                continue;
            }
            if !slot.is_nan() {
                return Err(format!("trial {trial} recorded by more than one operand"));
            }
            *slot = *value;
        }
        Ok(())
    }

    /// Duplicate-tolerant merge for *at-least-once* delivery — the
    /// work-distribution seam, where an expired-and-reissued lease can
    /// arrive from two workers. Unions `other`'s filled slots into `self`;
    /// a slot both sides filled is discarded as a duplicate *iff* the two
    /// values are bit-identical (position-addressed RNG streams make honest
    /// re-execution reproduce the bits exactly), and is an error otherwise
    /// — a conflicting duplicate means the operands did not run the same
    /// code on the same trial coordinates.
    pub fn try_merge_dedup(&mut self, other: StreamingSample) -> Result<MergeStats, String> {
        if self.values.len() != other.values.len() {
            return Err(format!(
                "cannot merge samples of {} and {} trials",
                self.values.len(),
                other.values.len()
            ));
        }
        let mut stats = MergeStats::default();
        for (trial, (slot, value)) in self.values.iter_mut().zip(&other.values).enumerate() {
            if value.is_nan() {
                continue;
            }
            if slot.is_nan() {
                *slot = *value;
                stats.fresh += 1;
            } else if slot.to_bits() == value.to_bits() {
                stats.duplicates += 1;
            } else {
                return Err(format!(
                    "trial {trial} recorded conflicting values ({slot} vs {value}) — \
                     operands did not run identical code"
                ));
            }
        }
        Ok(stats)
    }

    /// Bytes this collector retains per trial: one `f64`.
    pub const BYTES_PER_TRIAL: usize = std::mem::size_of::<f64>();
}

impl DedupMergeableAccumulator for StreamingSample {
    fn try_merge_dedup(&mut self, other: Self) -> Result<MergeStats, String> {
        StreamingSample::try_merge_dedup(self, other)
    }
}

impl MergeableAccumulator for StreamingSample {
    /// Slot-wise union of two disjoint partial fills. Associative and
    /// commutative because each slot is written by exactly one operand and
    /// the write is a plain copy — no arithmetic, so no rounding that could
    /// depend on merge order.
    fn merge(&mut self, other: Self) {
        self.try_merge(other).expect("mergeable samples");
    }
}

/// Exact count / min / max in constant memory.
///
/// Every operation is commutative and exact (no floating-point rounding
/// depends on order), so a sweep folded through `Extrema` is bit-identical
/// across thread counts and batch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    count: u64,
    min: f64,
    max: f64,
}

impl Default for Extrema {
    fn default() -> Extrema {
        Extrema {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Extrema {
    pub fn new() -> Extrema {
        Extrema::default()
    }

    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "metric values must not be NaN");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (+∞ before any recording).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (−∞ before any recording).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Rebuilds the state from its three fields — the deserialization side
    /// of a partial-state artifact.
    pub fn from_parts(count: u64, min: f64, max: f64) -> Extrema {
        Extrema { count, min, max }
    }
}

impl MergeableAccumulator for Extrema {
    /// Exact component-wise combine: counts add, bounds take min/max. All
    /// three operations are associative and commutative with no rounding,
    /// so shard merges in any grouping reproduce the sequential fold
    /// bit-for-bit. (The ±∞ identities of a fresh accumulator make the
    /// empty shard a no-op.)
    fn merge(&mut self, other: Self) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_order_independent() {
        let mut forward = StreamingSample::new(4);
        let mut backward = StreamingSample::new(4);
        for t in 0..4 {
            forward.record(t, t as f64 * 1.5);
        }
        for t in (0..4).rev() {
            backward.record(t, t as f64 * 1.5);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.values(), &[0.0, 1.5, 3.0, 4.5]);
    }

    #[test]
    fn completeness_is_tracked() {
        let mut s = StreamingSample::new(2);
        assert!(!s.is_complete());
        s.record(1, 7.0);
        assert!(!s.is_complete());
        s.record(0, 3.0);
        assert!(s.is_complete());
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn double_recording_panics() {
        let mut s = StreamingSample::new(2);
        s.record(0, 1.0);
        s.record(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn reading_an_incomplete_sample_panics() {
        let mut s = StreamingSample::new(2);
        s.record(0, 1.0);
        let _ = s.values();
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_values_are_rejected() {
        let mut s = StreamingSample::new(1);
        s.record(0, f64::NAN);
    }

    #[test]
    fn empty_sample_is_trivially_complete() {
        let s = StreamingSample::new(0);
        assert!(s.is_empty());
        assert!(s.is_complete());
        assert!(s.values().is_empty());
    }

    #[test]
    fn extrema_tracks_bounds_in_any_order() {
        let mut a = Extrema::new();
        let mut b = Extrema::new();
        let values = [3.0, -1.0, 7.5, 0.0];
        for v in values {
            a.record(v);
        }
        for v in values.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a, b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.max(), 7.5);
    }

    #[test]
    fn dedup_merge_discards_identical_duplicates_and_rejects_conflicts() {
        // Overlapping fills with bit-identical values: the overlap is
        // counted as duplicates, the rest folds in as fresh.
        let mut a = StreamingSample::new(4);
        a.record(0, 1.0);
        a.record(1, 2.0);
        let mut b = StreamingSample::new(4);
        b.record(1, 2.0);
        b.record(2, 3.0);
        let stats = a.try_merge_dedup(b).unwrap();
        assert_eq!((stats.fresh, stats.duplicates), (1, 1));
        assert_eq!(a.raw()[..3], [1.0, 2.0, 3.0]);
        // A conflicting duplicate is an error naming the trial.
        let mut c = StreamingSample::new(4);
        c.record(1, 9.0);
        let err = a.try_merge_dedup(c).unwrap_err();
        assert!(err.contains("trial 1"), "{err}");
        assert!(err.contains("conflicting"), "{err}");
        // Shape mismatches still error like the strict merge.
        assert!(a
            .try_merge_dedup(StreamingSample::new(3))
            .unwrap_err()
            .contains("cannot merge"));
    }

    #[test]
    fn sample_merge_unions_disjoint_fills() {
        let mut evens = StreamingSample::new(4);
        let mut odds = StreamingSample::new(4);
        evens.record(0, 1.0);
        evens.record(2, 3.0);
        odds.record(1, 2.0);
        odds.record(3, 4.0);
        assert_eq!(evens.filled(), 2);
        evens.merge(odds);
        assert!(evens.is_complete());
        assert_eq!(evens.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn sample_try_merge_rejects_overlap_and_shape() {
        let mut a = StreamingSample::new(2);
        let mut b = StreamingSample::new(2);
        a.record(0, 1.0);
        b.record(0, 2.0);
        let err = a.clone().try_merge(b).unwrap_err();
        assert!(err.contains("trial 0"), "{err}");
        let err = a.try_merge(StreamingSample::new(3)).unwrap_err();
        assert!(err.contains("2 and 3 trials"), "{err}");
    }

    #[test]
    #[should_panic(expected = "more than one operand")]
    fn sample_merge_panics_on_double_delivery() {
        let mut a = StreamingSample::new(1);
        let mut b = StreamingSample::new(1);
        a.record(0, 1.0);
        b.record(0, 1.0);
        a.merge(b);
    }

    #[test]
    fn raw_round_trips_partial_buffers() {
        // NaN sentinels defeat PartialEq, so compare the bit images.
        let mut s = StreamingSample::new(3);
        s.record(1, 7.5);
        let rebuilt = StreamingSample::from_raw(s.raw().to_vec());
        let bits = |x: &StreamingSample| x.raw().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&rebuilt), bits(&s));
        assert_eq!(rebuilt.filled(), 1);
    }

    #[test]
    fn extrema_merge_matches_sequential_fold() {
        let values = [3.0, -1.0, 7.5, 0.0, 2.5];
        let mut sequential = Extrema::new();
        for v in values {
            sequential.record(v);
        }
        let mut left = Extrema::new();
        let mut right = Extrema::new();
        for v in &values[..2] {
            left.record(*v);
        }
        for v in &values[2..] {
            right.record(*v);
        }
        left.merge(right);
        assert_eq!(left, sequential);
        // Merging an empty accumulator is a no-op (±∞ identities).
        left.merge(Extrema::new());
        assert_eq!(left, sequential);
    }

    #[test]
    fn extrema_from_parts_round_trips() {
        let mut e = Extrema::new();
        e.record(4.0);
        e.record(-2.0);
        assert_eq!(Extrema::from_parts(e.count(), e.min(), e.max()), e);
    }

    #[test]
    fn extrema_starts_empty() {
        let e = Extrema::new();
        assert_eq!(e.count(), 0);
        assert!(e.min().is_infinite() && e.min() > 0.0);
        assert!(e.max().is_infinite() && e.max() < 0.0);
    }
}
