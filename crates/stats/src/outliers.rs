//! The paper's outlier rule (§III-A, footnote 4).
//!
//! "Let Δ be the distance between the first and third quartiles. Any data
//! point that falls outside a distance of 1.5Δ from the **median** is
//! declared an outlier." (This differs from Tukey's fences, which measure
//! from the quartiles; we implement the paper's variant and test that it
//! discards very little on clean data, as the paper reports.)

use crate::summary::Summary;

/// Returns the sample with outliers removed, plus the discarded points.
pub fn filter_outliers(sample: &[f64]) -> (Vec<f64>, Vec<f64>) {
    if sample.len() < 4 {
        // Quartiles are meaningless; keep everything.
        return (sample.to_vec(), Vec::new());
    }
    let s = Summary::of(sample);
    let delta = s.iqr();
    let lo = s.median - 1.5 * delta;
    let hi = s.median + 1.5 * delta;
    let (kept, dropped) = sample.iter().partition(|&&x| (lo..=hi).contains(&x));
    (kept, dropped)
}

/// Convenience: filter then return the kept points only.
pub fn without_outliers(sample: &[f64]) -> Vec<f64> {
    filter_outliers(sample).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_is_untouched() {
        let sample: Vec<f64> = (0..30).map(|x| 100.0 + x as f64).collect();
        let (kept, dropped) = filter_outliers(&sample);
        assert_eq!(kept.len(), 30);
        assert!(dropped.is_empty());
    }

    #[test]
    fn gross_outlier_is_dropped() {
        let mut sample: Vec<f64> = (0..29).map(|x| 100.0 + x as f64).collect();
        sample.push(10_000.0);
        let (kept, dropped) = filter_outliers(&sample);
        assert_eq!(dropped, vec![10_000.0]);
        assert_eq!(kept.len(), 29);
    }

    #[test]
    fn measured_from_median_not_quartiles() {
        // Construct a point outside median ± 1.5Δ but inside Tukey's
        // Q3 + 1.5Δ fence: the paper's rule must drop it... actually the
        // paper's rule is *stricter* on the high side when the median is
        // below Q3. Sample: median 10, Q1 9, Q3 12 ⇒ Δ = 3; paper fence
        // high = 14.5; Tukey fence high = 16.5. The point 15 is an outlier
        // under the paper's rule only.
        let sample = vec![8.0, 9.0, 9.0, 10.0, 10.0, 11.0, 12.0, 12.0, 15.0];
        let s = Summary::of(&sample);
        assert_eq!(s.median, 10.0);
        let (_, dropped) = filter_outliers(&sample);
        assert!(dropped.contains(&15.0), "dropped: {dropped:?}");
    }

    #[test]
    fn small_samples_pass_through() {
        let sample = vec![1.0, 1000.0, -50.0];
        let (kept, dropped) = filter_outliers(&sample);
        assert_eq!(kept.len(), 3);
        assert!(dropped.is_empty());
    }

    #[test]
    fn idempotent_on_its_own_output() {
        let mut sample: Vec<f64> = (0..30).map(|x| (x % 7) as f64).collect();
        sample.extend([500.0, -500.0]);
        let once = without_outliers(&sample);
        let twice = without_outliers(&once);
        // Filtering may tighten the fences slightly, but on this shape the
        // second pass must not remove anything further.
        assert_eq!(once, twice);
    }

    #[test]
    fn constant_sample_keeps_everything() {
        let sample = vec![5.0; 20];
        let (kept, dropped) = filter_outliers(&sample);
        assert_eq!(kept.len(), 20);
        assert!(dropped.is_empty());
    }
}
