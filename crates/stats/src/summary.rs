//! Order statistics and moments of a sample.

use serde::{Deserialize, Serialize};

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); 0 for n < 2.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a sample. Panics on an empty sample or non-finite values —
    /// the experiment harness never produces either, so this is a bug trap,
    /// not an error path.
    pub fn of(sample: &[f64]) -> Summary {
        assert!(!sample.is_empty(), "empty sample");
        assert!(
            sample.iter().all(|x| x.is_finite()),
            "non-finite value in sample"
        );
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let std_dev = if sorted.len() < 2 {
            0.0
        } else {
            let ss: f64 = sorted.iter().map(|x| (x - mean) * (x - mean)).sum();
            (ss / (sorted.len() - 1) as f64).sqrt()
        };
        Summary {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
            mean,
            std_dev,
        }
    }

    /// Interquartile range `Q3 − Q1` (the paper's Δ).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Median of a sample (convenience wrapper).
pub fn median(sample: &[f64]) -> f64 {
    Summary::of(sample).median
}

/// Linear-interpolation quantile of an already-sorted sample
/// (type-7 / NumPy default).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_sample() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn even_sample_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.q1, 1.75);
        assert_eq!(s.q3, 3.25);
        assert!((s.iqr() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: sample std dev = sqrt(32/7).
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone() {
        let sorted: Vec<f64> = (0..37).map(|x| (x * x) as f64).collect();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile_sorted(&sorted, i as f64 / 20.0);
            assert!(q >= last);
            last = q;
        }
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 36.0 * 36.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
