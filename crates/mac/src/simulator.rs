//! The event-driven DCF simulator.
//!
//! One [`simulate`] call runs a single batch of `n` stations, all arriving at
//! `t = 0` with one packet each, against an access point on an ideal channel.
//! The machinery follows §I-B's description of DCF:
//!
//! ```text
//! station ──DIFS──► backoff countdown ──expiry──► DATA ──┬─ clean ─ SIFS ─ ACK ─► done
//!    ▲  (freezes while medium busy,                      │
//!    │   resumes after DIFS idle)                        └─ collided ─ ACK timeout ─► grow CW, redraw
//!    └────────────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Global contention-window slots are accounted as wall-clock time during
//! which the medium is idle (post-DIFS) and at least one station is counting
//! down, divided by the 9 µs slot — the MAC-level equivalent of the abstract
//! model's slot count.

use crate::config::MacConfig;
use crate::estimation::{EstimState, PhaseOutcome, RoundAction};
use crate::medium::{ActiveTx, Medium, TxKind, TxSource};
use crate::trace::{Span, SpanKind, Trace};
use contention_core::algorithm::AlgorithmKind;
use contention_core::metrics::{BatchMetrics, StationMetrics};
use contention_core::schedule::{Schedule, WindowSchedule};
use contention_core::time::Nanos;
use contention_sim::event::{EventQueue, EventToken};
use rand::Rng;

/// Result of one MAC trial.
#[derive(Debug, Clone)]
pub struct MacRun {
    /// The shared metric set (CW slots, total time, collisions, …).
    pub metrics: BatchMetrics,
    /// Per-station BEST-OF-k estimates (`None` for non-estimating runs).
    pub estimates: Vec<Option<u32>>,
    /// Frames corrupted by a lone probe overlap rather than a station-vs-
    /// station collision (only possible in BEST-OF-k runs).
    pub probe_corruptions: u64,
    /// Execution trace, when `capture_trace` was set.
    pub trace: Option<Trace>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The medium has been idle for a DIFS: resume every waiting station.
    GlobalDifs { gen: u32 },
    /// One station's personal DIFS completed (post-ACK-timeout rejoin).
    PersonalDifs { station: u32, gen: u32 },
    /// A station's backoff countdown expired: transmit.
    BackoffExpire { station: u32, gen: u32 },
    /// A frame left the air.
    TxEnd { id: u32 },
    /// The AP starts an ACK (SIFS after a clean data frame). `tag` is the
    /// addressee's attempt generation at scheduling time, so a late ACK for
    /// an abandoned attempt is detectably stale.
    AckStart { station: u32, tag: u32 },
    /// The AP starts a CTS (SIFS after a clean RTS).
    CtsStart { station: u32, tag: u32 },
    /// The station starts its data frame (SIFS after receiving CTS).
    DataStart { station: u32 },
    /// The sender gives up waiting for an ACK/CTS: diagnose a collision.
    AckTimeout { station: u32, gen: u32 },
    /// Boundary of a BEST-OF-k probe round.
    EstimationRound,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Running the BEST-OF-k probe phase.
    Estimating,
    /// Waiting for a DIFS of idle (frozen backoff or fresh arrival).
    WaitDifs,
    /// Counting down; `expiry_at` is live.
    Backoff,
    /// Own frame on air.
    Transmitting,
    /// RTS sent, waiting for CTS.
    AwaitingCts,
    /// CTS received, data starts after SIFS.
    PreparingData,
    /// Data sent, waiting for ACK.
    AwaitingAck,
    /// Packet acknowledged.
    Done,
}

struct Station {
    state: State,
    /// Window schedule; `None` only while estimating.
    schedule: Option<Schedule>,
    /// Backoff slots left to count.
    remaining: u64,
    /// When the current countdown expires (valid in `Backoff`).
    expiry_at: Nanos,
    /// When the current countdown (re)started (valid in `Backoff`).
    resume_at: Nanos,
    /// Invalidates this station's scheduled events. `u32` keeps queue
    /// entries at 32 bytes; a station cannot make 2^32 attempts in one
    /// trial (each consumes ≥ one 9 µs slot, far beyond any `max_sim_time`).
    gen: u32,
    /// Token of this station's single pending self-event (backoff expiry,
    /// personal DIFS, or ACK/CTS timeout), for O(log n) cancellation when
    /// the event dies (freeze, resume, ACK arrival). The `gen` checks stay
    /// as a second line of defence; with eager cancellation they never
    /// trigger for these events.
    timer: Option<EventToken>,
    estim: Option<EstimState>,
    estimate: Option<u32>,
    metrics: StationMetrics,
}

/// Reusable per-worker arena for [`simulate_with`]: the event queue slab,
/// the medium buffers and the station table survive from trial to trial at
/// their high-water capacity, so steady-state trials allocate nothing but
/// their output. Resetting is O(previous trial's live state); a fresh
/// (`Default`) arena behaves identically — reuse may only move memory,
/// never results (`tests/hot_path_golden.rs` pins this bit-for-bit).
#[derive(Default)]
pub struct MacScratch {
    queue: EventQueue<Event>,
    medium: Medium,
    stations: Vec<Station>,
    /// Stations currently counting down (`State::Backoff`), in resume
    /// order; drained (frozen) when the medium turns busy. Replaces an
    /// every-station state scan per busy period.
    backoff_list: Vec<u32>,
    /// Stations in `State::WaitDifs` awaiting the next global DIFS, plus
    /// (possibly stale) entries for personal-DIFS waiters; sorted before
    /// each resume pass so stations resume in station order, exactly like
    /// the `0..n` scan it replaces.
    resume_list: Vec<u32>,
    /// Stations that *may* hold a pending personal-DIFS event, so a busy
    /// start can cancel just those instead of scanning everyone. Entries
    /// go stale when the station resumes first; the state guard skips them.
    pdifs_list: Vec<u32>,
}

impl MacScratch {
    fn reset(&mut self) {
        self.queue.reset();
        self.medium.reset();
        self.stations.clear();
        self.backoff_list.clear();
        self.resume_list.clear();
        self.pdifs_list.clear();
    }
}

struct Sim<'a, R: Rng> {
    config: &'a MacConfig,
    rng: &'a mut R,
    n: u32,
    queue: &'a mut EventQueue<Event>,
    medium: &'a mut Medium,
    stations: &'a mut Vec<Station>,
    backoff_list: &'a mut Vec<u32>,
    resume_list: &'a mut Vec<u32>,
    pdifs_list: &'a mut Vec<u32>,
    next_tx_id: u32,
    /// Stations currently in `Backoff`.
    counting: u32,
    /// Open global CW interval start, if any.
    cw_open_at: Option<Nanos>,
    /// Accumulated global CW time.
    cw_time: Nanos,
    /// Invalidates the pending GlobalDifs.
    difs_gen: u32,
    /// Token of the pending GlobalDifs, cancelled when the medium turns
    /// busy instead of left to pop stale.
    global_difs: Option<EventToken>,
    /// Instant of the most recent global-DIFS resume pass. Every station
    /// resumed by that pass shares it as `resume_at`, so the slots it
    /// consumed before a freeze — `(busy_start - resume_at) / slot` — are
    /// identical across the batch and the division is done once per busy
    /// period instead of once per frozen station.
    interval_start: Nanos,
    /// Smallest backoff expiry holding a *real* queue event in the current
    /// idle interval. A station resuming with a later expiry provably
    /// cannot transmit this interval (the earlier expiry starts a busy
    /// period first, freezing it), so its timer stays *virtual* — state
    /// fields only, no heap entry. Only prefix minima (and exact ties, so
    /// simultaneous transmissions still collide) get queue events; omitting
    /// the others cannot reorder the surviving schedule calls, so FIFO
    /// tie-breaking — and therefore every outcome — is unchanged.
    interval_min: Nanos,
    /// Softened-collision state for the current busy period. The collision
    /// is resolved *once per period*, at the first corrupted data frame to
    /// end, mirroring `ChannelModel::sample_slot`: one noise draw, one
    /// recovery draw at that frame's multiplicity `k`, one uniform winner
    /// draw in `0..k`. `capture_winner` is the chosen index among the
    /// period's corrupted data frames in end order (`None` = nothing
    /// recovered); `period_corrupted_data` counts them.
    capture_winner: Option<u32>,
    period_corrupted_data: u32,
    // Global tallies.
    successes: u32,
    collisions: u64,
    colliding_stations: u64,
    probe_corruptions: u64,
    half_target: u32,
    half_time: Nanos,
    half_cw_slots: u64,
    total_time: Nanos,
    final_cw_slots: u64,
    done: bool,
    // Estimation phase.
    estimating: u32,
    round_index: u64,
    round_had_busy: bool,
    trace: Option<Trace>,
}

/// Runs one single-batch trial. Deterministic for a given `(config, n, rng)`.
pub fn simulate<R: Rng>(config: &MacConfig, n: u32, rng: &mut R) -> MacRun {
    simulate_with(config, n, rng, &mut MacScratch::default())
}

/// [`simulate`] on a caller-owned [`MacScratch`] arena — what the sweep
/// engine calls, with one arena per worker. Bit-identical to `simulate`.
pub fn simulate_with<R: Rng>(
    config: &MacConfig,
    n: u32,
    rng: &mut R,
    scratch: &mut MacScratch,
) -> MacRun {
    scratch.reset();
    let mut sim = Sim::new(config, n, rng, scratch);
    sim.init();
    sim.run();
    sim.finish()
}

/// The 802.11g DCF backend of the generic sweep engine — a zero-sized entry
/// point around [`simulate`].
pub struct MacSim;

impl contention_sim::engine::Simulator for MacSim {
    type Config = MacConfig;
    type Output = MacRun;
    type Scratch = MacScratch;
    const NAME: &'static str = "mac";

    fn algorithm(config: &MacConfig) -> AlgorithmKind {
        config.algorithm
    }

    fn with_algorithm(config: &MacConfig, algorithm: AlgorithmKind) -> MacConfig {
        MacConfig {
            algorithm,
            ..*config
        }
    }

    fn run_with(
        config: &MacConfig,
        n: u32,
        rng: &mut rand::rngs::SmallRng,
        scratch: &mut MacScratch,
    ) -> MacRun {
        simulate_with(config, n, rng, scratch)
    }
}

impl From<MacRun> for contention_sim::summary::TrialSummary {
    fn from(run: MacRun) -> contention_sim::summary::TrialSummary {
        contention_sim::summary::TrialSummary::from_metrics(&run.metrics)
            .with_estimates(&run.estimates)
    }
}

impl<'a, R: Rng> Sim<'a, R> {
    fn new(
        config: &'a MacConfig,
        n: u32,
        rng: &'a mut R,
        scratch: &'a mut MacScratch,
    ) -> Sim<'a, R> {
        let MacScratch {
            queue,
            medium,
            stations,
            backoff_list,
            resume_list,
            pdifs_list,
        } = scratch;
        Sim {
            config,
            rng,
            n,
            queue,
            medium,
            stations,
            backoff_list,
            resume_list,
            pdifs_list,
            next_tx_id: 0,
            counting: 0,
            cw_open_at: None,
            cw_time: Nanos::ZERO,
            difs_gen: 0,
            global_difs: None,
            interval_start: Nanos::MAX,
            interval_min: Nanos::MAX,
            capture_winner: None,
            period_corrupted_data: 0,
            successes: 0,
            collisions: 0,
            colliding_stations: 0,
            probe_corruptions: 0,
            half_target: n.div_ceil(2),
            half_time: Nanos::ZERO,
            half_cw_slots: 0,
            total_time: Nanos::ZERO,
            final_cw_slots: 0,
            done: n == 0,
            estimating: 0,
            round_index: 0,
            round_had_busy: false,
            trace: config.capture_trace.then(|| {
                let mut trace = Trace::new(n);
                // Typical span volume: a handful per station-attempt.
                trace.spans.reserve(16 * n as usize);
                trace
            }),
        }
    }

    fn init(&mut self) {
        let trunc = self.config.truncation();
        let best_of_k = self.config.best_of_k();
        for _ in 0..self.n {
            let mut station = Station {
                state: State::WaitDifs,
                schedule: None,
                remaining: 0,
                expiry_at: Nanos::MAX,
                resume_at: Nanos::ZERO,
                gen: 0,
                timer: None,
                estim: None,
                estimate: None,
                metrics: StationMetrics::default(),
            };
            if let Some(spec) = best_of_k {
                station.state = State::Estimating;
                station.estim = Some(EstimState::new(spec));
                self.estimating += 1;
            } else {
                self.resume_list.push(self.stations.len() as u32);
                let mut schedule = self
                    .config
                    .algorithm
                    .schedule(trunc)
                    .expect("non-estimating algorithms have schedules");
                let cw = schedule.next_window() as u64;
                station.remaining = self.rng.gen_range(0..cw);
                station.schedule = Some(schedule);
            }
            self.stations.push(station);
        }
        if best_of_k.is_some() {
            self.queue.schedule(Nanos::ZERO, Event::EstimationRound);
        } else if self.n > 0 {
            self.global_difs = Some(self.queue.schedule(
                self.config.phy.difs,
                Event::GlobalDifs { gen: self.difs_gen },
            ));
        }
    }

    fn run(&mut self) {
        while !self.done {
            let Some((now, event)) = self.queue.pop() else {
                break;
            };
            if now > self.config.max_sim_time {
                break;
            }
            match event {
                Event::GlobalDifs { gen } => self.on_global_difs(gen),
                Event::PersonalDifs { station, gen } => self.on_personal_difs(station, gen),
                Event::BackoffExpire { station, gen } => self.on_backoff_expire(station, gen),
                Event::TxEnd { id } => self.on_tx_end(id),
                Event::AckStart { station, tag } => self.on_ack_start(station, tag),
                Event::CtsStart { station, tag } => self.on_cts_start(station, tag),
                Event::DataStart { station } => self.on_data_start(station),
                Event::AckTimeout { station, gen } => self.on_ack_timeout(station, gen),
                Event::EstimationRound => self.on_estimation_round(),
            }
        }
    }

    fn finish(self) -> MacRun {
        // A truncated run reports the valve instant, not "whenever the next
        // event happened to be". (Pre-overhaul code reported the timestamp
        // of the first event past the valve — which could be a *dead*,
        // generation-stale event, making the figure depend on queue
        // internals. Completed runs are unaffected: they use the recorded
        // totals below.)
        let now = Nanos::min(self.queue.now(), self.config.max_sim_time);
        let cw_slots = if self.done {
            self.final_cw_slots
        } else {
            self.cw_slots_now(now)
        };
        let total_time = if self.done { self.total_time } else { now };
        MacRun {
            metrics: BatchMetrics {
                n: self.n,
                successes: self.successes,
                total_time,
                half_time: self.half_time,
                cw_slots,
                half_cw_slots: self.half_cw_slots,
                collisions: self.collisions,
                colliding_stations: self.colliding_stations,
                stations: self.stations.iter().map(|s| s.metrics).collect(),
            },
            // Only BEST-OF-k runs carry estimates; every other workload
            // keeps this empty — no per-trial `Vec<Option<u32>>` on the
            // paper's hot paths (`TrialSummary::with_estimates` treats
            // "empty" and "all None" identically).
            estimates: if self.config.best_of_k().is_some() {
                self.stations.iter().map(|s| s.estimate).collect()
            } else {
                Vec::new()
            },
            probe_corruptions: self.probe_corruptions,
            trace: self.trace,
        }
    }

    // ------------------------------------------------------------------
    // Contention-window time accounting
    // ------------------------------------------------------------------

    fn cw_slots_now(&self, now: Nanos) -> u64 {
        let mut total = self.cw_time;
        if let Some(open) = self.cw_open_at {
            total += now - open;
        }
        total.div_floor(self.config.phy.slot)
    }

    fn close_cw_interval(&mut self, now: Nanos) {
        if let Some(open) = self.cw_open_at.take() {
            self.cw_time += now - open;
        }
    }

    // ------------------------------------------------------------------
    // Backoff state transitions
    // ------------------------------------------------------------------

    fn resume_countdown(&mut self, station: u32, now: Nanos) {
        let slot = self.config.phy.slot;
        let s = &mut self.stations[station as usize];
        debug_assert_eq!(s.state, State::WaitDifs);
        s.state = State::Backoff;
        s.resume_at = now;
        s.expiry_at = now + slot * s.remaining;
        s.gen += 1;
        let gen = s.gen;
        let at = s.expiry_at;
        // A pending personal DIFS dies here (the global DIFS beat it).
        if let Some(t) = s.timer.take() {
            self.queue.cancel(t);
        }
        if at <= self.interval_min {
            // A (co-)minimum so far: this expiry can actually fire.
            self.interval_min = at;
            let token = self
                .queue
                .schedule(at, Event::BackoffExpire { station, gen });
            self.stations[station as usize].timer = Some(token);
        }
        self.backoff_list.push(station);
        self.counting += 1;
        if self.counting == 1 {
            debug_assert!(self.cw_open_at.is_none());
            self.cw_open_at = Some(now);
        }
    }

    fn leave_backoff(&mut self, station: u32, now: Nanos) {
        let s = &mut self.stations[station as usize];
        debug_assert_eq!(s.state, State::Backoff);
        s.metrics.backoff_slots += s.remaining;
        s.remaining = 0;
        self.counting -= 1;
        if self.counting == 0 {
            self.close_cw_interval(now);
        }
    }

    /// The medium just became busy: close the CW interval, kill the pending
    /// global DIFS, and freeze every station still counting (a station whose
    /// expiry is exactly `now` is *not* frozen — it could not have sensed a
    /// transmission that starts in the same instant, which is precisely how
    /// collisions happen).
    fn handle_busy_start(&mut self, now: Nanos) {
        self.close_cw_interval(now);
        self.difs_gen += 1;
        if let Some(t) = self.global_difs.take() {
            self.queue.cancel(t);
        }
        // Any backoff event still pending either fires at exactly `now`
        // (not frozen below) or belongs to a frozen station and is
        // cancelled below; the next idle interval starts fresh.
        self.interval_min = Nanos::MAX;
        self.round_had_busy = true;
        let slot = self.config.phy.slot;
        // Shared by every station the last global DIFS resumed.
        let batch_consumed = if self.interval_start <= now {
            (now - self.interval_start).div_floor(slot)
        } else {
            0
        };
        let mut frozen = 0u32;
        // Kill pending personal DIFS events (rare); the global DIFS after
        // this busy period resumes those stations instead. Entries whose
        // station already resumed are stale — the state guard skips them
        // (their `timer` now belongs to the countdown, not a DIFS).
        for i in 0..self.pdifs_list.len() {
            let station = self.pdifs_list[i];
            let s = &mut self.stations[station as usize];
            if s.state == State::WaitDifs {
                if let Some(t) = s.timer.take() {
                    self.queue.cancel(t);
                }
            }
        }
        self.pdifs_list.clear();
        // Freeze the countdown set: only stations in `backoff_list` can be
        // in `State::Backoff`, so nobody else needs to be touched. A
        // station whose expiry is exactly `now` is *not* frozen — it could
        // not have sensed a transmission that starts in the same instant
        // (its pending event fires during this busy period and it
        // transmits into the pileup), which is precisely how collisions
        // happen. The firing station itself is already `Transmitting`.
        for i in 0..self.backoff_list.len() {
            let station = self.backoff_list[i];
            let s = &mut self.stations[station as usize];
            if s.state != State::Backoff || s.expiry_at <= now {
                continue;
            }
            let consumed = if s.resume_at == self.interval_start {
                batch_consumed
            } else {
                // Mid-interval joiner with its own slot phase.
                (now - s.resume_at).div_floor(slot)
            };
            debug_assert_eq!(consumed, (now - s.resume_at).div_floor(slot));
            debug_assert!(consumed < s.remaining || s.remaining == 0);
            s.remaining -= consumed.min(s.remaining);
            s.metrics.backoff_slots += consumed;
            s.gen += 1;
            s.state = State::WaitDifs;
            // The expiry is dead: remove it instead of letting it pop
            // stale (80 % of all queue traffic before this). Most frozen
            // stations hold only a *virtual* timer (no heap entry at all).
            if let Some(t) = s.timer.take() {
                self.queue.cancel(t);
            }
            self.resume_list.push(station);
            frozen += 1;
        }
        self.backoff_list.clear();
        self.counting -= frozen;
    }

    /// Route a station with a drawn timer back into contention at `now`.
    fn enter_difs_path(&mut self, station: u32, now: Nanos) {
        let difs = self.config.phy.difs;
        if self.medium.is_busy() {
            self.stations[station as usize].state = State::WaitDifs;
            self.resume_list.push(station);
            return;
        }
        let ready = Nanos::max(now, self.medium.idle_since() + difs);
        self.stations[station as usize].state = State::WaitDifs;
        if ready == now {
            self.resume_countdown(station, now);
        } else {
            // Waiting out a personal DIFS. The station is also listed for
            // the next global DIFS: whichever fires first resumes it (a
            // global DIFS implies at least DIFS of idle, so it can only
            // coincide with or precede `ready`, never skip ahead of it).
            self.resume_list.push(station);
            self.pdifs_list.push(station);
            let s = &mut self.stations[station as usize];
            s.gen += 1;
            let gen = s.gen;
            debug_assert!(
                s.timer.is_none(),
                "station re-entering DIFS with a live timer"
            );
            let token = self
                .queue
                .schedule(ready, Event::PersonalDifs { station, gen });
            self.stations[station as usize].timer = Some(token);
        }
    }

    /// Draw the next window after a failure and re-enter contention.
    fn retry(&mut self, station: u32, now: Nanos) {
        let s = &mut self.stations[station as usize];
        // New attempt: invalidate anything addressed to the old one (a late
        // ACK for the abandoned attempt must not complete the new one).
        s.gen += 1;
        let cw = s
            .schedule
            .as_mut()
            .expect("retrying station has a schedule")
            .next_window() as u64;
        s.remaining = self.rng.gen_range(0..cw);
        self.enter_difs_path(station, now);
    }

    // ------------------------------------------------------------------
    // Frames
    // ------------------------------------------------------------------

    fn start_frame(
        &mut self,
        source: TxSource,
        kind: TxKind,
        for_station: Option<u32>,
        tag: u32,
        duration: Nanos,
    ) -> u32 {
        let now = self.queue.now();
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let tx = ActiveTx {
            id,
            source,
            kind,
            for_station,
            tag,
            start: now,
            end: now + duration,
            corrupted: false,
            overlaps: 0,
        };
        let became_busy = self.medium.start_tx(tx);
        if became_busy {
            self.handle_busy_start(now);
        }
        self.queue.schedule(now + duration, Event::TxEnd { id });
        id
    }

    fn record_span(&mut self, station: u32, kind: SpanKind, start: Nanos, end: Nanos) {
        if let Some(trace) = &mut self.trace {
            trace.push(Span {
                station,
                kind,
                start,
                end,
            });
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_global_difs(&mut self, gen: u32) {
        self.global_difs = None;
        if gen != self.difs_gen {
            return;
        }
        debug_assert!(!self.medium.is_busy(), "GlobalDifs fired while busy");
        let now = self.queue.now();
        // Stations must resume in station order — tied backoff expiries pop
        // FIFO, so resume order decides who transmits first in a pileup.
        // The list is mostly sorted already (frozen in station order);
        // out-of-order entries come only from mid-period retries.
        let mut list = std::mem::take(self.resume_list);
        list.sort_unstable();
        self.interval_start = now;
        for &station in &list {
            if self.stations[station as usize].state == State::WaitDifs {
                self.resume_countdown(station, now);
            }
        }
        list.clear();
        *self.resume_list = list;
    }

    fn on_personal_difs(&mut self, station: u32, gen: u32) {
        if gen != self.stations[station as usize].gen {
            return;
        }
        self.stations[station as usize].timer = None;
        debug_assert!(!self.medium.is_busy(), "PersonalDifs fired while busy");
        // Resuming here, not via the global DIFS: drop the list entry so
        // the next resume pass cannot resume this station twice.
        self.resume_list.retain(|&st| st != station);
        let now = self.queue.now();
        self.resume_countdown(station, now);
    }

    fn on_backoff_expire(&mut self, station: u32, gen: u32) {
        if gen != self.stations[station as usize].gen {
            return;
        }
        self.stations[station as usize].timer = None;
        let now = self.queue.now();
        debug_assert_eq!(self.stations[station as usize].state, State::Backoff);
        debug_assert_eq!(self.stations[station as usize].expiry_at, now);
        self.leave_backoff(station, now);
        let s = &mut self.stations[station as usize];
        s.state = State::Transmitting;
        s.metrics.attempts += 1;
        let (kind, duration) = if self.config.rts_cts {
            (TxKind::Rts, self.config.phy.rts_time())
        } else {
            (
                TxKind::Data,
                self.config.phy.data_frame_time(self.config.payload_bytes),
            )
        };
        let tag = self.stations[station as usize].gen;
        self.start_frame(TxSource::Station(station), kind, None, tag, duration);
    }

    fn on_tx_end(&mut self, id: u32) {
        let now = self.queue.now();
        let (tx, period) = self.medium.end_tx(id, now);
        if let Some(p) = period {
            // The medium just went idle. Bystanders that heard only garbage
            // must defer EIFS instead of DIFS (when the EIFS rule is on).
            let ifs = if self.config.use_eifs && p.corrupted_frames > 0 {
                self.config.phy.eifs()
            } else {
                self.config.phy.difs
            };
            self.global_difs = Some(
                self.queue
                    .schedule(now + ifs, Event::GlobalDifs { gen: self.difs_gen }),
            );
            if p.corrupted_contenders >= 2 {
                self.collisions += 1;
                self.colliding_stations += p.corrupted_contenders as u64;
            } else if p.corrupted_contenders == 1 {
                self.probe_corruptions += 1;
            }
        }
        match tx.kind {
            TxKind::Data => self.on_data_end(&tx),
            TxKind::Rts => self.on_rts_end(&tx),
            TxKind::Cts => self.on_cts_end(&tx),
            TxKind::Ack => self.on_ack_end(&tx),
            TxKind::Probe => {
                if let TxSource::Station(st) = tx.source {
                    self.record_span(st, SpanKind::Probe, tx.start, tx.end);
                }
            }
        }
        if period.is_some() {
            // A fresh busy period gets a fresh collision resolution.
            self.capture_winner = None;
            self.period_corrupted_data = 0;
        }
    }

    /// Whether the channel delivered this data frame, mirroring
    /// [`contention_core::channel::ChannelModel::sample_slot`]'s structure.
    ///
    /// A clean frame is the sole occupant of its airtime ("its own slot"):
    /// one noise draw decides it. A collision is resolved once per busy
    /// period, at the first corrupted data frame to end: noise draw, then a
    /// recovery draw at that frame's multiplicity `k = overlaps + 1`, then a
    /// uniform winner among the period's first `k` corrupted data frames (in
    /// end order) — the same three-draw shape, and the same unbiased winner,
    /// as the slotted model. Remaining deviations from the slotted
    /// abstraction are inherent to continuous time and documented on
    /// [`MacConfig::channel`]: chained busy periods resolve at the first
    /// frame's `k`, and a winner index landing on a non-data overlapper
    /// (RTS/probe) wastes the capture. With the ideal channel this reads
    /// `!tx.corrupted` and consumes no randomness.
    fn channel_delivers(&mut self, tx: &ActiveTx) -> bool {
        let channel = self.config.channel;
        let noise_erased =
            |rng: &mut R, noise: f64| noise > 0.0 && rng.gen_bool(noise.clamp(0.0, 1.0));
        if !tx.corrupted {
            return !noise_erased(self.rng, channel.noise);
        }
        let idx = self.period_corrupted_data;
        self.period_corrupted_data += 1;
        if idx == 0 {
            let k = tx.overlaps + 1;
            let p = channel.p_recover(k);
            self.capture_winner =
                (!noise_erased(self.rng, channel.noise) && p > 0.0 && self.rng.gen_bool(p))
                    .then(|| self.rng.gen_range(0..k));
        }
        self.capture_winner == Some(idx)
    }

    fn on_data_end(&mut self, tx: &ActiveTx) {
        let TxSource::Station(station) = tx.source else {
            panic!("data frames come from stations");
        };
        let now = self.queue.now();
        // The span must reflect the *channel* outcome, not just corruption:
        // a noise-erased clean frame failed, a captured corrupted frame
        // succeeded. (record_span draws no RNG, so deciding delivery first
        // does not perturb the stream.)
        let delivered = self.channel_delivers(tx);
        self.record_span(
            station,
            if delivered {
                SpanKind::DataOk
            } else {
                SpanKind::DataFail
            },
            tx.start,
            tx.end,
        );
        let ack_lost = delivered
            && self.config.ack_loss_prob > 0.0
            && self.rng.gen_bool(self.config.ack_loss_prob);
        if delivered && !ack_lost {
            let tag = self.stations[station as usize].gen;
            self.queue
                .schedule(now + self.config.phy.sifs, Event::AckStart { station, tag });
        }
        let s = &mut self.stations[station as usize];
        s.state = State::AwaitingAck;
        let gen = s.gen;
        let token = self.queue.schedule(
            now + self.config.phy.ack_timeout,
            Event::AckTimeout { station, gen },
        );
        self.stations[station as usize].timer = Some(token);
    }

    fn on_rts_end(&mut self, tx: &ActiveTx) {
        let TxSource::Station(station) = tx.source else {
            panic!("RTS frames come from stations");
        };
        let now = self.queue.now();
        self.record_span(station, SpanKind::Rts, tx.start, tx.end);
        if !tx.corrupted {
            let tag = self.stations[station as usize].gen;
            self.queue
                .schedule(now + self.config.phy.sifs, Event::CtsStart { station, tag });
        }
        let s = &mut self.stations[station as usize];
        s.state = State::AwaitingCts;
        let gen = s.gen;
        let token = self.queue.schedule(
            now + self.config.phy.ack_timeout,
            Event::AckTimeout { station, gen },
        );
        self.stations[station as usize].timer = Some(token);
    }

    fn on_cts_start(&mut self, station: u32, tag: u32) {
        self.start_frame(
            TxSource::AccessPoint,
            TxKind::Cts,
            Some(station),
            tag,
            self.config.phy.cts_time(),
        );
    }

    fn on_cts_end(&mut self, tx: &ActiveTx) {
        let station = tx.for_station.expect("CTS is addressed");
        let now = self.queue.now();
        self.record_span(station, SpanKind::Cts, tx.start, tx.end);
        if tx.corrupted {
            return; // The CTS timeout will fire.
        }
        let s = &mut self.stations[station as usize];
        if s.gen != tx.tag || s.state != State::AwaitingCts {
            return; // Stale CTS: the sender already timed out and moved on.
        }
        s.gen += 1; // Invalidate the CTS timeout...
        if let Some(t) = s.timer.take() {
            self.queue.cancel(t); // ...and remove it from the heap.
        }
        let s = &mut self.stations[station as usize];
        s.state = State::PreparingData;
        self.queue
            .schedule(now + self.config.phy.sifs, Event::DataStart { station });
    }

    fn on_data_start(&mut self, station: u32) {
        let s = &mut self.stations[station as usize];
        debug_assert_eq!(s.state, State::PreparingData);
        s.state = State::Transmitting;
        let tag = s.gen;
        let duration = self.config.phy.data_frame_time(self.config.payload_bytes);
        self.start_frame(
            TxSource::Station(station),
            TxKind::Data,
            None,
            tag,
            duration,
        );
    }

    fn on_ack_start(&mut self, station: u32, tag: u32) {
        // The AP owns the SIFS window; it transmits without sensing.
        self.start_frame(
            TxSource::AccessPoint,
            TxKind::Ack,
            Some(station),
            tag,
            self.config.phy.ack_time(),
        );
    }

    fn on_ack_end(&mut self, tx: &ActiveTx) {
        let station = tx.for_station.expect("ACK is addressed");
        let now = self.queue.now();
        self.record_span(station, SpanKind::Ack, tx.start, tx.end);
        if tx.corrupted {
            return; // Sender never decodes it; its ACK timeout will fire.
        }
        let s = &mut self.stations[station as usize];
        if s.gen != tx.tag || s.state != State::AwaitingAck {
            // Stale ACK: the sender's timeout (configured shorter than
            // SIFS + ACK airtime) fired first and the attempt was abandoned
            // — the §V-B "ACK-timeout below threshold" pathology.
            return;
        }
        s.gen += 1; // Invalidate the ACK timeout...
        if let Some(t) = s.timer.take() {
            self.queue.cancel(t); // ...and remove it from the heap.
        }
        let s = &mut self.stations[station as usize];
        s.state = State::Done;
        s.metrics.success_time = Some(now);
        self.successes += 1;
        if self.successes == self.half_target {
            self.half_time = now;
            self.half_cw_slots = self.cw_slots_now(now);
        }
        if self.successes == self.n {
            self.total_time = now;
            self.final_cw_slots = self.cw_slots_now(now);
            self.done = true;
        }
    }

    fn on_ack_timeout(&mut self, station: u32, gen: u32) {
        if gen != self.stations[station as usize].gen {
            return;
        }
        self.stations[station as usize].timer = None;
        let now = self.queue.now();
        let timeout = self.config.phy.ack_timeout;
        {
            let s = &mut self.stations[station as usize];
            debug_assert!(matches!(s.state, State::AwaitingAck | State::AwaitingCts));
            s.metrics.ack_timeouts += 1;
            s.metrics.ack_timeout_time += timeout;
        }
        self.record_span(station, SpanKind::TimeoutWait, now - timeout, now);
        self.retry(station, now);
    }

    // ------------------------------------------------------------------
    // BEST-OF-k estimation rounds
    // ------------------------------------------------------------------

    fn on_estimation_round(&mut self) {
        let now = self.queue.now();
        // 1. Close out the round that just ended.
        if self.round_index > 0 {
            let round_was_busy = self.round_had_busy;
            for station in 0..self.n {
                if self.stations[station as usize].state != State::Estimating {
                    continue;
                }
                let outcome = self.stations[station as usize]
                    .estim
                    .as_mut()
                    .expect("estimating station has state")
                    .finish_round(round_was_busy);
                if let Some(PhaseOutcome::Decide(window)) = outcome {
                    self.finish_estimation(station, window, now);
                }
            }
        }
        if self.estimating == 0 {
            return;
        }
        // 2. Begin the next round: coin flips in station order.
        self.round_index += 1;
        self.round_had_busy = self.medium.is_busy();
        let probe_time = self.config.phy.frame_time(
            self.config
                .best_of_k()
                .expect("estimation implies spec")
                .dummy_bytes,
        );
        for station in 0..self.n {
            if self.stations[station as usize].state != State::Estimating {
                continue;
            }
            let p = self.stations[station as usize]
                .estim
                .as_ref()
                .expect("estimating station has state")
                .send_probability();
            let send = self.rng.gen_bool(p);
            self.stations[station as usize]
                .estim
                .as_mut()
                .expect("estimating station has state")
                .begin_round(if send {
                    RoundAction::Send
                } else {
                    RoundAction::Sense
                });
            if send {
                let tag = self.stations[station as usize].gen;
                self.start_frame(
                    TxSource::Station(station),
                    TxKind::Probe,
                    None,
                    tag,
                    probe_time,
                );
            }
        }
        let round = self
            .config
            .best_of_k()
            .expect("estimation implies spec")
            .round;
        self.queue.schedule(now + round, Event::EstimationRound);
    }

    fn finish_estimation(&mut self, station: u32, window: u32, now: Nanos) {
        let trunc = self.config.truncation();
        let s = &mut self.stations[station as usize];
        s.estimate = Some(window);
        s.estim = None;
        let mut schedule = Schedule::fixed(window, trunc);
        let cw = schedule.next_window() as u64;
        s.remaining = self.rng.gen_range(0..cw);
        s.schedule = Some(schedule);
        self.estimating -= 1;
        self.enter_difs_path(station, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::algorithm::AlgorithmKind;
    use contention_core::rng::{experiment_tag, trial_rng};

    fn run(kind: AlgorithmKind, payload: u32, n: u32, trial: u32) -> MacRun {
        let config = MacConfig::paper(kind, payload);
        let mut rng = trial_rng(experiment_tag("mac-test"), kind, n, trial);
        simulate(&config, n, &mut rng)
    }

    #[test]
    fn single_station_timing_is_exact() {
        // n = 1, BEB, 64 B: DIFS + 0 backoff slots (CW = 1 ⇒ timer 0) +
        // DATA(preamble + 128 B) + SIFS + ACK(preamble + 14 B).
        let run = run(AlgorithmKind::Beb, 64, 1, 0);
        let m = &run.metrics;
        assert_eq!(m.successes, 1);
        assert_eq!(m.collisions, 0);
        assert_eq!(m.cw_slots, 0);
        let expected = 34_000 + (20_000 + 18_962) + 16_000 + (20_000 + 2_074);
        assert_eq!(m.total_time.as_nanos(), expected);
        assert_eq!(m.half_time, m.total_time); // ⌈1/2⌉ = 1
        assert!(m.attempts_balance());
    }

    #[test]
    fn two_stations_collide_then_finish() {
        // BEB with CWmin = 1: both transmit immediately and collide; they
        // must eventually separate and both finish.
        let r = run(AlgorithmKind::Beb, 64, 2, 0);
        let m = &r.metrics;
        assert_eq!(m.successes, 2);
        assert!(m.collisions >= 1);
        assert_eq!(m.colliding_stations, m.total_ack_timeouts());
        assert!(m.attempts_balance());
        assert!(m.total_time > Nanos::from_micros(200));
    }

    #[test]
    fn batch_completes_for_every_algorithm() {
        for kind in AlgorithmKind::PAPER_SET {
            let r = run(kind, 64, 40, 1);
            assert_eq!(r.metrics.successes, 40, "{kind}");
            assert!(r.metrics.attempts_balance(), "{kind}");
            assert!(r.metrics.half_time <= r.metrics.total_time, "{kind}");
            assert!(r.metrics.half_cw_slots <= r.metrics.cw_slots, "{kind}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run(AlgorithmKind::LogBackoff, 64, 30, 5);
        let b = run(AlgorithmKind::LogBackoff, 64, 30, 5);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn fixed_window_single_station_counts_its_slots() {
        // One station, fixed CW of 64: the drawn timer is the only CW time.
        let config = MacConfig::paper(AlgorithmKind::Fixed { window: 64 }, 64);
        let mut rng = trial_rng(
            experiment_tag("mac-test"),
            AlgorithmKind::Fixed { window: 64 },
            1,
            2,
        );
        let r = simulate(&config, 1, &mut rng);
        let m = &r.metrics;
        assert_eq!(m.successes, 1);
        assert_eq!(m.cw_slots, m.stations[0].backoff_slots);
        // Total time = DIFS + slots·9µs + exchange.
        let exchange = 38_962 + 16_000 + 22_074;
        let expected = 34_000 + m.cw_slots * 9_000 + exchange;
        assert_eq!(m.total_time.as_nanos(), expected);
    }

    #[test]
    fn larger_payloads_take_longer() {
        let small = run(AlgorithmKind::Beb, 64, 30, 3).metrics.total_time;
        let large = run(AlgorithmKind::Beb, 1024, 30, 3).metrics.total_time;
        assert!(large > small);
    }

    #[test]
    fn trace_has_no_station_overlaps_and_covers_all() {
        let mut config = MacConfig::paper(AlgorithmKind::Beb, 64);
        config.capture_trace = true;
        let mut rng = trial_rng(experiment_tag("mac-trace"), AlgorithmKind::Beb, 20, 0);
        let r = simulate(&config, 20, &mut rng);
        let trace = r.trace.expect("trace captured");
        assert!(
            trace.first_overlap().is_none(),
            "{:?}",
            trace.first_overlap()
        );
        // Every station shows at least one data span and one ACK span.
        for st in 0..20 {
            let spans = trace.station_spans(st);
            assert!(spans
                .iter()
                .any(|s| matches!(s.kind, SpanKind::DataOk | SpanKind::DataFail)));
            assert!(spans.iter().any(|s| s.kind == SpanKind::Ack));
        }
    }

    #[test]
    fn ack_timeouts_match_trace_failures() {
        let mut config = MacConfig::paper(AlgorithmKind::Sawtooth, 64);
        config.capture_trace = true;
        let mut rng = trial_rng(experiment_tag("mac-trace2"), AlgorithmKind::Sawtooth, 15, 0);
        let r = simulate(&config, 15, &mut rng);
        let trace = r.trace.expect("trace");
        let failed_sends = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::DataFail)
            .count();
        let timeouts = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::TimeoutWait)
            .count();
        assert_eq!(failed_sends as u64, r.metrics.total_ack_timeouts());
        assert_eq!(timeouts as u64, r.metrics.total_ack_timeouts());
    }

    #[test]
    fn rts_cts_mode_completes_and_differs() {
        let mut config = MacConfig::paper(AlgorithmKind::Beb, 1024);
        config.rts_cts = true;
        let mut rng = trial_rng(experiment_tag("mac-rts"), AlgorithmKind::Beb, 25, 0);
        let with_rts = simulate(&config, 25, &mut rng);
        assert_eq!(with_rts.metrics.successes, 25);
        assert!(with_rts.metrics.attempts_balance());
        let plain = run(AlgorithmKind::Beb, 1024, 25, 0);
        assert_ne!(with_rts.metrics.total_time, plain.metrics.total_time);
    }

    #[test]
    fn best_of_k_estimates_and_completes() {
        let kind = AlgorithmKind::BestOfK { k: 5 };
        let config = MacConfig::paper(kind, 64);
        let mut rng = trial_rng(experiment_tag("mac-bok"), kind, 50, 0);
        let r = simulate(&config, 50, &mut rng);
        assert_eq!(r.metrics.successes, 50);
        let estimates: Vec<u32> = r.estimates.iter().map(|e| e.expect("estimated")).collect();
        // §VI: the estimate cannot badly underestimate; with 50 stations no
        // station should settle below 32, and most should be ≥ 64.
        assert!(estimates.iter().all(|&w| w >= 16), "{estimates:?}");
        let overestimates = estimates.iter().filter(|&&w| w >= 50).count();
        assert!(overestimates * 10 >= estimates.len() * 8, "{estimates:?}");
    }

    #[test]
    fn ideal_channel_field_changes_nothing() {
        // The channel threading must be invisible for the paper's setup:
        // MacConfig::paper carries ChannelModel::ideal, which consumes no
        // randomness, so results are unchanged from the pre-channel code
        // path (the golden determinism suite pins this workspace-wide).
        use contention_core::channel::ChannelModel;
        let a = run(AlgorithmKind::Beb, 64, 30, 2);
        let b = {
            let config = MacConfig::with_channel(AlgorithmKind::Beb, 64, ChannelModel::ideal());
            let mut rng = trial_rng(experiment_tag("mac-test"), AlgorithmKind::Beb, 30, 2);
            simulate(&config, 30, &mut rng)
        };
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn certain_capture_rescues_one_frame_per_collision() {
        use contention_core::channel::ChannelModel;
        let config = MacConfig::with_channel(AlgorithmKind::Beb, 64, ChannelModel::softened(1.0));
        let mut rng = trial_rng(experiment_tag("mac-soft"), AlgorithmKind::Beb, 30, 0);
        let r = simulate(&config, 30, &mut rng);
        let m = &r.metrics;
        assert_eq!(m.successes, 30);
        assert!(m.collisions > 0);
        assert!(m.attempts_balance());
        // Capture rescues stations out of collisions, so station-level
        // failures drop below the collision participant count.
        assert!(m.total_ack_timeouts() < m.colliding_stations);
    }

    #[test]
    fn softened_collisions_cut_total_time() {
        use contention_core::channel::ChannelModel;
        let med = |channel: ChannelModel| -> u64 {
            let mut xs: Vec<u64> = (0..7)
                .map(|t| {
                    let config = MacConfig::with_channel(AlgorithmKind::Beb, 64, channel);
                    let mut rng =
                        trial_rng(experiment_tag("mac-soft-time"), AlgorithmKind::Beb, 40, t);
                    simulate(&config, 40, &mut rng)
                        .metrics
                        .total_time
                        .as_nanos()
                })
                .collect();
            xs.sort_unstable();
            xs[3]
        };
        let fatal = med(ChannelModel::ideal());
        let soft = med(ChannelModel::softened(0.9));
        assert!(soft < fatal, "softened {soft} should beat fatal {fatal}");
    }

    #[test]
    fn noise_is_sampled_before_capture() {
        // Same ordering as ChannelModel::sample_slot: full noise erases
        // every data frame before the capture draw can rescue it, even with
        // certain recovery.
        use contention_core::channel::{ChannelModel, Recovery};
        let mut config = MacConfig::with_channel(
            AlgorithmKind::Beb,
            64,
            ChannelModel {
                recovery: Recovery::Constant { p: 1.0 },
                noise: 1.0,
            },
        );
        config.max_sim_time = Nanos::from_millis(20);
        let mut rng = trial_rng(experiment_tag("mac-noise-first"), AlgorithmKind::Beb, 5, 0);
        let r = simulate(&config, 5, &mut rng);
        assert_eq!(r.metrics.successes, 0);
    }

    #[test]
    fn channel_noise_erases_clean_frames() {
        use contention_core::channel::ChannelModel;
        let mut config = MacConfig::with_channel(AlgorithmKind::Beb, 64, ChannelModel::noisy(1.0));
        config.max_sim_time = Nanos::from_millis(20);
        let mut rng = trial_rng(experiment_tag("mac-noise"), AlgorithmKind::Beb, 1, 0);
        let r = simulate(&config, 1, &mut rng);
        // Full noise: the lone station's clean frames are all erased — pure
        // ACK timeouts, zero collisions, no completion.
        assert_eq!(r.metrics.successes, 0);
        assert_eq!(r.metrics.collisions, 0);
        assert!(r.metrics.stations[0].ack_timeouts > 3);
    }

    #[test]
    fn ack_loss_injection_forces_retries() {
        let mut config = MacConfig::paper(AlgorithmKind::Beb, 64);
        config.ack_loss_prob = 1.0;
        config.max_sim_time = Nanos::from_millis(20);
        let mut rng = trial_rng(experiment_tag("mac-loss"), AlgorithmKind::Beb, 1, 0);
        let r = simulate(&config, 1, &mut rng);
        // Every ACK lost: the lone station can never finish, and each
        // "failure" is an ACK timeout with zero collisions.
        assert_eq!(r.metrics.successes, 0);
        assert_eq!(r.metrics.collisions, 0);
        assert!(r.metrics.stations[0].ack_timeouts > 3);
    }

    #[test]
    fn zero_stations() {
        let r = run(AlgorithmKind::Beb, 64, 0, 0);
        assert_eq!(r.metrics.successes, 0);
        assert_eq!(r.metrics.total_time, Nanos::ZERO);
    }

    #[test]
    fn valve_truncates_runaway_runs() {
        let mut config = MacConfig::paper(AlgorithmKind::Beb, 64);
        config.max_sim_time = Nanos::from_micros(50); // shorter than DIFS + data
        let mut rng = trial_rng(experiment_tag("mac-valve"), AlgorithmKind::Beb, 10, 0);
        let r = simulate(&config, 10, &mut rng);
        assert!(r.metrics.successes < 10);
    }
}
