//! # contention-mac
//!
//! A from-scratch, event-driven IEEE 802.11g DCF simulator — the substrate
//! that plays the role NS3 plays in the paper. It models everything the
//! paper's §I-B overview describes:
//!
//! * **DIFS sensing** before backoff begins or resumes; **SIFS** before ACKs.
//! * **Backoff countdown** over 9 µs slots that *freezes* while the medium is
//!   busy and resumes (not restarts) after a DIFS of idle.
//! * **Transmission time** proportional to packet size at 54 Mbit/s, plus a
//!   20 µs preamble — collisions burn real channel time.
//! * **ACKs and ACK timeouts**: success is only learned via an ACK after
//!   SIFS; a collision is only diagnosed after a 75 µs ACK timeout — the
//!   "collision detection" cost at the heart of the paper.
//! * **Contention-window growth** pluggable per algorithm
//!   (BEB / LB / LLB / STB / fixed; `contention-core` schedules).
//! * **RTS/CTS** (optional) with collisions on the small RTS frames instead
//!   of the data frames (§III-B "RTS/CTS").
//! * **BEST-OF-k** (§VI): 35 µs probe rounds with dummy 28 B frames and
//!   channel sensing, then fixed backoff at each station's estimate.
//! * **Failure injection**: an ACK-loss probability exercising the paper's
//!   "ACK timeout ≈ collision" identification.
//!
//! Simplifications relative to NS3, and why they preserve behaviour: the
//! channel is ideal (zero propagation delay over the 40 m grid, perfect
//! carrier sensing, no capture effect), so a transmission fails **iff** it
//! temporally overlaps another — which is the regime the paper demonstrates
//! it operates in (Figure 13: "virtually all ACK failures result from a
//! collision").
//!
//! Entry point: [`simulate`] with a [`MacConfig`].

pub mod config;
pub mod estimation;
pub mod medium;
pub mod simulator;
pub mod trace;

pub use config::MacConfig;
pub use simulator::{simulate, simulate_with, MacRun, MacScratch, MacSim};
pub use trace::{Span, SpanKind, Trace};
