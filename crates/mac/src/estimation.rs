//! Per-station BEST-OF-k estimation state (§VI, Figure 17).
//!
//! The simulator drives globally aligned 35 µs probe rounds; this module owns
//! the per-station bookkeeping: which phase the station is in, how many of
//! the phase's rounds it sensed clear, and the decision rule. Whether a round
//! *was* clear is a medium-level fact the simulator supplies.

use contention_core::estimate::BestOfKSpec;

/// What a station does at the start of a probe round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundAction {
    /// Transmit a dummy probe this round (counts as a busy round for self).
    Send,
    /// Listen this round.
    Sense,
}

/// Outcome of finishing a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// Majority of rounds sensed clear: adopt this window estimate.
    Decide(u32),
    /// Advance to the next phase.
    Continue,
}

/// Estimation state of one station.
#[derive(Debug, Clone)]
pub struct EstimState {
    spec: BestOfKSpec,
    phase: u32,
    rounds_done: u32,
    clear_rounds: u32,
    sent_this_round: bool,
}

impl EstimState {
    pub fn new(spec: BestOfKSpec) -> EstimState {
        EstimState {
            spec,
            phase: 0,
            rounds_done: 0,
            clear_rounds: 0,
            sent_this_round: false,
        }
    }

    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Probability of sending this phase: `2^-phase`.
    pub fn send_probability(&self) -> f64 {
        0.5f64.powi(self.phase as i32)
    }

    /// Begin a round with the given action (the simulator flips the coin so
    /// all randomness flows through one RNG stream).
    pub fn begin_round(&mut self, action: RoundAction) {
        self.sent_this_round = action == RoundAction::Send;
    }

    /// Finish the current round. `channel_was_busy` is the medium's verdict
    /// over the whole round; a round in which the station itself sent is
    /// never clear (its own frame occupied the channel).
    ///
    /// Returns `Some` when this round completed the phase.
    pub fn finish_round(&mut self, channel_was_busy: bool) -> Option<PhaseOutcome> {
        let clear = !channel_was_busy && !self.sent_this_round;
        debug_assert!(
            !self.sent_this_round || channel_was_busy,
            "a round the station sent in cannot be globally clear"
        );
        if clear {
            self.clear_rounds += 1;
        }
        self.rounds_done += 1;
        if self.rounds_done < self.spec.k {
            return None;
        }
        // Phase complete.
        let outcome = if self.spec.majority_clear(self.clear_rounds) {
            PhaseOutcome::Decide(self.spec.estimate_for_phase(self.phase))
        } else if self.phase >= self.spec.max_exponent {
            // Exhausted: the paper's loop ends; adopt the cap (CWmax).
            PhaseOutcome::Decide(self.spec.estimate_for_phase(self.spec.max_exponent))
        } else {
            self.phase += 1;
            PhaseOutcome::Continue
        };
        self.rounds_done = 0;
        self.clear_rounds = 0;
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_phase(state: &mut EstimState, rounds: &[(RoundAction, bool)]) -> Option<PhaseOutcome> {
        let mut out = None;
        for &(action, busy) in rounds {
            state.begin_round(action);
            out = state.finish_round(busy);
        }
        out
    }

    #[test]
    fn clear_majority_decides_with_current_phase_estimate() {
        let mut s = EstimState::new(BestOfKSpec::paper(3));
        // Phase 0, all busy → continue.
        let out = run_phase(
            &mut s,
            &[
                (RoundAction::Send, true),
                (RoundAction::Send, true),
                (RoundAction::Send, true),
            ],
        );
        assert_eq!(out, Some(PhaseOutcome::Continue));
        assert_eq!(s.phase(), 1);
        // Phase 1: two clear senses out of three → decide W = 2^1.
        let out = run_phase(
            &mut s,
            &[
                (RoundAction::Sense, false),
                (RoundAction::Sense, true),
                (RoundAction::Sense, false),
            ],
        );
        assert_eq!(out, Some(PhaseOutcome::Decide(2)));
    }

    #[test]
    fn own_send_counts_as_busy() {
        let mut s = EstimState::new(BestOfKSpec::paper(3));
        s.phase = 2;
        // Station sends in 2 of 3 rounds; the one sensed round is clear.
        // clear_rounds = 1, not a majority of 3 → continue.
        let out = run_phase(
            &mut s,
            &[
                (RoundAction::Send, true),
                (RoundAction::Sense, false),
                (RoundAction::Send, true),
            ],
        );
        assert_eq!(out, Some(PhaseOutcome::Continue));
        assert_eq!(s.phase(), 3);
    }

    #[test]
    fn exhaustion_adopts_the_cap() {
        let spec = BestOfKSpec::paper(3);
        let mut s = EstimState::new(spec);
        s.phase = spec.max_exponent;
        let out = run_phase(
            &mut s,
            &[
                (RoundAction::Sense, true),
                (RoundAction::Sense, true),
                (RoundAction::Sense, true),
            ],
        );
        assert_eq!(out, Some(PhaseOutcome::Decide(1024)));
    }

    #[test]
    fn send_probability_halves_per_phase() {
        let mut s = EstimState::new(BestOfKSpec::paper(3));
        assert_eq!(s.send_probability(), 1.0);
        s.phase = 3;
        assert_eq!(s.send_probability(), 0.125);
    }

    #[test]
    fn mid_phase_rounds_return_none() {
        let mut s = EstimState::new(BestOfKSpec::paper(5));
        s.begin_round(RoundAction::Sense);
        assert_eq!(s.finish_round(true), None);
        s.begin_round(RoundAction::Sense);
        assert_eq!(s.finish_round(true), None);
    }

    #[test]
    fn counters_reset_between_phases() {
        let mut s = EstimState::new(BestOfKSpec::paper(3));
        // Phase 0: one clear sense is not a majority → continue.
        run_phase(
            &mut s,
            &[
                (RoundAction::Sense, false),
                (RoundAction::Send, true),
                (RoundAction::Send, true),
            ],
        );
        // Phase 1: a single clear round must not combine with phase 0's.
        s.begin_round(RoundAction::Sense);
        assert_eq!(s.finish_round(false), None);
        s.begin_round(RoundAction::Send);
        assert_eq!(s.finish_round(true), None);
        s.begin_round(RoundAction::Send);
        // clear_rounds = 1 of 3 → continue, not decide.
        assert_eq!(s.finish_round(true), Some(PhaseOutcome::Continue));
    }
}
