//! The shared wireless medium.
//!
//! Ideal single-cell channel: every station (and the AP) hears every
//! transmission instantly. The medium tracks the set of frames currently on
//! air; a frame is *corrupted* iff another frame overlaps it at any point.
//! A maximal interval during which the medium is continuously busy is a
//! *busy period*; a busy period containing two or more corrupted contending
//! frames (data or RTS from stations) is one **disjoint collision** in the
//! paper's sense (§III-B), with multiplicity equal to the number of stations
//! involved.

use contention_core::time::Nanos;

/// Who is transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxSource {
    Station(u32),
    AccessPoint,
}

/// What kind of frame is on air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// A data packet (contends for the channel).
    Data,
    /// An RTS frame (contends for the channel in RTS/CTS mode).
    Rts,
    /// A CTS response from the AP.
    Cts,
    /// An acknowledgement from the AP.
    Ack,
    /// A BEST-OF-k dummy probe (no ACK expected, sent without sensing).
    Probe,
}

impl TxKind {
    /// Frames whose corruption constitutes a *collision between stations*.
    pub fn contends(self) -> bool {
        matches!(self, TxKind::Data | TxKind::Rts)
    }
}

/// A frame currently on air.
#[derive(Debug, Clone, Copy)]
pub struct ActiveTx {
    pub id: u32,
    pub source: TxSource,
    pub kind: TxKind,
    /// Station this frame is addressed to (ACK/CTS), if any.
    pub for_station: Option<u32>,
    /// The addressee's attempt generation when this response frame was
    /// scheduled. An ACK/CTS arriving after its station already timed out
    /// and moved on (possible when the ACK timeout is configured shorter
    /// than SIFS + ACK airtime) is detected as stale by comparing this tag.
    pub tag: u32,
    pub start: Nanos,
    pub end: Nanos,
    pub corrupted: bool,
    /// Number of other frames that temporally overlapped this one at any
    /// point — `overlaps + 1` is the collision multiplicity `k` a softened
    /// [`contention_core::channel::ChannelModel`] prices recovery by.
    pub overlaps: u32,
}

/// Outcome summary of a finished busy period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodEnd {
    /// Stations whose contending frame was corrupted this period.
    pub corrupted_contenders: u32,
    /// All frames seen this period (diagnostics).
    pub frames: u32,
    /// Frames of any kind that ended corrupted — bystanders of such a period
    /// could not decode what they heard and must defer for EIFS rather than
    /// DIFS (802.11).
    pub corrupted_frames: u32,
}

/// The medium state machine.
///
/// Busy-period aggregates are maintained *incrementally* — counters bumped
/// as each frame starts and ends — so closing a period is O(1): no list of
/// contenders is kept and nothing is rescanned. The only per-frame list is
/// `active` (frames currently on air), which a single-cell MAC keeps tiny
/// (one busy period's worth of overlapping frames).
pub struct Medium {
    active: Vec<ActiveTx>,
    idle_since: Nanos,
    /// Contending station frames that ended corrupted this busy period.
    period_corrupted_contenders: u32,
    period_frames: u32,
    period_corrupted_frames: u32,
}

impl Medium {
    pub fn new() -> Medium {
        Medium {
            active: Vec::new(),
            idle_since: Nanos::ZERO,
            period_corrupted_contenders: 0,
            period_frames: 0,
            period_corrupted_frames: 0,
        }
    }

    /// Clears all state for a fresh trial, keeping the `active` allocation.
    pub fn reset(&mut self) {
        self.active.clear();
        self.idle_since = Nanos::ZERO;
        self.period_corrupted_contenders = 0;
        self.period_frames = 0;
        self.period_corrupted_frames = 0;
    }

    pub fn is_busy(&self) -> bool {
        !self.active.is_empty()
    }

    /// Start of the current idle interval. Only meaningful when idle.
    pub fn idle_since(&self) -> Nanos {
        debug_assert!(!self.is_busy(), "idle_since queried while busy");
        self.idle_since
    }

    /// Puts a frame on air. Returns `true` when this started a busy period
    /// (the medium was idle). Any overlap corrupts both parties.
    pub fn start_tx(&mut self, tx: ActiveTx) -> bool {
        let was_idle = self.active.is_empty();
        if !was_idle {
            for other in &mut self.active {
                other.corrupted = true;
                other.overlaps += 1;
            }
        }
        let mut tx = tx;
        tx.corrupted = !was_idle;
        tx.overlaps = self.active.len() as u32;
        self.period_frames += 1;
        self.active.push(tx);
        was_idle
    }

    /// Removes a finished frame. Returns it plus, when the medium just went
    /// idle, the busy-period summary.
    pub fn end_tx(&mut self, id: u32, now: Nanos) -> (ActiveTx, Option<PeriodEnd>) {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == id)
            .expect("ending a frame that is not on air");
        let tx = self.active.swap_remove(idx);
        debug_assert_eq!(tx.end, now, "frame ended at the wrong time");
        if tx.corrupted {
            if tx.kind.contends() && matches!(tx.source, TxSource::Station(_)) {
                self.period_corrupted_contenders += 1;
            }
            self.period_corrupted_frames += 1;
        }
        if self.active.is_empty() {
            self.idle_since = now;
            let summary = PeriodEnd {
                corrupted_contenders: self.period_corrupted_contenders,
                frames: self.period_frames,
                corrupted_frames: self.period_corrupted_frames,
            };
            self.period_corrupted_contenders = 0;
            self.period_frames = 0;
            self.period_corrupted_frames = 0;
            (tx, Some(summary))
        } else {
            (tx, None)
        }
    }

    /// Number of frames currently on air (diagnostics).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

impl Default for Medium {
    fn default() -> Self {
        Medium::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u32, station: u32, kind: TxKind, start: u64, end: u64) -> ActiveTx {
        ActiveTx {
            id,
            source: TxSource::Station(station),
            kind,
            for_station: None,
            tag: 0,
            start: Nanos::from_micros(start),
            end: Nanos::from_micros(end),
            corrupted: false,
            overlaps: 0,
        }
    }

    #[test]
    fn lone_frame_is_clean() {
        let mut m = Medium::new();
        assert!(m.start_tx(tx(1, 0, TxKind::Data, 0, 10)));
        assert!(m.is_busy());
        let (t, period) = m.end_tx(1, Nanos::from_micros(10));
        assert!(!t.corrupted);
        let p = period.expect("period ended");
        assert_eq!(p.corrupted_contenders, 0);
        assert_eq!(p.frames, 1);
        assert!(!m.is_busy());
        assert_eq!(m.idle_since(), Nanos::from_micros(10));
    }

    #[test]
    fn simultaneous_frames_corrupt_each_other() {
        let mut m = Medium::new();
        assert!(m.start_tx(tx(1, 0, TxKind::Data, 0, 10)));
        assert!(!m.start_tx(tx(2, 1, TxKind::Data, 0, 10)));
        let (t1, p1) = m.end_tx(1, Nanos::from_micros(10));
        assert!(t1.corrupted);
        assert!(p1.is_none(), "medium still busy");
        let (t2, p2) = m.end_tx(2, Nanos::from_micros(10));
        assert!(t2.corrupted);
        let p = p2.expect("period ended");
        assert_eq!(p.corrupted_contenders, 2);
    }

    #[test]
    fn partial_overlap_also_corrupts() {
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, TxKind::Data, 0, 10));
        m.start_tx(tx(2, 1, TxKind::Data, 5, 15));
        let (t1, _) = m.end_tx(1, Nanos::from_micros(10));
        assert!(t1.corrupted);
        let (t2, p) = m.end_tx(2, Nanos::from_micros(15));
        assert!(t2.corrupted);
        assert_eq!(p.unwrap().corrupted_contenders, 2);
    }

    #[test]
    fn probe_corrupting_data_counts_one_contender() {
        // A BEST-OF-k probe landing on a data frame corrupts it, but only
        // one *contender* is involved — not a station-vs-station collision.
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, TxKind::Data, 0, 10));
        m.start_tx(tx(2, 1, TxKind::Probe, 3, 8));
        m.end_tx(2, Nanos::from_micros(8));
        let (t, p) = m.end_tx(1, Nanos::from_micros(10));
        assert!(t.corrupted);
        let p = p.unwrap();
        assert_eq!(p.corrupted_contenders, 1);
        assert_eq!(p.frames, 2);
    }

    #[test]
    fn ack_frames_do_not_contend() {
        let mut m = Medium::new();
        m.start_tx(ActiveTx {
            id: 1,
            source: TxSource::AccessPoint,
            kind: TxKind::Ack,
            for_station: Some(3),
            tag: 0,
            start: Nanos::ZERO,
            end: Nanos::from_micros(5),
            corrupted: false,
            overlaps: 0,
        });
        let (_, p) = m.end_tx(1, Nanos::from_micros(5));
        assert_eq!(p.unwrap().corrupted_contenders, 0);
    }

    #[test]
    fn three_way_collision_multiplicity() {
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, TxKind::Data, 0, 10));
        m.start_tx(tx(2, 1, TxKind::Data, 0, 10));
        m.start_tx(tx(3, 2, TxKind::Data, 0, 10));
        let (t1, _) = m.end_tx(1, Nanos::from_micros(10));
        let (t2, _) = m.end_tx(2, Nanos::from_micros(10));
        let (t3, p) = m.end_tx(3, Nanos::from_micros(10));
        assert_eq!(p.unwrap().corrupted_contenders, 3);
        // Every frame overlapped the other two: multiplicity k = 3 for all.
        for t in [t1, t2, t3] {
            assert_eq!(t.overlaps, 2);
        }
    }

    #[test]
    fn overlap_counts_follow_the_chain_not_the_instant() {
        // Three frames in a chain: 1 overlaps 2, 2 overlaps both, 3 only 2.
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, TxKind::Data, 0, 10));
        m.start_tx(tx(2, 1, TxKind::Data, 8, 20));
        let (t1, _) = m.end_tx(1, Nanos::from_micros(10));
        m.start_tx(tx(3, 2, TxKind::Data, 12, 25));
        let (t2, _) = m.end_tx(2, Nanos::from_micros(20));
        let (t3, _) = m.end_tx(3, Nanos::from_micros(25));
        assert_eq!(t1.overlaps, 1);
        assert_eq!(t2.overlaps, 2);
        assert_eq!(t3.overlaps, 1);
    }

    #[test]
    fn consecutive_periods_are_independent() {
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, TxKind::Data, 0, 10));
        m.start_tx(tx(2, 1, TxKind::Data, 0, 10));
        m.end_tx(1, Nanos::from_micros(10));
        m.end_tx(2, Nanos::from_micros(10));
        // Second period: clean success must not inherit state.
        m.start_tx(tx(3, 2, TxKind::Data, 50, 60));
        let (t, p) = m.end_tx(3, Nanos::from_micros(60));
        assert!(!t.corrupted);
        assert_eq!(p.unwrap().corrupted_contenders, 0);
    }

    #[test]
    #[should_panic(expected = "not on air")]
    fn ending_unknown_frame_panics() {
        let mut m = Medium::new();
        m.end_tx(99, Nanos::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any set of same-length station frames started together,
        /// corruption is all-or-nothing: one frame is clean, two or more
        /// corrupt everybody, and the period multiplicity equals the count.
        #[test]
        fn collision_multiplicity_matches_group(k in 1u32..=12) {
            let mut m = Medium::new();
            for id in 0..k {
                m.start_tx(ActiveTx {
                    id,
                    source: TxSource::Station(id),
                    kind: TxKind::Data,
                    for_station: None,
                    tag: 0,
                    start: Nanos::ZERO,
                    end: Nanos::from_micros(10),
                    corrupted: false,
                    overlaps: 0,
                });
            }
            let mut last_period = None;
            for id in 0..k {
                let (tx, period) = m.end_tx(id, Nanos::from_micros(10));
                prop_assert_eq!(tx.corrupted, k >= 2);
                if id + 1 == k {
                    last_period = period;
                } else {
                    prop_assert!(period.is_none());
                }
            }
            let p = last_period.expect("period closed with the last frame");
            prop_assert_eq!(p.frames, k);
            prop_assert_eq!(p.corrupted_contenders, if k >= 2 { k } else { 0 });
        }

        /// Sequential (non-overlapping) frames never corrupt, regardless of
        /// gaps, and each forms its own busy period.
        #[test]
        fn sequential_frames_stay_clean(
            gaps in prop::collection::vec(0u64..50, 1..20),
        ) {
            let mut m = Medium::new();
            let mut t = 0u64;
            for (i, &gap) in gaps.iter().enumerate() {
                let start = Nanos::from_micros(t);
                let end = Nanos::from_micros(t + 10);
                let became_busy = m.start_tx(ActiveTx {
                    id: i as u32,
                    source: TxSource::Station(i as u32),
                    kind: TxKind::Data,
                    for_station: None,
                    tag: 0,
                    start,
                    end,
                    corrupted: false,
                    overlaps: 0,
                });
                prop_assert!(became_busy);
                let (tx, period) = m.end_tx(i as u32, end);
                prop_assert!(!tx.corrupted);
                prop_assert_eq!(period.expect("idle again").corrupted_contenders, 0);
                t += 10 + gap;
            }
        }
    }
}
