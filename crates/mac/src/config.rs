//! Configuration of one MAC-level experiment.

use contention_core::algorithm::AlgorithmKind;
use contention_core::channel::ChannelModel;
use contention_core::estimate::BestOfKSpec;
use contention_core::params::Phy80211g;
use contention_core::schedule::Truncation;
use contention_core::time::Nanos;
use serde::{Deserialize, Serialize};

/// Everything the simulator needs besides `n` and a RNG.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MacConfig {
    /// PHY/MAC constants (Table I).
    pub phy: Phy80211g,
    /// UDP payload size; the paper's headline sizes are 64 B and 1024 B.
    pub payload_bytes: u32,
    /// Backoff algorithm every station runs.
    pub algorithm: AlgorithmKind,
    /// Enable the RTS/CTS exchange (§III-B); off in Table I.
    pub rts_cts: bool,
    /// Apply 802.11's EIFS rule: bystanders of a busy period that ended with
    /// an undecodable (corrupted) frame defer EIFS = SIFS + ACK + DIFS
    /// instead of DIFS. NS3 implements this; it raises the per-collision
    /// cost charged to *every* waiting station.
    pub use_eifs: bool,
    /// Probability an otherwise-clean data frame loses its ACK to "wireless
    /// effects" (failure injection; 0 in the paper's ideal setup).
    pub ack_loss_prob: f64,
    /// The channel model applied to data frames (arXiv:2408.11275
    /// softening). A clean data frame occupies its own airtime and takes
    /// one noise draw, like a singleton slot. A collision is resolved once
    /// per busy period with `ChannelModel::sample_slot`'s three-draw shape:
    /// noise, recovery at multiplicity `k`, uniform winner among the
    /// colliding data frames. [`ChannelModel::ideal`] (the default)
    /// reproduces the paper's channel exactly, consuming no randomness.
    /// Continuous-time caveats (where the MAC necessarily deviates from the
    /// slotted abstraction): `k` is the frame-overlap count of the first
    /// corrupted data frame to end, so a chained busy period mixing
    /// multiplicities resolves at the first frame's `k`; a winner index
    /// landing on a non-data overlapper (RTS/probe) wastes the capture; and
    /// RTS frames are not softened — a corrupted RTS stays lost.
    pub channel: ChannelModel,
    /// Safety valve: abort the trial at this simulated instant. Runs that
    /// trip it return `successes < n`.
    pub max_sim_time: Nanos,
    /// Record a [`crate::trace::Trace`] of every span (Figure 13).
    pub capture_trace: bool,
}

impl MacConfig {
    /// The paper's setup for a given algorithm and payload size.
    pub fn paper(algorithm: AlgorithmKind, payload_bytes: u32) -> MacConfig {
        MacConfig {
            phy: Phy80211g::paper_defaults(),
            payload_bytes,
            algorithm,
            rts_cts: false,
            use_eifs: true,
            ack_loss_prob: 0.0,
            channel: ChannelModel::ideal(),
            max_sim_time: Nanos::from_millis(60_000),
            capture_trace: false,
        }
    }

    /// The paper's setup over a softened/noisy channel.
    pub fn with_channel(
        algorithm: AlgorithmKind,
        payload_bytes: u32,
        channel: ChannelModel,
    ) -> MacConfig {
        MacConfig {
            channel,
            ..MacConfig::paper(algorithm, payload_bytes)
        }
    }

    /// CW clamping derived from the PHY parameters.
    pub fn truncation(&self) -> Truncation {
        Truncation {
            cw_min: self.phy.cw_min,
            cw_max: self.phy.cw_max,
        }
    }

    /// The estimation spec when the algorithm is BEST-OF-k.
    pub fn best_of_k(&self) -> Option<BestOfKSpec> {
        match self.algorithm {
            AlgorithmKind::BestOfK { k } => Some(BestOfKSpec::paper(k)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = MacConfig::paper(AlgorithmKind::Beb, 64);
        assert_eq!(c.payload_bytes, 64);
        assert!(!c.rts_cts);
        assert_eq!(c.ack_loss_prob, 0.0);
        assert!(c.channel.is_ideal());
        assert_eq!(c.truncation(), Truncation::paper());
        assert!(c.best_of_k().is_none());
    }

    #[test]
    fn with_channel_overrides_only_the_channel() {
        let soft = ChannelModel::softened(0.5);
        let c = MacConfig::with_channel(AlgorithmKind::Beb, 64, soft);
        assert_eq!(c.channel, soft);
        assert_eq!(c.payload_bytes, 64);
        assert!(!c.channel.is_ideal());
    }

    #[test]
    fn best_of_k_spec_surfaces() {
        let c = MacConfig::paper(AlgorithmKind::BestOfK { k: 5 }, 64);
        let spec = c.best_of_k().expect("spec");
        assert_eq!(spec.k, 5);
        assert_eq!(spec.round, Nanos::from_micros(35));
    }
}
