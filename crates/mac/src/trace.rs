//! Execution traces (Figure 13).
//!
//! The paper illustrates a BEB run with 20 stations as per-station timelines:
//! thick lines for transmissions, thin lines for ACK-timeout waits. We record
//! the same spans and render them as ASCII art.

use contention_core::time::Nanos;
use serde::{Deserialize, Serialize};

/// What a span on a station's timeline represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Data frame on air that was acknowledged.
    DataOk,
    /// Data frame on air that collided (or lost its ACK).
    DataFail,
    /// RTS frame on air.
    Rts,
    /// CTS addressed to this station.
    Cts,
    /// ACK addressed to this station.
    Ack,
    /// Waiting out an ACK (or CTS) timeout.
    TimeoutWait,
    /// BEST-OF-k dummy probe.
    Probe,
}

impl SpanKind {
    /// Glyph used by the ASCII rendering.
    fn glyph(self) -> char {
        match self {
            SpanKind::DataOk => '█',
            SpanKind::DataFail => '▓',
            SpanKind::Rts => 'r',
            SpanKind::Cts => 'c',
            SpanKind::Ack => 'a',
            SpanKind::TimeoutWait => '-',
            SpanKind::Probe => '.',
        }
    }
}

/// One interval on one station's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    pub station: u32,
    pub kind: SpanKind,
    pub start: Nanos,
    pub end: Nanos,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub n: u32,
    pub spans: Vec<Span>,
}

impl Trace {
    pub fn new(n: u32) -> Trace {
        Trace {
            n,
            spans: Vec::new(),
        }
    }

    pub fn push(&mut self, span: Span) {
        debug_assert!(span.end >= span.start, "inverted span");
        self.spans.push(span);
    }

    /// End of the last span (the trace's horizon).
    pub fn horizon(&self) -> Nanos {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Spans belonging to one station, in time order.
    pub fn station_spans(&self, station: u32) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .spans
            .iter()
            .copied()
            .filter(|s| s.station == station)
            .collect();
        spans.sort_by_key(|s| s.start);
        spans
    }

    /// Verifies that no station has two overlapping spans — a station cannot
    /// transmit and wait simultaneously. Returns the first violation.
    pub fn first_overlap(&self) -> Option<(Span, Span)> {
        for station in 0..self.n {
            let spans = self.station_spans(station);
            for pair in spans.windows(2) {
                if pair[1].start < pair[0].end {
                    return Some((pair[0], pair[1]));
                }
            }
        }
        None
    }

    /// Figure 13-style ASCII rendering: one row per station, `width`
    /// characters across the time axis. Later spans overwrite earlier ones
    /// within a cell; sub-cell spans still paint one glyph.
    pub fn render_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "width too small to render");
        let horizon = self.horizon();
        if horizon == Nanos::ZERO {
            return String::new();
        }
        let scale = horizon.as_nanos() as f64 / width as f64;
        let mut out = String::new();
        for station in 0..self.n {
            let mut row = vec![' '; width];
            for span in self.station_spans(station) {
                let a = (span.start.as_nanos() as f64 / scale) as usize;
                let b = ((span.end.as_nanos() as f64 / scale) as usize).min(width - 1);
                for cell in row.iter_mut().take(b + 1).skip(a.min(width - 1)) {
                    *cell = span.kind.glyph();
                }
            }
            out.push_str(&format!("{station:>4} |"));
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "      0 {:>width$}\n",
            format!("{:.0}µs", horizon.as_micros_f64()),
            width = width - 2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> Nanos {
        Nanos::from_micros(x)
    }

    #[test]
    fn horizon_and_station_filtering() {
        let mut t = Trace::new(2);
        t.push(Span {
            station: 0,
            kind: SpanKind::DataOk,
            start: us(0),
            end: us(10),
        });
        t.push(Span {
            station: 1,
            kind: SpanKind::DataFail,
            start: us(5),
            end: us(15),
        });
        t.push(Span {
            station: 0,
            kind: SpanKind::Ack,
            start: us(20),
            end: us(25),
        });
        assert_eq!(t.horizon(), us(25));
        assert_eq!(t.station_spans(0).len(), 2);
        assert_eq!(t.station_spans(1).len(), 1);
    }

    #[test]
    fn overlap_detection() {
        let mut t = Trace::new(1);
        t.push(Span {
            station: 0,
            kind: SpanKind::DataOk,
            start: us(0),
            end: us(10),
        });
        t.push(Span {
            station: 0,
            kind: SpanKind::Ack,
            start: us(10),
            end: us(12),
        });
        assert!(t.first_overlap().is_none(), "touching spans are fine");
        t.push(Span {
            station: 0,
            kind: SpanKind::Probe,
            start: us(11),
            end: us(13),
        });
        assert!(t.first_overlap().is_some());
    }

    #[test]
    fn ascii_render_shape() {
        let mut t = Trace::new(2);
        t.push(Span {
            station: 0,
            kind: SpanKind::DataOk,
            start: us(0),
            end: us(50),
        });
        t.push(Span {
            station: 1,
            kind: SpanKind::TimeoutWait,
            start: us(50),
            end: us(100),
        });
        let art = t.render_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // two stations + axis
        assert!(lines[0].contains('█'));
        assert!(lines[1].contains('-'));
        assert!(lines[2].contains("100µs"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        let t = Trace::new(3);
        assert_eq!(t.render_ascii(40), "");
    }
}
