//! The paper's reporting pipeline: outlier filter → median → 95 % CI.

use crate::summary::{Metric, TrialSummary};
use crate::sweep::SweepCell;
use contention_core::algorithm::AlgorithmKind;
use contention_core::util::percent_change;
use contention_stats::ci::median_ci95;
use contention_stats::outliers::without_outliers;
use contention_stats::summary::median;
use serde::{Deserialize, Serialize};

/// One plotted point: median with its 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    pub x: f64,
    pub median: f64,
    pub ci_low: f64,
    pub ci_high: f64,
    /// Trials surviving the outlier filter.
    pub kept: usize,
    /// Trials discarded by the outlier filter.
    pub dropped: usize,
}

/// A named series (one line of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// The point at a given x (panics if absent — figures always share grids).
    pub fn at(&self, x: f64) -> SeriesPoint {
        *self
            .points
            .iter()
            .find(|p| p.x == x)
            .unwrap_or_else(|| panic!("series {} has no point at {x}", self.name))
    }

    /// Median at the largest x — the value the paper quotes percentages at
    /// (`n = 150` in most figures).
    pub fn final_median(&self) -> f64 {
        self.points.last().expect("non-empty series").median
    }
}

/// Aggregates one metric over the trials of one cell.
pub fn aggregate_cell(cell: &SweepCell, metric: Metric) -> SeriesPoint {
    let raw: Vec<f64> = cell.trials.iter().map(|t| metric.extract(t)).collect();
    aggregate_values(cell.n as f64, &raw)
}

/// Aggregates raw per-trial values at a given x.
pub fn aggregate_values(x: f64, raw: &[f64]) -> SeriesPoint {
    assert!(!raw.is_empty(), "no trials to aggregate");
    let kept = without_outliers(raw);
    let dropped = raw.len() - kept.len();
    let med = median(&kept);
    let (lo, hi) = median_ci95(&kept);
    SeriesPoint {
        x,
        median: med,
        ci_low: lo,
        ci_high: hi,
        kept: kept.len(),
        dropped,
    }
}

/// Builds one series per algorithm for a metric, over the sweep's n grid.
pub fn series_per_algorithm(
    cells: &[SweepCell],
    algorithms: &[AlgorithmKind],
    metric: Metric,
) -> Vec<Series> {
    algorithms
        .iter()
        .map(|&alg| Series {
            name: alg.label(),
            points: cells
                .iter()
                .filter(|c| c.algorithm == alg)
                .map(|c| aggregate_cell(c, metric))
                .collect(),
        })
        .collect()
}

/// The paper's headline statistic: percent change of each challenger vs the
/// first series (BEB) at the largest x. Returns `(name, percent)` pairs.
pub fn final_percent_vs_first(series: &[Series]) -> Vec<(String, f64)> {
    let baseline = series.first().expect("at least one series").final_median();
    series
        .iter()
        .skip(1)
        .map(|s| (s.name.clone(), percent_change(s.final_median(), baseline)))
        .collect()
}

/// Extracts raw metric values of one cell — for figures that need the full
/// sample (e.g. the Fig 14 regression).
pub fn raw_values(cell: &SweepCell, metric: Metric) -> Vec<f64> {
    cell.trials.iter().map(|t| metric.extract(t)).collect()
}

/// Pairs up per-trial values of two cells (same trial index) and returns the
/// differences `a − b`; the Fig 14 scatter.
pub fn paired_differences(a: &[TrialSummary], b: &[TrialSummary], metric: Metric) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "paired cells need equal trial counts");
    a.iter()
        .zip(b)
        .map(|(x, y)| metric.extract(x) - metric.extract(y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::algorithm::AlgorithmKind::*;

    fn summary(n: u32, cw: f64) -> TrialSummary {
        TrialSummary {
            n,
            successes: n,
            cw_slots: cw,
            half_cw_slots: 0.0,
            total_time_us: cw * 10.0,
            half_time_us: 0.0,
            collisions: 0.0,
            colliding_stations: 0.0,
            ack_timeouts: 0.0,
            max_ack_timeouts: 0.0,
            max_ack_timeout_time_us: 0.0,
            median_estimate: 0.0,
        }
    }

    fn cell_with(alg: AlgorithmKind, n: u32, values: &[f64]) -> SweepCell {
        SweepCell {
            algorithm: alg,
            n,
            trials: values.iter().map(|&v| summary(n, v)).collect(),
        }
    }

    #[test]
    fn aggregation_filters_and_brackets() {
        let mut vals: Vec<f64> = (0..29).map(|i| 100.0 + i as f64).collect();
        vals.push(1e6); // gross outlier
        let c = cell_with(Beb, 10, &vals);
        let p = aggregate_cell(&c, Metric::CwSlots);
        assert_eq!(p.dropped, 1);
        assert_eq!(p.kept, 29);
        assert!(p.ci_low <= p.median && p.median <= p.ci_high);
        assert!(p.median < 200.0);
    }

    #[test]
    fn series_building_and_percentages() {
        let cells = vec![
            cell_with(Beb, 10, &[100.0, 100.0, 100.0, 100.0]),
            cell_with(Beb, 20, &[200.0, 200.0, 200.0, 200.0]),
            cell_with(Sawtooth, 10, &[50.0, 50.0, 50.0, 50.0]),
            cell_with(Sawtooth, 20, &[40.0, 40.0, 40.0, 40.0]),
        ];
        let series = series_per_algorithm(&cells, &[Beb, Sawtooth], Metric::CwSlots);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].at(20.0).median, 200.0);
        let pct = final_percent_vs_first(&series);
        assert_eq!(pct, vec![("STB".to_string(), -80.0)]);
    }

    #[test]
    fn paired_differences_align_trials() {
        let a = vec![summary(5, 10.0), summary(5, 20.0)];
        let b = vec![summary(5, 4.0), summary(5, 25.0)];
        let d = paired_differences(&a, &b, Metric::CwSlots);
        assert_eq!(d, vec![6.0, -5.0]);
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn empty_cell_panics() {
        let c = SweepCell {
            algorithm: Beb,
            n: 1,
            trials: vec![],
        };
        let _ = aggregate_cell(&c, Metric::CwSlots);
    }
}
