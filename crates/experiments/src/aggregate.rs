//! The paper's reporting pipeline: outlier filter → median → 95 % CI —
//! fed by the sweep engine's streaming fold seam.
//!
//! [`MetricStats`] is the accumulator every figure plugs into
//! [`Sweep::run_fold`](crate::sweep::Sweep::run_fold): it extracts *only the
//! requested metrics* from each trial's summary into flat per-trial `f64`
//! buffers (one [`StreamingSample`] per metric), so a cell retains
//! `trials × requested-metrics × 8` bytes instead of `trials ×
//! size_of::<TrialSummary>()`. The buffers are position-addressed by trial
//! index, so the fold is bit-identical across thread counts and batch sizes.

use crate::summary::{Metric, TrialSummary};
use contention_core::algorithm::AlgorithmKind;
use contention_core::merge::{DedupMergeableAccumulator, MergeStats};
use contention_core::util::percent_change;
use contention_sim::engine::{Accumulator, FoldedCell, MergeableAccumulator};
use contention_stats::ci::median_ci95;
use contention_stats::outliers::without_outliers;
use contention_stats::stream::StreamingSample;
use contention_stats::summary::median;
use serde::{Deserialize, Serialize};

/// One plotted point: median with its 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    pub x: f64,
    pub median: f64,
    pub ci_low: f64,
    pub ci_high: f64,
    /// Trials surviving the outlier filter.
    pub kept: usize,
    /// Trials discarded by the outlier filter.
    pub dropped: usize,
}

/// A named series (one line of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// The point at a given x (panics if absent — figures always share grids).
    pub fn at(&self, x: f64) -> SeriesPoint {
        *self
            .points
            .iter()
            .find(|p| p.x == x)
            .unwrap_or_else(|| panic!("series {} has no point at {x}", self.name))
    }

    /// Median at the largest x — the value the paper quotes percentages at
    /// (`n = 150` in most figures).
    pub fn final_median(&self) -> f64 {
        self.points.last().expect("non-empty series").median
    }
}

/// Streams the requested metrics of one cell into flat per-trial buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStats {
    metrics: Vec<Metric>,
    samples: Vec<StreamingSample>,
}

impl MetricStats {
    /// A collector retaining `metrics` over `trials` trials.
    pub fn new(metrics: &[Metric], trials: u32) -> MetricStats {
        MetricStats {
            metrics: metrics.to_vec(),
            samples: metrics
                .iter()
                .map(|_| StreamingSample::new(trials as usize))
                .collect(),
        }
    }

    /// The `init` closure [`Sweep::run_fold`](crate::sweep::Sweep::run_fold)
    /// wants: one collector per cell over the given metrics.
    pub fn collector(
        metrics: &[Metric],
    ) -> impl FnMut(AlgorithmKind, u32, u32) -> MetricStats + '_ {
        move |_alg, _n, trials| MetricStats::new(metrics, trials)
    }

    /// The per-trial values of one metric, in trial order. Panics if the
    /// metric wasn't requested at construction.
    pub fn sample(&self, metric: Metric) -> &[f64] {
        let i = self
            .metrics
            .iter()
            .position(|&m| m == metric)
            .unwrap_or_else(|| panic!("metric {metric:?} was not collected"));
        self.samples[i].values()
    }

    /// Outlier-filtered median + CI of one metric at a given x.
    pub fn point(&self, x: f64, metric: Metric) -> SeriesPoint {
        aggregate_values(x, self.sample(metric))
    }

    /// Median of one metric without the outlier filter — the ablations
    /// report raw medians.
    pub fn raw_median(&self, metric: Metric) -> f64 {
        median(self.sample(metric))
    }

    /// Bytes retained by this cell's buffers.
    pub fn retained_bytes(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.len() * StreamingSample::BYTES_PER_TRIAL)
            .sum()
    }

    /// The metrics this collector retains, in buffer order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// The per-metric buffers, raw (NaN sentinels included) — what a
    /// partial-state shard artifact serializes.
    pub fn raw_samples(&self) -> &[StreamingSample] {
        &self.samples
    }

    /// True once every (trial, metric) slot has been recorded.
    pub fn is_complete(&self) -> bool {
        self.samples.iter().all(|s| s.is_complete())
    }

    /// Rebuilds a (possibly partial) collector from its buffers — the
    /// deserialization side of [`MetricStats::raw_samples`].
    pub fn from_parts(metrics: Vec<Metric>, samples: Vec<StreamingSample>) -> MetricStats {
        assert_eq!(
            metrics.len(),
            samples.len(),
            "one buffer per metric required"
        );
        assert!(
            samples.windows(2).all(|w| w[0].len() == w[1].len()),
            "metric buffers must agree on the trial count"
        );
        MetricStats { metrics, samples }
    }

    /// Fallible merge across shard boundaries: unions each metric's filled
    /// trials, erroring (instead of panicking) on mismatched metric lists
    /// or a (trial, metric) slot both operands filled.
    pub fn try_merge(&mut self, other: MetricStats) -> Result<(), String> {
        if self.metrics != other.metrics {
            return Err(format!(
                "cannot merge cells collecting different metrics ({:?} vs {:?})",
                self.metrics, other.metrics
            ));
        }
        for ((metric, mine), theirs) in self
            .metrics
            .iter()
            .zip(&mut self.samples)
            .zip(other.samples)
        {
            mine.try_merge(theirs)
                .map_err(|e| format!("metric {}: {e}", metric.key()))?;
        }
        Ok(())
    }

    /// Duplicate-tolerant merge for the work-distribution seam (at-least-
    /// once delivery): metric-wise [`StreamingSample::try_merge_dedup`],
    /// summing the per-metric fresh/duplicate tallies. Bit-identical
    /// re-deliveries of a trial are discarded; conflicting ones error.
    pub fn try_merge_dedup(&mut self, other: MetricStats) -> Result<MergeStats, String> {
        if self.metrics != other.metrics {
            return Err(format!(
                "cannot merge cells collecting different metrics ({:?} vs {:?})",
                self.metrics, other.metrics
            ));
        }
        let mut stats = MergeStats::default();
        for ((metric, mine), theirs) in self
            .metrics
            .iter()
            .zip(&mut self.samples)
            .zip(other.samples)
        {
            stats.absorb(
                mine.try_merge_dedup(theirs)
                    .map_err(|e| format!("metric {}: {e}", metric.key()))?,
            );
        }
        Ok(stats)
    }
}

impl DedupMergeableAccumulator for MetricStats {
    fn try_merge_dedup(&mut self, other: Self) -> Result<MergeStats, String> {
        MetricStats::try_merge_dedup(self, other)
    }
}

impl MergeableAccumulator for MetricStats {
    /// Metric-wise [`StreamingSample`] union; inherits its associativity
    /// and exactly-once guarantees.
    fn merge(&mut self, other: Self) {
        self.try_merge(other).expect("mergeable cells");
    }
}

impl Accumulator<TrialSummary> for MetricStats {
    fn record(&mut self, trial: u32, value: TrialSummary) {
        for (metric, sample) in self.metrics.iter().zip(&mut self.samples) {
            sample.record(trial as usize, metric.extract(&value));
        }
    }
}

/// The folded cell type every figure consumes.
pub type StatsCell = FoldedCell<MetricStats>;

/// Aggregates raw per-trial values at a given x.
pub fn aggregate_values(x: f64, raw: &[f64]) -> SeriesPoint {
    assert!(!raw.is_empty(), "no trials to aggregate");
    let kept = without_outliers(raw);
    let dropped = raw.len() - kept.len();
    let med = median(&kept);
    let (lo, hi) = median_ci95(&kept);
    SeriesPoint {
        x,
        median: med,
        ci_low: lo,
        ci_high: hi,
        kept: kept.len(),
        dropped,
    }
}

/// Builds one series per algorithm for a metric, over the sweep's n grid.
pub fn series_per_algorithm(
    cells: &[StatsCell],
    algorithms: &[AlgorithmKind],
    metric: Metric,
) -> Vec<Series> {
    algorithms
        .iter()
        .map(|&alg| Series {
            name: alg.label(),
            points: cells
                .iter()
                .filter(|c| c.algorithm == alg)
                .map(|c| c.acc.point(c.n as f64, metric))
                .collect(),
        })
        .collect()
}

/// The paper's headline statistic: percent change of each challenger vs the
/// first series (BEB) at the largest x. Returns `(name, percent)` pairs.
pub fn final_percent_vs_first(series: &[Series]) -> Vec<(String, f64)> {
    let baseline = series.first().expect("at least one series").final_median();
    series
        .iter()
        .skip(1)
        .map(|s| (s.name.clone(), percent_change(s.final_median(), baseline)))
        .collect()
}

/// Pairs up per-trial values of two samples (same trial index — the engine's
/// position-addressed buffers guarantee alignment) and returns the
/// differences `a − b`; the Fig 14 scatter.
pub fn paired_differences(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "paired cells need equal trial counts");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::algorithm::AlgorithmKind::*;

    fn summary(n: u32, cw: f64) -> TrialSummary {
        TrialSummary {
            n,
            successes: n,
            cw_slots: cw,
            half_cw_slots: 0.0,
            total_time_us: cw * 10.0,
            half_time_us: 0.0,
            collisions: 0.0,
            colliding_stations: 0.0,
            ack_timeouts: 0.0,
            max_ack_timeouts: 0.0,
            max_ack_timeout_time_us: 0.0,
            median_estimate: 0.0,
            ..TrialSummary::default()
        }
    }

    fn cell_with(alg: AlgorithmKind, n: u32, values: &[f64]) -> StatsCell {
        let mut acc =
            MetricStats::new(&[Metric::CwSlots, Metric::TotalTimeUs], values.len() as u32);
        for (t, &v) in values.iter().enumerate() {
            acc.record(t as u32, summary(n, v));
        }
        StatsCell {
            algorithm: alg,
            n,
            acc,
        }
    }

    #[test]
    fn aggregation_filters_and_brackets() {
        let mut vals: Vec<f64> = (0..29).map(|i| 100.0 + i as f64).collect();
        vals.push(1e6); // gross outlier
        let c = cell_with(Beb, 10, &vals);
        let p = c.acc.point(10.0, Metric::CwSlots);
        assert_eq!(p.dropped, 1);
        assert_eq!(p.kept, 29);
        assert!(p.ci_low <= p.median && p.median <= p.ci_high);
        assert!(p.median < 200.0);
    }

    #[test]
    fn series_building_and_percentages() {
        let cells = vec![
            cell_with(Beb, 10, &[100.0, 100.0, 100.0, 100.0]),
            cell_with(Beb, 20, &[200.0, 200.0, 200.0, 200.0]),
            cell_with(Sawtooth, 10, &[50.0, 50.0, 50.0, 50.0]),
            cell_with(Sawtooth, 20, &[40.0, 40.0, 40.0, 40.0]),
        ];
        let series = series_per_algorithm(&cells, &[Beb, Sawtooth], Metric::CwSlots);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].at(20.0).median, 200.0);
        let pct = final_percent_vs_first(&series);
        assert_eq!(pct, vec![("STB".to_string(), -80.0)]);
    }

    #[test]
    fn stats_extract_only_requested_metrics() {
        let c = cell_with(Beb, 5, &[10.0, 20.0]);
        assert_eq!(c.acc.sample(Metric::CwSlots), &[10.0, 20.0]);
        assert_eq!(c.acc.sample(Metric::TotalTimeUs), &[100.0, 200.0]);
        assert_eq!(c.acc.raw_median(Metric::CwSlots), 15.0);
        assert_eq!(c.acc.retained_bytes(), 2 * 2 * 8);
    }

    #[test]
    fn merge_of_disjoint_trial_ranges_matches_sequential_fold() {
        let metrics = [Metric::CwSlots, Metric::TotalTimeUs];
        let values = [10.0, 20.0, 30.0, 40.0, 50.0];
        let mut sequential = MetricStats::new(&metrics, values.len() as u32);
        let mut lo = MetricStats::new(&metrics, values.len() as u32);
        let mut hi = MetricStats::new(&metrics, values.len() as u32);
        for (t, &v) in values.iter().enumerate() {
            sequential.record(t as u32, summary(9, v));
            let shard = if t < 2 { &mut lo } else { &mut hi };
            shard.record(t as u32, summary(9, v));
        }
        assert!(!lo.is_complete());
        lo.merge(hi);
        assert!(lo.is_complete());
        assert_eq!(lo, sequential);
    }

    #[test]
    fn merge_rejects_mismatched_metrics_and_overlap() {
        let mut a = MetricStats::new(&[Metric::CwSlots], 2);
        let b = MetricStats::new(&[Metric::Collisions], 2);
        let err = a.try_merge(b).unwrap_err();
        assert!(err.contains("different metrics"), "{err}");
        let mut c = MetricStats::new(&[Metric::CwSlots], 2);
        let mut d = MetricStats::new(&[Metric::CwSlots], 2);
        c.record(0, summary(5, 1.0));
        d.record(0, summary(5, 2.0));
        let err = c.try_merge(d).unwrap_err();
        assert!(err.contains("cw_slots") && err.contains("trial 0"), "{err}");
    }

    #[test]
    fn parts_round_trip_preserves_partial_state() {
        let mut acc = MetricStats::new(&[Metric::CwSlots, Metric::Collisions], 3);
        acc.record(1, summary(7, 5.0));
        let rebuilt = MetricStats::from_parts(acc.metrics().to_vec(), acc.raw_samples().to_vec());
        assert_eq!(rebuilt.metrics(), acc.metrics());
        for (r, a) in rebuilt.raw_samples().iter().zip(acc.raw_samples()) {
            let bits = |s: &contention_stats::stream::StreamingSample| {
                s.raw().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(r), bits(a));
        }
    }

    #[test]
    #[should_panic(expected = "one buffer per metric")]
    fn from_parts_rejects_shape_mismatch() {
        let _ = MetricStats::from_parts(vec![Metric::CwSlots], vec![]);
    }

    #[test]
    #[should_panic(expected = "was not collected")]
    fn unrequested_metric_panics() {
        let c = cell_with(Beb, 5, &[10.0]);
        let _ = c.acc.sample(Metric::Collisions);
    }

    #[test]
    fn paired_differences_align_trials() {
        let a = [10.0, 20.0];
        let b = [4.0, 25.0];
        assert_eq!(paired_differences(&a, &b), vec![6.0, -5.0]);
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn empty_cell_panics() {
        let c = MetricStats::new(&[Metric::CwSlots], 0);
        let _ = c.point(1.0, Metric::CwSlots);
    }
}
