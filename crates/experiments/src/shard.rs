//! Process-sharded sweep state: the `shard_state/v1` artifact.
//!
//! A sharded run executes one [`CellRange`](contention_sim::engine::CellRange)
//! of a figure's sweep grid (`repro shard <experiment> --shard i/N`) and
//! serializes the resulting per-cell [`MetricStats`] — raw per-trial,
//! per-metric buffers — to a JSON artifact. `repro merge` reads any set of
//! such artifacts, validates that they describe the same sweep, merges the
//! per-cell accumulator state through the `MergeableAccumulator` seam, and
//! hands the reassembled cells to the figure's report builder. Because the
//! buffers are position-addressed and the JSON writer/reader pair is
//! round-trip exact ([`crate::jsonout`] / [`crate::jsonin`]), the merged
//! report is **byte-identical** to a single-process run — the property
//! `tests/shard_equivalence.rs` pins across backends, shard counts and
//! batch sizes.
//!
//! Artifact shape (`<experiment>.s<i>of<N>.shardstate.json`):
//!
//! ```json
//! {
//!   "schema": "shard_state/v1",
//!   "experiment": "fig5",
//!   "full": false,
//!   "trials": 3,
//!   "shard": [0, 3],
//!   "metrics": ["cw_slots"],
//!   "algorithms": ["beb", "lb", "llb", "stb"],
//!   "ns": [10, 50, 100, 150],
//!   "cells": [
//!     {"algorithm": "beb", "n": 10, "samples": [[53, 31, 57]]}
//!   ]
//! }
//! ```
//!
//! `samples` is one array per metric (in `metrics` order) of per-trial
//! values in trial order; an unrecorded trial slot is `null` (the NaN
//! sentinel), so partial state survives the round trip. A complete state —
//! what `merge` produces — is written as shard `[0, 1]`.

use crate::aggregate::{MetricStats, StatsCell};
use crate::jsonin::Json;
use crate::jsonout::{escape, num};
use crate::summary::Metric;
use contention_core::algorithm::AlgorithmKind;
use contention_sim::sched::{CostModel, CostSpec};
use contention_stats::stream::StreamingSample;
use std::fs;
use std::path::{Path, PathBuf};

/// Schema tag every artifact carries; bumped on layout changes.
pub const SHARD_SCHEMA: &str = "shard_state/v1";

/// File-name suffix `merge` scans directories for.
pub const SHARD_SUFFIX: &str = ".shardstate.json";

/// The sweep-grid coordinates a shardable experiment runs over — enough to
/// partition the grid into cell ranges and to validate artifact
/// compatibility at merge time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridMeta {
    /// Algorithms, in grid (outer) order.
    pub algorithms: Vec<AlgorithmKind>,
    /// Station counts, in grid (inner) order.
    pub ns: Vec<u32>,
    /// Trials per cell.
    pub trials: u32,
    /// Metrics each cell folds out, in buffer order.
    pub metrics: Vec<Metric>,
    /// The analytic per-trial cost shape of this grid's backend — what the
    /// scheduler tapers claims by and `repro shard` balances shards with.
    /// Serialized into artifacts so resumed/merged runs plan work with the
    /// same estimates; artifacts written before cost metadata existed read
    /// back as [`CostSpec::Uniform`].
    pub cost: CostSpec,
}

impl GridMeta {
    /// Number of `(algorithm, n)` cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.algorithms.len() * self.ns.len()
    }

    /// Estimated per-*trial* cost of every cell, in grid order (algorithms
    /// outer, ns inner) — the table the engine's tapered scheduler consumes.
    pub fn cell_trial_costs(&self) -> Vec<f64> {
        self.algorithms
            .iter()
            .flat_map(|&alg| self.ns.iter().map(move |&n| self.cost.trial_cost(alg, n)))
            .collect()
    }

    /// Estimated *total* cost of every cell (`trials ×` per-trial), in grid
    /// order — what cost-balanced shard partitioning splits.
    pub fn cell_costs(&self) -> Vec<f64> {
        self.algorithms
            .iter()
            .flat_map(|&alg| {
                self.ns
                    .iter()
                    .map(move |&n| self.cost.cell_cost(alg, n, self.trials))
            })
            .collect()
    }
}

/// One cell's serialized accumulator state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCell {
    pub algorithm: AlgorithmKind,
    pub n: u32,
    /// Per-metric raw trial buffers (NaN = not yet recorded).
    pub samples: Vec<Vec<f64>>,
}

/// A partial (or, after merging, complete) sweep: the grid description plus
/// the accumulator state of the cells this shard ran.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Registry name of the experiment (`fig5`, `scale`, …) — how `merge`
    /// finds the report builder.
    pub experiment: String,
    /// Whether the run used the paper's `--full` grids.
    pub full: bool,
    /// `(index, of)`: which contiguous shard of the grid this is. A
    /// complete state is `(0, 1)`.
    pub shard: (u32, u32),
    /// The grid the shard belongs to.
    pub grid: GridMeta,
    /// Cell state, in grid order within the shard's range.
    pub cells: Vec<ShardCell>,
}

impl ShardState {
    /// Captures the folded cells of a (partial) sweep run.
    pub fn from_cells(
        experiment: &str,
        full: bool,
        shard: (u32, u32),
        grid: &GridMeta,
        cells: &[StatsCell],
    ) -> ShardState {
        let cells = cells
            .iter()
            .map(|cell| {
                assert_eq!(
                    cell.acc.metrics(),
                    &grid.metrics[..],
                    "cell metrics must match the grid"
                );
                ShardCell {
                    algorithm: cell.algorithm,
                    n: cell.n,
                    samples: cell
                        .acc
                        .raw_samples()
                        .iter()
                        .map(|s| s.raw().to_vec())
                        .collect(),
                }
            })
            .collect();
        ShardState {
            experiment: experiment.to_string(),
            full,
            shard,
            grid: grid.clone(),
            cells,
        }
    }

    /// Rebuilds engine-shaped folded cells from the serialized state.
    pub fn into_cells(self) -> Vec<StatsCell> {
        let metrics = self.grid.metrics;
        self.cells
            .into_iter()
            .map(|cell| StatsCell {
                algorithm: cell.algorithm,
                n: cell.n,
                acc: MetricStats::from_parts(
                    metrics.clone(),
                    cell.samples
                        .into_iter()
                        .map(StreamingSample::from_raw)
                        .collect(),
                ),
            })
            .collect()
    }

    /// The canonical artifact file name.
    pub fn file_name(&self) -> String {
        format!(
            "{}.s{}of{}{SHARD_SUFFIX}",
            self.experiment, self.shard.0, self.shard.1
        )
    }

    /// True once every grid cell is present with every trial recorded.
    pub fn is_complete(&self) -> bool {
        self.cells.len() == self.grid.cell_count()
            && self
                .cells
                .iter()
                .all(|c| c.samples.iter().all(|s| !s.iter().any(|v| v.is_nan())))
    }

    /// Human-readable descriptions of whatever is still missing — the
    /// merge CLI's "did you merge all N shards?" diagnostics.
    pub fn missing(&self) -> Vec<String> {
        let mut out = Vec::new();
        for &alg in &self.grid.algorithms {
            for &n in &self.grid.ns {
                match self.cells.iter().find(|c| c.algorithm == alg && c.n == n) {
                    None => out.push(format!("cell ({alg}, n={n}) missing")),
                    Some(cell) => {
                        // A trial counts as recorded only if *every* metric
                        // buffer holds it, so the count can never contradict
                        // the hole that made the cell incomplete.
                        let filled = cell
                            .samples
                            .iter()
                            .map(|s| s.iter().filter(|v| !v.is_nan()).count())
                            .min()
                            .unwrap_or(0);
                        if cell.samples.iter().any(|s| s.iter().any(|v| v.is_nan())) {
                            out.push(format!(
                                "cell ({alg}, n={n}): {filled} of {} trials recorded",
                                self.grid.trials
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders the artifact (see the module docs for the shape).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SHARD_SCHEMA)));
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str(&format!("  \"full\": {},\n", self.full));
        out.push_str(&format!("  \"trials\": {},\n", self.grid.trials));
        out.push_str(&format!(
            "  \"cost\": \"{}\",\n",
            escape(self.grid.cost.key())
        ));
        out.push_str(&format!(
            "  \"shard\": [{}, {}],\n",
            self.shard.0, self.shard.1
        ));
        let metrics: Vec<String> = self
            .grid
            .metrics
            .iter()
            .map(|m| format!("\"{}\"", escape(m.key())))
            .collect();
        out.push_str(&format!("  \"metrics\": [{}],\n", metrics.join(", ")));
        let algorithms: Vec<String> = self
            .grid
            .algorithms
            .iter()
            .map(|a| format!("\"{}\"", escape(&a.key())))
            .collect();
        out.push_str(&format!("  \"algorithms\": [{}],\n", algorithms.join(", ")));
        let ns: Vec<String> = self.grid.ns.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!("  \"ns\": [{}],\n", ns.join(", ")));
        out.push_str("  \"cells\": [\n");
        for (ci, cell) in self.cells.iter().enumerate() {
            let samples: Vec<String> = cell
                .samples
                .iter()
                .map(|buf| {
                    let vals: Vec<String> = buf.iter().map(|&v| num(v)).collect();
                    format!("[{}]", vals.join(", "))
                })
                .collect();
            out.push_str(&format!(
                "    {{\"algorithm\": \"{}\", \"n\": {}, \"samples\": [{}]}}{}\n",
                escape(&cell.algorithm.key()),
                cell.n,
                samples.join(", "),
                if ci + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses and validates one artifact.
    pub fn parse(text: &str) -> Result<ShardState, String> {
        let doc = Json::parse(text)?;
        let schema = doc.field("schema")?.as_str()?;
        if schema != SHARD_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (this build reads {SHARD_SCHEMA:?})"
            ));
        }
        let experiment = doc.field("experiment")?.as_str()?.to_string();
        let full = doc.field("full")?.as_bool()?;
        let trials = doc.field("trials")?.as_u32()?;
        // Tolerant: artifacts written before cost metadata existed carry no
        // "cost" key and deserialize to the uniform estimate.
        let cost = match doc.field("cost") {
            Err(_) => CostSpec::Uniform,
            Ok(field) => {
                let key = field.as_str()?;
                CostSpec::from_key(key).ok_or_else(|| format!("unknown cost spec {key:?}"))?
            }
        };
        let shard_field = doc.field("shard")?.as_array()?;
        if shard_field.len() != 2 {
            return Err("shard must be [index, of]".to_string());
        }
        let shard = (shard_field[0].as_u32()?, shard_field[1].as_u32()?);
        if shard.1 == 0 || shard.0 >= shard.1 {
            return Err(format!(
                "bad shard coordinates {}/{} (need index < of, of >= 1)",
                shard.0, shard.1
            ));
        }
        let metrics = doc
            .field("metrics")?
            .as_array()?
            .iter()
            .map(|m| {
                let key = m.as_str()?;
                Metric::from_key(key).ok_or_else(|| format!("unknown metric {key:?}"))
            })
            .collect::<Result<Vec<Metric>, String>>()?;
        let algorithms = doc
            .field("algorithms")?
            .as_array()?
            .iter()
            .map(|a| {
                let key = a.as_str()?;
                AlgorithmKind::from_key(key).ok_or_else(|| format!("unknown algorithm {key:?}"))
            })
            .collect::<Result<Vec<AlgorithmKind>, String>>()?;
        let ns = doc
            .field("ns")?
            .as_array()?
            .iter()
            .map(Json::as_u32)
            .collect::<Result<Vec<u32>, String>>()?;
        let grid = GridMeta {
            algorithms,
            ns,
            trials,
            metrics,
            cost,
        };
        let mut cells = Vec::new();
        for cell in doc.field("cells")?.as_array()? {
            let key = cell.field("algorithm")?.as_str()?;
            let algorithm =
                AlgorithmKind::from_key(key).ok_or_else(|| format!("unknown algorithm {key:?}"))?;
            let n = cell.field("n")?.as_u32()?;
            if !grid.algorithms.contains(&algorithm) || !grid.ns.contains(&n) {
                return Err(format!("cell ({algorithm}, n={n}) is outside the grid"));
            }
            if cells
                .iter()
                .any(|c: &ShardCell| c.algorithm == algorithm && c.n == n)
            {
                return Err(format!("cell ({algorithm}, n={n}) appears twice"));
            }
            let samples = cell
                .field("samples")?
                .as_array()?
                .iter()
                .map(|buf| {
                    buf.as_array()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<Result<Vec<f64>, String>>()
                })
                .collect::<Result<Vec<Vec<f64>>, String>>()?;
            if samples.len() != grid.metrics.len() {
                return Err(format!(
                    "cell ({algorithm}, n={n}) has {} sample buffers for {} metrics",
                    samples.len(),
                    grid.metrics.len()
                ));
            }
            if samples.iter().any(|s| s.len() != trials as usize) {
                return Err(format!(
                    "cell ({algorithm}, n={n}) buffers disagree with trials = {trials}"
                ));
            }
            cells.push(ShardCell {
                algorithm,
                n,
                samples,
            });
        }
        Ok(ShardState {
            experiment,
            full,
            shard,
            grid,
            cells,
        })
    }
}

/// Writes an artifact to `<dir>/<file_name()>` atomically (staged as
/// `*.tmp`, fsynced, renamed — a killed process can never leave a truncated
/// artifact under the real name); returns the path. I/O failures come back
/// as `Err`, never a panic: a full disk or bad permissions must surface
/// through the CLI's `error:` path.
pub fn write_state(dir: &Path, state: &ShardState) -> Result<PathBuf, String> {
    crate::fsutil::ensure_dir(dir)?;
    let path = dir.join(state.file_name());
    crate::fsutil::write_atomic(&path, state.to_json().as_bytes())?;
    Ok(path)
}

/// Loads every `*.shardstate.json` artifact in `dir`, in file-name order
/// (merging is order-insensitive; the order only stabilizes error messages).
/// Staged `*.tmp` files from torn writes are ignored; an unreadable
/// directory entry is an error (silently skipping one would surface later
/// as a misleading "merged state is incomplete").
pub fn load_dir(dir: &Path) -> Result<Vec<ShardState>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read an entry of {}: {e}", dir.display()))?;
        let path = entry.path();
        if path
            .file_name()
            .and_then(|f| f.to_str())
            .is_some_and(|f| f.ends_with(SHARD_SUFFIX))
        {
            paths.push(path);
        }
    }
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *{SHARD_SUFFIX} artifacts in {}", dir.display()));
    }
    paths
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            ShardState::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
        })
        .collect()
}

/// Merges shard states into one, validating compatibility as it goes.
///
/// Artifacts may arrive in any order (the result is order-independent) but
/// must all describe the same sweep: same experiment, grids, trial count,
/// metrics, `--full` flag and shard denominator. Duplicate shard artifacts
/// and overlapping trial recordings are rejected with a clear error — never
/// a panic — since artifacts are untrusted on-disk input. The merged state
/// is *not* required to be complete (check [`ShardState::is_complete`]);
/// its shard coordinates become `(0, 1)`.
pub fn merge_states(states: Vec<ShardState>) -> Result<ShardState, String> {
    let mut iter = states.into_iter();
    let first = iter.next().ok_or("no shard states to merge")?;
    let mut seen_shards = vec![first.shard];
    // Accumulate cells as MetricStats so the merge runs through the same
    // MergeableAccumulator seam the equivalence tests pin.
    let grid = first.grid.clone();
    let (experiment, full, denominator) = (first.experiment.clone(), first.full, first.shard.1);
    let mut merged: Vec<StatsCell> = first.into_cells();
    for state in iter {
        if state.experiment != experiment {
            return Err(format!(
                "cannot merge artifacts from different experiments ({:?} vs {:?})",
                experiment, state.experiment
            ));
        }
        if state.full != full {
            return Err("cannot merge --full and quick-grid artifacts".to_string());
        }
        if state.shard.1 != denominator {
            return Err(format!(
                "cannot merge artifacts from different shardings ({} vs {} shards)",
                denominator, state.shard.1
            ));
        }
        if state.grid != grid {
            return Err(format!(
                "artifact {}/{} describes a different sweep grid (trials/ns/algorithms/metrics \
                 must all match)",
                state.shard.0, state.shard.1
            ));
        }
        if seen_shards.contains(&state.shard) {
            return Err(format!(
                "duplicate shard artifact {}/{}",
                state.shard.0, state.shard.1
            ));
        }
        seen_shards.push(state.shard);
        for cell in state.into_cells() {
            match merged
                .iter_mut()
                .find(|c| c.algorithm == cell.algorithm && c.n == cell.n)
            {
                None => merged.push(cell),
                Some(existing) => existing
                    .acc
                    .try_merge(cell.acc)
                    .map_err(|e| format!("cell ({}, n={}): {e}", cell.algorithm, cell.n))?,
            }
        }
    }
    // Canonical grid order (algorithms outer, ns inner) — the order a
    // single-process sweep returns cells in, which is what makes the merged
    // report byte-identical.
    let position = |cell: &StatsCell| {
        let a = grid
            .algorithms
            .iter()
            .position(|&alg| alg == cell.algorithm)
            .expect("validated against grid");
        let n = grid
            .ns
            .iter()
            .position(|&n| n == cell.n)
            .expect("validated against grid");
        a * grid.ns.len() + n
    };
    merged.sort_by_key(position);
    Ok(ShardState::from_cells(
        &experiment,
        full,
        (0, 1),
        &grid,
        &merged,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::algorithm::AlgorithmKind::*;

    fn grid() -> GridMeta {
        GridMeta {
            algorithms: vec![Beb, Sawtooth],
            ns: vec![10, 20],
            trials: 3,
            metrics: vec![Metric::CwSlots, Metric::Collisions],
            cost: CostSpec::NLogN,
        }
    }

    /// A state holding `cells` of the [`grid`], each cell's buffers filled
    /// with distinct values derived from its coordinates.
    fn state(shard: (u32, u32), cells: &[(AlgorithmKind, u32)]) -> ShardState {
        let g = grid();
        let cells = cells
            .iter()
            .map(|&(algorithm, n)| ShardCell {
                algorithm,
                n,
                samples: (0..g.metrics.len())
                    .map(|m| {
                        (0..g.trials)
                            .map(|t| (n as f64) * 100.0 + (m as f64) * 10.0 + t as f64)
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        ShardState {
            experiment: "test-exp".to_string(),
            full: false,
            shard,
            grid: g,
            cells,
        }
    }

    #[test]
    fn artifact_round_trips_bit_for_bit() {
        let mut s = state((1, 3), &[(Beb, 10), (Sawtooth, 20)]);
        // Punch a hole: trial 1 of the second metric unrecorded → null.
        s.cells[0].samples[1][1] = f64::NAN;
        let text = s.to_json();
        assert!(text.contains("null"), "{text}");
        let back = ShardState::parse(&text).unwrap();
        assert_eq!(back.experiment, s.experiment);
        assert_eq!(back.shard, s.shard);
        assert_eq!(back.grid, s.grid);
        for (a, b) in back.cells.iter().zip(&s.cells) {
            assert_eq!((a.algorithm, a.n), (b.algorithm, b.n));
            for (x, y) in a.samples.iter().zip(&b.samples) {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(x), bits(y));
            }
        }
        // Round-tripping the rendered text is a fixed point.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn merge_reassembles_the_grid_in_canonical_order() {
        // Shards arrive out of order and cover disjoint cell sets.
        let merged = merge_states(vec![
            state((2, 3), &[(Sawtooth, 20)]),
            state((0, 3), &[(Beb, 10), (Beb, 20)]),
            state((1, 3), &[(Sawtooth, 10)]),
        ])
        .unwrap();
        assert_eq!(merged.shard, (0, 1));
        assert!(merged.is_complete());
        let coords: Vec<(AlgorithmKind, u32)> =
            merged.cells.iter().map(|c| (c.algorithm, c.n)).collect();
        assert_eq!(
            coords,
            vec![(Beb, 10), (Beb, 20), (Sawtooth, 10), (Sawtooth, 20)]
        );
    }

    #[test]
    fn merge_rejects_mismatches_cleanly() {
        // Duplicate shard index.
        let err = merge_states(vec![
            state((0, 2), &[(Beb, 10)]),
            state((0, 2), &[(Beb, 20)]),
        ])
        .unwrap_err();
        assert!(err.contains("duplicate shard"), "{err}");
        // Overlapping cell trials (same cell fully recorded twice).
        let err = merge_states(vec![
            state((0, 2), &[(Beb, 10)]),
            state((1, 2), &[(Beb, 10)]),
        ])
        .unwrap_err();
        assert!(err.contains("more than one"), "{err}");
        // Different experiment.
        let mut other = state((1, 2), &[(Beb, 20)]);
        other.experiment = "something-else".to_string();
        let err = merge_states(vec![state((0, 2), &[(Beb, 10)]), other]).unwrap_err();
        assert!(err.contains("different experiments"), "{err}");
        // Different grid (trial count).
        let mut other = state((1, 2), &[(Beb, 20)]);
        other.grid.trials = 4;
        other.cells[0].samples.iter_mut().for_each(|s| s.push(0.0));
        let err = merge_states(vec![state((0, 2), &[(Beb, 10)]), other]).unwrap_err();
        assert!(err.contains("different sweep grid"), "{err}");
        // Different sharding denominator.
        let err = merge_states(vec![
            state((0, 2), &[(Beb, 10)]),
            state((1, 3), &[(Beb, 20)]),
        ])
        .unwrap_err();
        assert!(err.contains("different shardings"), "{err}");
        // Mixed --full.
        let mut other = state((1, 2), &[(Beb, 20)]);
        other.full = true;
        let err = merge_states(vec![state((0, 2), &[(Beb, 10)]), other]).unwrap_err();
        assert!(err.contains("--full"), "{err}");
    }

    #[test]
    fn merge_is_associative_on_states() {
        let a = state((0, 3), &[(Beb, 10), (Beb, 20)]);
        let b = state((1, 3), &[(Sawtooth, 10)]);
        let c = state((2, 3), &[(Sawtooth, 20)]);
        let left = merge_states(vec![
            merge_states(vec![a.clone(), b.clone()]).unwrap(),
            c.clone(),
        ]);
        let right = merge_states(vec![
            a.clone(),
            merge_states(vec![b.clone(), c.clone()]).unwrap(),
        ]);
        // Note: merging a merged (0,1) state with a 3-shard state trips the
        // denominator check, so re-merge at matching denominators instead.
        assert!(left.is_err() && right.is_err());
        let abc = merge_states(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        let cba = merge_states(vec![c, b, a]).unwrap();
        assert_eq!(abc.to_json(), cba.to_json());
    }

    #[test]
    fn incomplete_states_name_what_is_missing() {
        let s = state((0, 2), &[(Beb, 10)]);
        assert!(!s.is_complete());
        let missing = s.missing();
        assert_eq!(missing.len(), 3);
        assert!(missing[0].contains("(BEB, n=20) missing"), "{missing:?}");
        let mut partial = state((0, 2), &[(Beb, 10)]);
        partial.cells[0].samples[0][2] = f64::NAN;
        assert!(
            partial
                .missing()
                .iter()
                .any(|m| m.contains("2 of 3 trials")),
            "{:?}",
            partial.missing()
        );
    }

    #[test]
    fn parse_rejects_corrupt_artifacts() {
        let good = state((0, 1), &[(Beb, 10)]).to_json();
        for (needle, replacement, expect) in [
            ("shard_state/v1", "shard_state/v0", "unsupported schema"),
            ("\"cw_slots\"", "\"warp_factor\"", "unknown metric"),
            ("\"n-log-n\"", "\"o-of-wow\"", "unknown cost spec"),
            ("\"beb\", \"stb\"", "\"beb\", \"zzz\"", "unknown algorithm"),
            (
                "\"shard\": [0, 1]",
                "\"shard\": [1, 1]",
                "bad shard coordinates",
            ),
            ("\"shard\": [0, 1]", "\"shard\": [0]", "shard must be"),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement {needle:?} did not apply");
            let err = ShardState::parse(&bad).unwrap_err();
            assert!(err.contains(expect), "{needle:?}: {err}");
        }
        // A cell outside the declared grid.
        let bad = good.replace("\"n\": 10", "\"n\": 999");
        assert!(ShardState::parse(&bad)
            .unwrap_err()
            .contains("outside the grid"));
        // Truncated document.
        assert!(ShardState::parse(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn artifacts_without_cost_metadata_read_back_as_uniform() {
        // A pre-cost artifact: strip the "cost" line entirely.
        let text = state((0, 1), &[(Beb, 10)]).to_json();
        let legacy: String = text
            .lines()
            .filter(|l| !l.contains("\"cost\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(legacy, text);
        let parsed = ShardState::parse(&legacy).unwrap();
        assert_eq!(parsed.grid.cost, CostSpec::Uniform);
    }

    #[test]
    fn grid_cost_tables_follow_grid_order_and_trials() {
        let g = grid();
        let per_trial = g.cell_trial_costs();
        let per_cell = g.cell_costs();
        assert_eq!(per_trial.len(), g.cell_count());
        // Grid order is algorithms outer, ns inner: [B10, B20, S10, S20].
        assert_eq!(per_trial[0], CostSpec::NLogN.cost(10));
        assert_eq!(per_trial[1], CostSpec::NLogN.cost(20));
        assert_eq!(per_trial[0], per_trial[2], "cost is algorithm-blind");
        for (cell, trial) in per_cell.iter().zip(&per_trial) {
            assert_eq!(*cell, trial * f64::from(g.trials));
        }
    }

    #[test]
    fn cells_round_trip_through_the_engine_shape() {
        let s = state(
            (0, 1),
            &[(Beb, 10), (Beb, 20), (Sawtooth, 10), (Sawtooth, 20)],
        );
        let cells = s.clone().into_cells();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.acc.is_complete()));
        let back = ShardState::from_cells("test-exp", false, (0, 1), &grid(), &cells);
        assert_eq!(back, s);
    }
}
