//! Cartesian `(algorithm × n × trial)` sweeps over the two simulators.
//!
//! Every trial derives its RNG from `(experiment tag, algorithm, n, trial)`
//! so the sweep's numbers are independent of thread count and scheduling.

use crate::summary::TrialSummary;
use contention_core::algorithm::AlgorithmKind;
use contention_core::rng::{experiment_tag, trial_rng};
use contention_mac::{simulate, MacConfig};
use contention_sim::parallel::parallel_map_threads;
use contention_slotted::windowed::{WindowedConfig, WindowedSim};

/// One aggregate cell: all trials of one `(algorithm, n)` pair.
#[derive(Debug, Clone)]
pub struct SweepCell {
    pub algorithm: AlgorithmKind,
    pub n: u32,
    pub trials: Vec<TrialSummary>,
}

/// A sweep over the MAC (802.11g DCF) simulator.
#[derive(Debug, Clone)]
pub struct MacSweep {
    /// RNG namespace; also names the experiment in outputs.
    pub experiment: &'static str,
    /// Base MAC configuration; the sweep overrides `algorithm` per cell.
    pub config: MacConfig,
    pub algorithms: Vec<AlgorithmKind>,
    pub ns: Vec<u32>,
    pub trials: u32,
    /// Worker threads (`None` = all available).
    pub threads: Option<usize>,
}

impl MacSweep {
    pub fn run(&self) -> Vec<SweepCell> {
        let tag = experiment_tag(self.experiment);
        let items: Vec<(AlgorithmKind, u32, u32)> = self
            .algorithms
            .iter()
            .flat_map(|&alg| {
                self.ns
                    .iter()
                    .flat_map(move |&n| (0..self.trials).map(move |t| (alg, n, t)))
            })
            .collect();
        let base = self.config;
        let threads = self.threads.unwrap_or_else(default_threads);
        let results = parallel_map_threads(items.clone(), threads, move |(alg, n, t)| {
            let config = MacConfig { algorithm: alg, ..base };
            let mut rng = trial_rng(tag, alg, n, t);
            let run = simulate(&config, n, &mut rng);
            TrialSummary::from_metrics(&run.metrics).with_estimates(&run.estimates)
        });
        collect_cells(&self.algorithms, &self.ns, self.trials, items, results)
    }
}

/// A sweep over the abstract windowed simulator.
#[derive(Debug, Clone)]
pub struct AbstractSweep {
    pub experiment: &'static str,
    /// Base abstract configuration; `algorithm` is overridden per cell.
    pub config: WindowedConfig,
    pub algorithms: Vec<AlgorithmKind>,
    pub ns: Vec<u32>,
    pub trials: u32,
    pub threads: Option<usize>,
}

impl AbstractSweep {
    pub fn run(&self) -> Vec<SweepCell> {
        let tag = experiment_tag(self.experiment);
        let items: Vec<(AlgorithmKind, u32, u32)> = self
            .algorithms
            .iter()
            .flat_map(|&alg| {
                self.ns
                    .iter()
                    .flat_map(move |&n| (0..self.trials).map(move |t| (alg, n, t)))
            })
            .collect();
        let base = self.config;
        let threads = self.threads.unwrap_or_else(default_threads);
        let results = parallel_map_threads(items.clone(), threads, move |(alg, n, t)| {
            let config = WindowedConfig { algorithm: alg, ..base };
            let mut sim = WindowedSim::new(config);
            let mut rng = trial_rng(tag, alg, n, t);
            TrialSummary::from_metrics(&sim.run(n, &mut rng))
        });
        collect_cells(&self.algorithms, &self.ns, self.trials, items, results)
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn collect_cells(
    algorithms: &[AlgorithmKind],
    ns: &[u32],
    trials: u32,
    items: Vec<(AlgorithmKind, u32, u32)>,
    results: Vec<TrialSummary>,
) -> Vec<SweepCell> {
    let mut cells: Vec<SweepCell> = algorithms
        .iter()
        .flat_map(|&alg| {
            ns.iter().map(move |&n| SweepCell {
                algorithm: alg,
                n,
                trials: Vec::with_capacity(trials as usize),
            })
        })
        .collect();
    let index = |alg: AlgorithmKind, n: u32| -> usize {
        let ai = algorithms.iter().position(|&a| a == alg).expect("known algorithm");
        let ni = ns.iter().position(|&m| m == n).expect("known n");
        ai * ns.len() + ni
    };
    for ((alg, n, _), summary) in items.into_iter().zip(results) {
        cells[index(alg, n)].trials.push(summary);
    }
    cells
}

/// Looks up one cell in a sweep result.
pub fn cell(cells: &[SweepCell], alg: AlgorithmKind, n: u32) -> &SweepCell {
    cells
        .iter()
        .find(|c| c.algorithm == alg && c.n == n)
        .unwrap_or_else(|| panic!("no cell for {alg} at n={n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::algorithm::AlgorithmKind::*;

    #[test]
    fn mac_sweep_fills_every_cell_deterministically() {
        let sweep = MacSweep {
            experiment: "sweep-test",
            config: MacConfig::paper(Beb, 64),
            algorithms: vec![Beb, Sawtooth],
            ns: vec![5, 10],
            trials: 3,
            threads: Some(2),
        };
        let a = sweep.run();
        let b = MacSweep { threads: Some(7), ..sweep }.run();
        assert_eq!(a.len(), 4);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.trials.len(), 3);
            assert_eq!(ca.trials, cb.trials, "thread count changed results");
            assert!(ca.trials.iter().all(|t| t.successes == ca.n));
        }
    }

    #[test]
    fn abstract_sweep_runs() {
        let sweep = AbstractSweep {
            experiment: "sweep-test-abs",
            config: WindowedConfig::abstract_model(Beb),
            algorithms: vec![Beb],
            ns: vec![50],
            trials: 4,
            threads: Some(1),
        };
        let cells = sweep.run();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].trials.len(), 4);
        assert!(cells[0].trials.iter().all(|t| t.cw_slots > 0.0));
    }

    #[test]
    fn cell_lookup() {
        let sweep = AbstractSweep {
            experiment: "sweep-test-lookup",
            config: WindowedConfig::abstract_model(Beb),
            algorithms: vec![Beb, LogBackoff],
            ns: vec![10, 20],
            trials: 1,
            threads: Some(1),
        };
        let cells = sweep.run();
        assert_eq!(cell(&cells, LogBackoff, 20).n, 20);
    }

    #[test]
    #[should_panic(expected = "no cell")]
    fn missing_cell_panics() {
        let cells: Vec<SweepCell> = Vec::new();
        let _ = cell(&cells, Beb, 10);
    }
}
