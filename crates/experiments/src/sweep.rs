//! Cartesian `(algorithm × n × trial)` sweeps — re-exported from the
//! generic engine in `contention-sim`.
//!
//! The engine replaced the two near-identical `MacSweep` / `AbstractSweep`
//! structs that used to live here: both simulators (and the dynamic-traffic
//! one) now run through one [`Sweep`] parameterized by an
//! [`engine backend`](Simulator). Spellings used across the figures:
//!
//! * `Sweep::<MacSim>` — the 802.11g DCF simulator,
//! * `Sweep::<WindowedSim>` — the abstract aligned-window simulator,
//! * `Sweep::<ResidualSim>` — the abstract residual-timer semantics,
//! * `Sweep::<DynamicSim>` — long-lived traffic (uses [`Sweep::run_raw`]).

pub use contention_sim::engine::{
    cell, folded, run_trial, Accumulator, Cell, CellRange, ExecPolicy, FoldedCell,
    MergeableAccumulator, Simulator, Slots, Sweep, SweepCell,
};

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::algorithm::AlgorithmKind::*;
    use contention_mac::{MacConfig, MacSim};
    use contention_slotted::windowed::WindowedConfig;
    use contention_slotted::WindowedSim;

    #[test]
    fn mac_sweep_fills_every_cell_deterministically() {
        let sweep = Sweep::<MacSim> {
            experiment: "sweep-test",
            config: MacConfig::paper(Beb, 64),
            algorithms: vec![Beb, Sawtooth],
            ns: vec![5, 10],
            trials: 3,
            exec: ExecPolicy::threads(2),
        };
        let a = sweep.run();
        let b = Sweep {
            exec: ExecPolicy::threads(7),
            ..sweep
        }
        .run();
        assert_eq!(a.len(), 4);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.trials.len(), 3);
            assert_eq!(ca.trials, cb.trials, "thread count changed results");
            assert!(ca.trials.iter().all(|t| t.successes == ca.n));
        }
    }

    #[test]
    fn abstract_sweep_runs() {
        let sweep = Sweep::<WindowedSim> {
            experiment: "sweep-test-abs",
            config: WindowedConfig::abstract_model(Beb),
            algorithms: vec![Beb],
            ns: vec![50],
            trials: 4,
            exec: ExecPolicy::threads(1),
        };
        let cells = sweep.run();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].trials.len(), 4);
        assert!(cells[0].trials.iter().all(|t| t.cw_slots > 0.0));
    }

    #[test]
    fn cell_lookup() {
        let sweep = Sweep::<WindowedSim> {
            experiment: "sweep-test-lookup",
            config: WindowedConfig::abstract_model(Beb),
            algorithms: vec![Beb, LogBackoff],
            ns: vec![10, 20],
            trials: 1,
            exec: ExecPolicy::threads(1),
        };
        let cells = sweep.run();
        assert_eq!(cell(&cells, LogBackoff, 20).n, 20);
    }

    #[test]
    fn single_trials_reproduce_sweep_cells() {
        // `run_trial` (what the benches use) and `Sweep::run` (what the
        // figures use) must draw from the same deterministic stream.
        let config = MacConfig::paper(Sawtooth, 64);
        let cells = Sweep::<MacSim> {
            experiment: "sweep-vs-trial",
            config,
            algorithms: vec![Sawtooth],
            ns: vec![12],
            trials: 2,
            exec: ExecPolicy::threads(2),
        }
        .run();
        let lone = run_trial::<MacSim>("sweep-vs-trial", &config, 12, 1);
        assert_eq!(
            cells[0].trials[1],
            contention_sim::summary::TrialSummary::from(lone)
        );
    }
}
