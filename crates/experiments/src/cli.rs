//! The `repro` command-line interface.
//!
//! ```text
//! repro <experiment|all|list> [--full] [--trials N] [--out DIR] [--json]
//!       [--threads N] [--batch N]
//! repro shard <experiment> --shard i/N --out DIR   # partial-state artifact
//! repro merge DIR... --out DIR [--json]            # recombine + report
//! ```
//!
//! Default grids are laptop-quick; `--full` switches to the paper's grids
//! (and turns on the stderr progress meter when stderr is a TTY). With
//! `--out DIR` each experiment also writes CSV series for plotting;
//! `--json` adds JSON artifacts next to them.
//!
//! `shard`/`merge` split a sweep across processes: each `shard` invocation
//! runs one contiguous cell range of the experiment's grid and writes a
//! `shard_state/v1` artifact; `merge` validates and merges any number of
//! such artifacts and emits the **same reports, byte for byte,** as the
//! single-process run (see `crate::shard`).
//!
//! The actual binary lives in the workspace root package (`src/bin/repro.rs`)
//! so that a plain `cargo run --bin repro` works from the repository root;
//! this module holds all of its logic so it stays unit-testable here.

use crate::checkpoint::{self, CheckpointWriter};
use crate::figures::sharding::{find_shardable, shardable_names};
use crate::figures::shared::SweepHooks;
use crate::figures::{registry, Report};
use crate::options::Options;
use crate::shard::{load_dir, merge_states, write_state, ShardState};
use contention_sim::engine::CellRange;
use std::path::Path;
use std::process::ExitCode;

/// Entry point: parses `args` (without the program name) and runs the
/// selected experiments.
pub fn run(args: &[String]) -> ExitCode {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let (sub, opts) = match Options::parse(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    if sub == "list" {
        for (name, desc, _) in registry() {
            println!("{name:<12} {desc}");
        }
        println!(
            "{:<12} benchmark harness — MAC hot path (BENCH_mac.json)",
            "bench"
        );
        return ExitCode::SUCCESS;
    }
    // Fail fast on an unusable output directory — before hours of trials,
    // not after them (the late-error pathology `--json` used to have).
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --out {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if sub == "shard" {
        return run_shard(&opts);
    }
    if sub == "merge" {
        return run_merge(&opts);
    }
    if sub == "resume" {
        return run_resume(&opts);
    }
    if sub == "serve" {
        return match crate::server::Server::serve(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if sub == "work" {
        return match crate::worker::run_worker(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if sub == "bench" {
        let started = std::time::Instant::now();
        match crate::benchmark::run(&opts) {
            Ok(report) => {
                report.print();
                println!("[bench] done in {:.1?}\n", started.elapsed());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.checkpoint.is_some() {
        return run_checkpointed(&sub, &opts);
    }

    let entries = registry();
    let selected: Vec<_> = if sub == "all" {
        entries
    } else {
        match entries.into_iter().find(|(name, _, _)| *name == sub) {
            Some(entry) => vec![entry],
            None => {
                eprintln!("error: unknown experiment {sub:?} (try `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    };

    for (name, _, runner) in selected {
        let started = std::time::Instant::now();
        let report: Report = runner(&opts);
        report.print();
        if let Some(dir) = &opts.out_dir {
            if let Err(e) = write_report_artifacts(&report, dir, opts.json) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "[{}] {} written to {}",
                name,
                if opts.json { "CSVs + JSON" } else { "CSVs" },
                dir.display()
            );
        }
        println!("[{}] done in {:.1?}\n", name, started.elapsed());
    }
    ExitCode::SUCCESS
}

/// Writes a report's CSV (and optionally JSON) artifacts into `dir`.
pub(crate) fn write_report_artifacts(
    report: &Report,
    dir: &Path,
    json: bool,
) -> Result<(), String> {
    report.write_csv(dir)?;
    if json {
        report.write_json(dir)?;
    }
    Ok(())
}

/// `repro <experiment> --checkpoint[-secs/-trials N] --out DIR`: the normal
/// single-experiment run, with a [`CheckpointWriter`] attached to the
/// engine's snapshot seam. Requires a shardable experiment — checkpoints
/// ride the same split cells/report pipeline and `shard_state/v1` artifact
/// as `repro shard`.
fn run_checkpointed(sub: &str, opts: &Options) -> ExitCode {
    let Some(entry) = find_shardable(sub) else {
        eprintln!(
            "error: --checkpoint needs a shardable experiment (one sweep grid to \
             snapshot); {sub:?} is not (shardable: {})",
            shardable_names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let dir = opts.out_dir.as_deref().expect("validated at parse time");
    let cadence = opts.checkpoint.expect("checkpointed run").cadence();
    let grid = (entry.grid)(opts);
    let writer = match CheckpointWriter::new(dir, entry.name, opts.full, grid) {
        Ok(writer) => writer,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    let hooks = SweepHooks {
        monitor: Some((cadence, &writer)),
        ..SweepHooks::default()
    };
    let cells = (entry.cells)(opts, &hooks);
    let report = (entry.report)(opts, &cells);
    report.print();
    if let Err(e) = write_report_artifacts(&report, dir, opts.json) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[{}] {} + checkpoints written to {}",
        entry.name,
        if opts.json { "CSVs + JSON" } else { "CSVs" },
        dir.display()
    );
    println!("[{}] done in {:.1?}\n", entry.name, started.elapsed());
    ExitCode::SUCCESS
}

/// `repro resume DIR [--json]`: loads the newest valid checkpoint under
/// `DIR/checkpoints/`, runs only the trials it is missing (per-trial RNG is
/// position-addressed, so those trials are bit-identical to what the
/// interrupted run would have produced), merges, and emits the experiment's
/// reports into `DIR` — byte-identical to an uninterrupted run.
fn run_resume(opts: &Options) -> ExitCode {
    let dir = Path::new(&opts.inputs[0]);
    let loaded = match checkpoint::load_latest(dir) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Recovery that stepped over damage (a dangling `latest` pointer, torn
    // artifacts) still works — but never silently.
    for warning in &loaded.warnings {
        eprintln!("warning: {warning}");
    }
    let (state, seq) = (loaded.state, loaded.seq);
    let Some(entry) = find_shardable(&state.experiment) else {
        eprintln!(
            "error: checkpoint names unknown experiment {:?}",
            state.experiment
        );
        return ExitCode::FAILURE;
    };
    // Rebuild the grid-shaping options of the original run; execution knobs
    // (--threads/--batch) may differ freely — results are independent of
    // them.
    let run_opts = Options {
        full: state.full,
        trials: Some(state.grid.trials),
        threads: opts.threads,
        batch: opts.batch,
        ..Options::default()
    };
    let grid = (entry.grid)(&run_opts);
    if grid != state.grid {
        eprintln!(
            "error: checkpoint grid does not match {:?}'s current grid \
             (artifact from a different build?)",
            state.experiment
        );
        return ExitCode::FAILURE;
    }
    let plan = match checkpoint::missing_work(&state) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing: usize = plan.iter().map(|(_, trials)| trials.len()).sum();
    let total = grid.cell_count() * grid.trials as usize;
    let name = state.experiment.clone();
    println!(
        "[resume] {name} from checkpoint seq {seq}: {} of {total} trials recorded, \
         {missing} to run",
        total - missing
    );
    let started = std::time::Instant::now();
    let cells = if plan.is_empty() {
        state.into_cells()
    } else {
        // Re-checkpoint as we go — with the loaded state folded in, so a
        // second interruption still loses nothing.
        let writer = match CheckpointWriter::new(dir, &name, run_opts.full, grid.clone()) {
            Ok(writer) => writer.with_base(state.clone()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cadence = opts.checkpoint.unwrap_or_default().cadence();
        let hooks = SweepHooks {
            missing: Some(&plan),
            monitor: Some((cadence, &writer)),
            ..SweepHooks::default()
        };
        let fresh = (entry.cells)(&run_opts, &hooks);
        match checkpoint::merge_cells(&grid, &state.into_cells(), &fresh) {
            Ok(cells) => cells,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let reassembled = ShardState::from_cells(&name, run_opts.full, (0, 1), &grid, &cells);
    if !reassembled.is_complete() {
        eprintln!("error: resumed state is still incomplete — corrupt checkpoint?");
        for missing in reassembled.missing().iter().take(8) {
            eprintln!("  {missing}");
        }
        return ExitCode::FAILURE;
    }
    let report = (entry.report)(&run_opts, &cells);
    report.print();
    if let Err(e) = write_report_artifacts(&report, dir, opts.json) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[resume] {name} complete: {} written to {} in {:.1?}",
        if opts.json { "CSVs + JSON" } else { "CSVs" },
        dir.display(),
        started.elapsed()
    );
    ExitCode::SUCCESS
}

/// `repro shard <experiment> --shard i/N --out DIR`: runs shard `i`'s cell
/// range of the experiment's grid and writes the partial-state artifact.
fn run_shard(opts: &Options) -> ExitCode {
    let name = &opts.inputs[0];
    let Some(entry) = find_shardable(name) else {
        eprintln!(
            "error: {name:?} is not shardable (shardable experiments: {})",
            shardable_names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let (index, of) = opts.shard.expect("validated at parse time");
    let grid = (entry.grid)(opts);
    let total = grid.cell_count();
    // Cost-balanced: shard boundaries split the grid's *estimated work*
    // (cell cost × trials), so no shard is stuck with all the heavy cells.
    // Merge accepts any contiguous tiling, so mixed-version shard runs
    // still reassemble — as long as every index ran under the same binary.
    let range = CellRange::shard_weighted(&grid.cell_costs(), index as usize, of as usize);
    let started = std::time::Instant::now();
    let cells = (entry.cells)(opts, &SweepHooks::range(Some(range)));
    let state = ShardState::from_cells(entry.name, opts.full, (index, of), &grid, &cells);
    let dir = opts.out_dir.as_deref().expect("validated at parse time");
    let path = match write_state(dir, &state) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "[shard] {name} shard {index}/{of}: cells [{}, {}) of {total} → {} in {:.1?}",
        range.lo,
        range.hi,
        path.display(),
        started.elapsed()
    );
    ExitCode::SUCCESS
}

/// `repro merge DIR... --out DIR [--json]`: loads every shard artifact in
/// the given directories, merges them, and emits the experiment's reports
/// exactly as a single-process `repro <experiment> --out DIR` would.
fn run_merge(opts: &Options) -> ExitCode {
    let mut states = Vec::new();
    for dir in &opts.inputs {
        match load_dir(Path::new(dir)) {
            Ok(found) => states.extend(found),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let count = states.len();
    let denominator = states.first().map_or(1, |s| s.shard.1);
    let merged = match merge_states(states) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !merged.is_complete() {
        eprintln!("error: merged state is incomplete — did you merge all {denominator} shards?");
        for missing in merged.missing().iter().take(8) {
            eprintln!("  {missing}");
        }
        return ExitCode::FAILURE;
    }
    let Some(entry) = find_shardable(&merged.experiment) else {
        eprintln!(
            "error: artifact names unknown experiment {:?}",
            merged.experiment
        );
        return ExitCode::FAILURE;
    };
    // Rebuild the options the report half would have seen in-process; the
    // artifact records everything execution-independent about the run.
    let report_opts = Options {
        full: merged.full,
        trials: Some(merged.grid.trials),
        ..Options::default()
    };
    let name = merged.experiment.clone();
    let report = (entry.report)(&report_opts, &merged.into_cells());
    report.print();
    let dir = opts.out_dir.as_deref().expect("validated at parse time");
    if let Err(e) = write_report_artifacts(&report, dir, opts.json) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[merge] {count} artifacts → {} {} written to {}",
        name,
        if opts.json { "CSVs + JSON" } else { "CSVs" },
        dir.display()
    );
    ExitCode::SUCCESS
}

/// Entry point over the process arguments.
pub fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args)
}

fn print_usage() {
    println!(
        "usage: repro <experiment|all|list|bench> [--full] [--quick] [--trials N] [--out DIR] \
         [--json] [--threads N] [--batch N]"
    );
    println!("       repro shard <experiment> --shard i/N --out DIR   (partial-state artifact)");
    println!("       repro merge DIR... --out DIR [--json]            (recombine + report)");
    println!("       repro <experiment> --checkpoint --out DIR        (crash-safe long run)");
    println!("       repro resume DIR [--json]                        (continue from checkpoint)");
    println!("       repro serve <experiment> --out DIR [--json] [--port P] [--leases N]");
    println!("                   [--lease-secs S] [--linger-secs S]   (distributed coordinator)");
    println!("       repro work --connect HOST:PORT [--threads N]     (pull-based worker)");
    println!();
    println!("  --full      use the paper's grids (minutes) instead of quick ones (seconds);");
    println!("              prints trials-completed progress + ETA to stderr when it is a TTY");
    println!("  --quick     bench smoke mode: tiny iteration counts (schema checks only)");
    println!("  --trials N  override the trial count");
    println!("  --out DIR   also write CSV series to DIR");
    println!("  --json      also write JSON artifacts to DIR (needs --out)");
    println!("  --threads N worker threads (default: all cores)");
    println!("  --batch N   pin fixed N-trial claims instead of the default cost-tapered");
    println!("              scheduling (results are bit-identical either way)");
    println!("  --shard i/N run only cell shard i of N, split by estimated work (shard");
    println!("              subcommand; merged output is byte-identical to one process)");
    println!("  --checkpoint           snapshot in-flight state into DIR/checkpoints/ and");
    println!("                         refresh DIR/metrics.json (default: every 30 s)");
    println!("  --checkpoint-secs N    snapshot every N seconds (implies --checkpoint)");
    println!("  --checkpoint-trials N  snapshot every N completed trials (implies it too;");
    println!("                         resumed reports are byte-identical to uninterrupted)");
    println!(
        "  --port P        serve: listen port (default {}; 0 = ephemeral)",
        crate::server::DEFAULT_PORT
    );
    println!(
        "  --leases N      serve: cut the sweep into N cost-weighted leases (default {})",
        crate::server::DEFAULT_LEASES
    );
    println!(
        "  --lease-secs S  serve: re-issue a lease not completed within S s (default {})",
        crate::server::DEFAULT_LEASE_SECS
    );
    println!(
        "  --linger-secs S serve: answer `done` for S s after completion (default {})",
        crate::server::DEFAULT_LINGER_SECS
    );
    println!("  --connect H:P   work: the coordinator to pull leases from");
    println!();
    println!("experiments:");
    for (name, desc, _) in registry() {
        println!("  {name:<12} {desc}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_experiment_fails() {
        assert_eq!(run(&strs(&["no-such-figure"])), ExitCode::FAILURE);
    }

    #[test]
    fn bad_flag_fails() {
        assert_eq!(run(&strs(&["fig3", "--bogus"])), ExitCode::FAILURE);
    }

    #[test]
    fn list_and_help_succeed() {
        assert_eq!(run(&strs(&["list"])), ExitCode::SUCCESS);
        assert_eq!(run(&strs(&["--help"])), ExitCode::SUCCESS);
        assert_eq!(run(&[]), ExitCode::SUCCESS);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_rejects_unshardable_experiments() {
        let out = temp_dir("unshardable");
        // fig13 is a single deterministic trace — registered, but not in
        // the shardable registry.
        assert_eq!(
            run(&strs(&[
                "shard",
                "fig13",
                "--shard",
                "0/2",
                "--out",
                out.to_str().unwrap()
            ])),
            ExitCode::FAILURE
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn merge_rejects_empty_and_incomplete_inputs() {
        let empty = temp_dir("merge-empty");
        std::fs::create_dir_all(&empty).unwrap();
        let out = temp_dir("merge-out");
        // A directory with no artifacts fails cleanly.
        assert_eq!(
            run(&strs(&[
                "merge",
                empty.to_str().unwrap(),
                "--out",
                out.to_str().unwrap()
            ])),
            ExitCode::FAILURE
        );
        // One shard of two merges but is incomplete → clean failure, no
        // report written.
        let shard_dir = temp_dir("merge-partial");
        assert_eq!(
            run(&strs(&[
                "shard",
                "fig5",
                "--trials",
                "2",
                "--threads",
                "2",
                "--shard",
                "0/2",
                "--out",
                shard_dir.to_str().unwrap()
            ])),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&strs(&[
                "merge",
                shard_dir.to_str().unwrap(),
                "--out",
                out.to_str().unwrap()
            ])),
            ExitCode::FAILURE
        );
        assert!(!out.join("fig5_cw_slots_abstract.csv").exists());
        for dir in [empty, out, shard_dir] {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn shard_then_merge_reproduces_the_direct_csv() {
        let direct = temp_dir("direct");
        let merged = temp_dir("merged");
        let shards = temp_dir("shards");
        assert_eq!(
            run(&strs(&[
                "fig5",
                "--trials",
                "2",
                "--threads",
                "2",
                "--out",
                direct.to_str().unwrap()
            ])),
            ExitCode::SUCCESS
        );
        for i in 0..2 {
            assert_eq!(
                run(&strs(&[
                    "shard",
                    "fig5",
                    "--trials",
                    "2",
                    "--threads",
                    "2",
                    "--shard",
                    &format!("{i}/2"),
                    "--out",
                    shards.to_str().unwrap()
                ])),
                ExitCode::SUCCESS
            );
        }
        assert_eq!(
            run(&strs(&[
                "merge",
                shards.to_str().unwrap(),
                "--out",
                merged.to_str().unwrap()
            ])),
            ExitCode::SUCCESS
        );
        let read = |d: &std::path::Path| {
            std::fs::read_to_string(d.join("fig5_cw_slots_abstract.csv")).unwrap()
        };
        assert_eq!(read(&direct), read(&merged), "merged CSV diverged");
        for dir in [direct, merged, shards] {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn checkpoint_rejects_unshardable_experiments() {
        let out = temp_dir("ckpt-unshardable");
        assert_eq!(
            run(&strs(&[
                "fig13",
                "--checkpoint",
                "--out",
                out.to_str().unwrap()
            ])),
            ExitCode::FAILURE
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn resume_fails_cleanly_without_checkpoints() {
        let dir = temp_dir("resume-none");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            run(&strs(&["resume", dir.to_str().unwrap()])),
            ExitCode::FAILURE
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_writes_artifacts_and_resume_of_complete_state_matches() {
        let direct = temp_dir("ckpt-direct");
        let ckpt = temp_dir("ckpt-run");
        assert_eq!(
            run(&strs(&[
                "fig5",
                "--trials",
                "2",
                "--threads",
                "2",
                "--out",
                direct.to_str().unwrap()
            ])),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&strs(&[
                "fig5",
                "--trials",
                "2",
                "--threads",
                "2",
                "--checkpoint-trials",
                "1",
                "--out",
                ckpt.to_str().unwrap()
            ])),
            ExitCode::SUCCESS
        );
        let read = |d: &std::path::Path| {
            std::fs::read_to_string(d.join("fig5_cw_slots_abstract.csv")).unwrap()
        };
        assert_eq!(
            read(&direct),
            read(&ckpt),
            "checkpointing changed the results"
        );
        // The live-metrics sidecar reports the finished run.
        let doc = crate::checkpoint::MetricsDoc::parse(
            &std::fs::read_to_string(ckpt.join(crate::checkpoint::METRICS_FILE)).unwrap(),
        )
        .unwrap();
        assert!(doc.finished);
        assert_eq!(doc.trials_done, doc.trials_total);
        // The final checkpoint is complete, so resume has nothing to run —
        // and rebuilds the identical report artifacts from the artifact.
        std::fs::remove_file(ckpt.join("fig5_cw_slots_abstract.csv")).unwrap();
        assert_eq!(
            run(&strs(&["resume", ckpt.to_str().unwrap()])),
            ExitCode::SUCCESS
        );
        assert_eq!(read(&direct), read(&ckpt), "resume rebuild diverged");
        for dir in [direct, ckpt] {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
