//! The `repro` command-line interface.
//!
//! ```text
//! repro <experiment|all|list> [--full] [--trials N] [--out DIR] [--json]
//!       [--threads N] [--batch N]
//! ```
//!
//! Default grids are laptop-quick; `--full` switches to the paper's grids
//! (and turns on the stderr progress meter when stderr is a TTY). With
//! `--out DIR` each experiment also writes CSV series for plotting;
//! `--json` adds JSON artifacts next to them.
//!
//! The actual binary lives in the workspace root package (`src/bin/repro.rs`)
//! so that a plain `cargo run --bin repro` works from the repository root;
//! this module holds all of its logic so it stays unit-testable here.

use crate::figures::{registry, Report};
use crate::options::Options;
use std::process::ExitCode;

/// Entry point: parses `args` (without the program name) and runs the
/// selected experiments.
pub fn run(args: &[String]) -> ExitCode {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let (sub, opts) = match Options::parse(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    if sub == "list" {
        for (name, desc, _) in registry() {
            println!("{name:<12} {desc}");
        }
        println!(
            "{:<12} benchmark harness — MAC hot path (BENCH_mac.json)",
            "bench"
        );
        return ExitCode::SUCCESS;
    }
    // Fail fast on an unusable output directory — before hours of trials,
    // not after them (the late-error pathology `--json` used to have).
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --out {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if sub == "bench" {
        let started = std::time::Instant::now();
        match crate::benchmark::run(&opts) {
            Ok(report) => {
                report.print();
                println!("[bench] done in {:.1?}\n", started.elapsed());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let entries = registry();
    let selected: Vec<_> = if sub == "all" {
        entries
    } else {
        match entries.into_iter().find(|(name, _, _)| *name == sub) {
            Some(entry) => vec![entry],
            None => {
                eprintln!("error: unknown experiment {sub:?} (try `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    };

    for (name, _, runner) in selected {
        let started = std::time::Instant::now();
        let report: Report = runner(&opts);
        report.print();
        if let Some(dir) = &opts.out_dir {
            report.write_csv(dir);
            if opts.json {
                report.write_json(dir);
            }
            println!(
                "[{}] {} written to {}",
                name,
                if opts.json { "CSVs + JSON" } else { "CSVs" },
                dir.display()
            );
        }
        println!("[{}] done in {:.1?}\n", name, started.elapsed());
    }
    ExitCode::SUCCESS
}

/// Entry point over the process arguments.
pub fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args)
}

fn print_usage() {
    println!(
        "usage: repro <experiment|all|list|bench> [--full] [--quick] [--trials N] [--out DIR] \
         [--json] [--threads N] [--batch N]"
    );
    println!();
    println!("  --full      use the paper's grids (minutes) instead of quick ones (seconds);");
    println!("              prints trials-completed progress + ETA to stderr when it is a TTY");
    println!("  --quick     bench smoke mode: tiny iteration counts (schema checks only)");
    println!("  --trials N  override the trial count");
    println!("  --out DIR   also write CSV series to DIR");
    println!("  --json      also write JSON artifacts to DIR (needs --out)");
    println!("  --threads N worker threads (default: all cores)");
    println!("  --batch N   trials claimed per scheduling step (default: auto; results");
    println!("              are bit-identical for every batch size and thread count)");
    println!();
    println!("experiments:");
    for (name, desc, _) in registry() {
        println!("  {name:<12} {desc}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_experiment_fails() {
        assert_eq!(run(&strs(&["no-such-figure"])), ExitCode::FAILURE);
    }

    #[test]
    fn bad_flag_fails() {
        assert_eq!(run(&strs(&["fig3", "--bogus"])), ExitCode::FAILURE);
    }

    #[test]
    fn list_and_help_succeed() {
        assert_eq!(run(&strs(&["list"])), ExitCode::SUCCESS);
        assert_eq!(run(&strs(&["--help"])), ExitCode::SUCCESS);
        assert_eq!(run(&[]), ExitCode::SUCCESS);
    }
}
