//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment|all|list> [--full] [--trials N] [--out DIR] [--threads N]
//! ```
//!
//! Default grids are laptop-quick; `--full` switches to the paper's grids.
//! With `--out DIR` each experiment also writes CSV series for plotting.

use contention_experiments::figures::{registry, Report};
use contention_experiments::options::Options;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let (sub, opts) = match Options::parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    if sub == "list" {
        for (name, desc, _) in registry() {
            println!("{name:<8} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let entries = registry();
    let selected: Vec<_> = if sub == "all" {
        entries
    } else {
        match entries.into_iter().find(|(name, _, _)| *name == sub) {
            Some(entry) => vec![entry],
            None => {
                eprintln!("error: unknown experiment {sub:?} (try `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    };

    for (name, _, runner) in selected {
        let started = std::time::Instant::now();
        let report: Report = runner(&opts);
        report.print();
        if let Some(dir) = &opts.out_dir {
            report.write_csv(dir);
            println!("[{}] CSVs written to {}", name, dir.display());
        }
        println!("[{}] done in {:.1?}\n", name, started.elapsed());
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    println!("usage: repro <experiment|all|list> [--full] [--trials N] [--out DIR] [--threads N]");
    println!();
    println!("  --full      use the paper's grids (minutes) instead of quick ones (seconds)");
    println!("  --trials N  override the trial count");
    println!("  --out DIR   also write CSV series to DIR");
    println!("  --threads N worker threads (default: all cores)");
    println!();
    println!("experiments:");
    for (name, desc, _) in registry() {
        println!("  {name:<8} {desc}");
    }
}
