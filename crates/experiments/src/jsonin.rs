//! A minimal JSON reader — the parsing side of [`crate::jsonout`].
//!
//! The vendored serde facade is a no-op, so artifacts this crate writes
//! (`repro --json`, shard state) are parsed back with this hand-rolled
//! recursive-descent reader. It accepts exactly RFC 8259 JSON; numbers are
//! parsed with Rust's correctly-rounding `str::parse::<f64>`, which inverts
//! `jsonout::num`'s shortest-round-trip formatting **exactly** — write then
//! read recovers the original bits, the property the shard merge pipeline's
//! byte-identity guarantee rests on.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers, integers included, as `f64` (every integer the
    /// artifacts carry is well below 2⁵³).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key–value pairs in document order (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors with the missing key's name.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }

    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected a bool, found {other:?}")),
        }
    }

    /// The number; `null` reads as NaN (the writer's encoding of non-finite
    /// values, used for unfilled trial slots in shard state).
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            Json::Null => Ok(f64::NAN),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }

    /// A non-negative integer that fits in `u32`.
    pub fn as_u32(&self) -> Result<u32, String> {
        match self {
            Json::Num(x) if *x >= 0.0 && *x <= u32::MAX as f64 && x.fract() == 0.0 => Ok(*x as u32),
            other => Err(format!("expected a u32, found {other:?}")),
        }
    }

    pub fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected an array, found {other:?}")),
        }
    }
}

/// Deepest container nesting `parse` accepts. The parser is recursive
/// descent, so unbounded nesting is unbounded stack — and a hostile
/// document (the work-server parses POSTs off the network) can pack one
/// nesting level per *byte*. Our artifacts nest a handful of levels;
/// 128 is comfortably past any honest document while keeping the stack
/// shallow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, what: &str) -> String {
        format!("JSON error at byte {}: {what}", self.pos)
    }

    /// Runs one container parse a level deeper, enforcing [`MAX_DEPTH`]
    /// with a clean error instead of a stack overflow.
    fn nested(&mut self, parse: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.fail(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail(&format!("bad number {token:?}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            // The writer never emits surrogate pairs (it
                            // only escapes control characters); reject
                            // anything that is not a scalar value.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonout::num;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, -2.5, null, true, false], "b": {"c": "x\ty"}}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64().unwrap(), 1.0);
        assert_eq!(a[1].as_f64().unwrap(), -2.5);
        assert!(a[2].as_f64().unwrap().is_nan());
        assert!(a[3].as_bool().unwrap());
        assert!(!a[4].as_bool().unwrap());
        let c = v.field("b").unwrap().field("c").unwrap();
        assert_eq!(c.as_str().unwrap(), "x\ty");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"abc", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn numbers_round_trip_the_writer_exactly() {
        // jsonout::num prints shortest-round-trip floats; parsing them back
        // must recover the exact bits.
        for x in [
            0.0,
            -0.0,
            1.5,
            10.0,
            0.1,
            1.0 / 3.0,
            6.02214076e23,
            f64::MIN_POSITIVE,
            f64::MAX,
            -987_654_321.123_456_8,
        ] {
            let text = num(x);
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
        // Non-finite degrades to null on write, NaN on read-back.
        assert!(Json::parse(&num(f64::NAN))
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
        assert!(Json::parse(&num(f64::INFINITY))
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn strings_round_trip_the_writer() {
        for s in [
            "plain",
            "quo\"te",
            "back\\slash",
            "tab\tnewline\n",
            "µs — ∞",
        ] {
            let doc = format!("\"{}\"", crate::jsonout::escape(s));
            assert_eq!(Json::parse(&doc).unwrap().as_str().unwrap(), s);
        }
    }

    #[test]
    fn u32_extraction_is_strict() {
        assert_eq!(Json::parse("42").unwrap().as_u32().unwrap(), 42);
        assert!(Json::parse("-1").unwrap().as_u32().is_err());
        assert!(Json::parse("1.5").unwrap().as_u32().is_err());
        assert!(Json::parse("4294967296").unwrap().as_u32().is_err());
    }

    #[test]
    fn deep_nesting_errors_cleanly_instead_of_overflowing_the_stack() {
        // Regression: the recursive-descent parser had no depth limit, so a
        // 10⁵-deep document (one level per two bytes — trivially cheap for
        // an attacker POSTing to the work-server) overflowed the stack. It
        // must now be a clean parse error.
        for doc in [
            "[".repeat(100_000) + &"]".repeat(100_000),
            "{\"k\":".repeat(100_000) + "1" + &"}".repeat(100_000),
        ] {
            let err = Json::parse(&doc).expect_err("deep nesting must not parse");
            assert!(err.contains("nesting deeper than"), "{err}");
        }
        // Honest documents stay well inside the cap: 100 levels parse fine.
        let ok = "[".repeat(100) + "0" + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
        // And the cap is exact: MAX_DEPTH levels parse, MAX_DEPTH + 1 do not.
        let at_cap = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&at_cap).is_ok());
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn the_golden_series_fixture_parses() {
        // The reader must handle everything the writer emits; the checked-in
        // fixture is the canonical sample.
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../tests/golden/fig5_cw_slots_abstract.json"),
        )
        .expect("fixture");
        let v = Json::parse(&text).unwrap();
        assert_eq!(
            v.field("name").unwrap().as_str().unwrap(),
            "fig5_cw_slots_abstract"
        );
        assert_eq!(v.field("series").unwrap().as_array().unwrap().len(), 4);
    }
}
