//! CLI options shared by every `repro` subcommand.

use contention_sim::engine::ExecPolicy;
use contention_sim::monitor::SnapshotCadence;
use std::path::PathBuf;
use std::time::Duration;

/// Checkpoint cadence knobs (`--checkpoint`, `--checkpoint-secs`,
/// `--checkpoint-trials`). Either axis snapshots the run; with neither
/// given, `--checkpoint` defaults to every 30 seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointOpts {
    /// Snapshot every this many seconds.
    pub secs: Option<u64>,
    /// Snapshot every this many completed trials.
    pub trials: Option<usize>,
}

impl CheckpointOpts {
    /// Default wall-clock cadence when only bare `--checkpoint` was given.
    pub const DEFAULT_SECS: u64 = 30;

    /// The engine-facing cadence these knobs describe.
    pub fn cadence(&self) -> SnapshotCadence {
        if self.secs.is_none() && self.trials.is_none() {
            SnapshotCadence::secs(Self::DEFAULT_SECS)
        } else {
            SnapshotCadence {
                every: self.secs.map(Duration::from_secs),
                every_trials: self.trials,
            }
        }
    }
}

/// Harness options.
///
/// The default grids are laptop-quick; `--full` switches to the paper's
/// grids (30–200 trials, n up to 150 for the MAC sweeps and 10⁵–10⁶ for the
/// abstract sweeps), which take minutes rather than seconds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Options {
    /// Use the paper's full grids.
    pub full: bool,
    /// Override the trial count.
    pub trials: Option<u32>,
    /// Write CSVs here in addition to printing.
    pub out_dir: Option<PathBuf>,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// `--batch N`: pin fixed `N`-trial claims in grid order, overriding the
    /// default tapered (cost-aware, heaviest-first) scheduling. Purely a
    /// performance knob — results are bit-identical either way.
    pub batch: Option<usize>,
    /// Also write JSON series next to the CSVs (requires `--out`, except for
    /// `bench`, where `--json` alone writes `./BENCH_mac.json`).
    pub json: bool,
    /// Bench smoke mode: tiny iteration counts, schema-only value.
    pub quick: bool,
    /// `--shard i/N`: run only shard `i` of `N` (the `shard` subcommand).
    pub shard: Option<(u32, u32)>,
    /// `--checkpoint[-secs/-trials]`: periodically snapshot in-flight state
    /// into `--out/checkpoints/` (and refresh `metrics.json`).
    pub checkpoint: Option<CheckpointOpts>,
    /// `--port P`: TCP port the `serve` coordinator listens on (`0` = an
    /// ephemeral port, printed at startup — what tests use).
    pub port: Option<u16>,
    /// `--connect HOST:PORT`: the coordinator a `work` process pulls
    /// leases from.
    pub connect: Option<String>,
    /// `--lease-secs N`: how long `serve` waits for a claimed lease's
    /// results before re-issuing it to another worker.
    pub lease_secs: Option<u64>,
    /// `--leases N`: how many leases `serve` cuts the sweep into (the
    /// fleet-size knob: a few per expected worker keeps everyone busy).
    pub leases: Option<usize>,
    /// `--linger-secs N`: how long a finished `serve` keeps answering
    /// `done` before exiting, so slow workers learn the run is over.
    pub linger_secs: Option<u64>,
    /// Positional arguments after the subcommand: the experiment name for
    /// `shard`/`serve`, the artifact directories for `merge`. Empty
    /// elsewhere.
    pub inputs: Vec<String>,
}

impl Options {
    /// Picks between a quick and a full grid value.
    pub fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }

    /// Trial count: explicit override, else quick/full default.
    pub fn trials_or(&self, quick: u32, full: u32) -> u32 {
        self.trials.unwrap_or_else(|| self.pick(quick, full))
    }

    /// The paper's MAC-sweep x-axis: n = 10, 20, …, 150 (full), or a coarse
    /// subset (quick).
    pub fn mac_ns(&self) -> Vec<u32> {
        if self.full {
            (1..=15).map(|i| i * 10).collect()
        } else {
            vec![10, 50, 100, 150]
        }
    }

    /// The engine execution policy these options describe. Progress
    /// reporting comes on for `--full` runs (and stays silent off-TTY).
    pub fn exec(&self) -> ExecPolicy {
        ExecPolicy {
            threads: self.threads,
            batch: self.batch,
            cells: None,
            progress: self.full,
        }
    }

    /// Parses `repro`-style flags. Returns `(subcommand, options)`.
    pub fn parse(args: &[String]) -> Result<(String, Options), String> {
        let mut sub = None;
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--quick" => opts.quick = true,
                "--json" => opts.json = true,
                "--trials" => {
                    let v = it.next().ok_or("--trials needs a value")?;
                    opts.trials = Some(v.parse().map_err(|_| format!("bad trial count {v:?}"))?);
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a directory")?;
                    opts.out_dir = Some(PathBuf::from(v));
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    opts.threads = Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
                }
                "--batch" => {
                    let v = it.next().ok_or("--batch needs a value")?;
                    let batch: usize = v.parse().map_err(|_| format!("bad batch size {v:?}"))?;
                    if batch == 0 {
                        return Err("--batch must be at least 1".to_string());
                    }
                    opts.batch = Some(batch);
                }
                "--shard" => {
                    let v = it.next().ok_or("--shard needs a value like 0/4")?;
                    opts.shard = Some(Self::parse_shard(v)?);
                }
                "--checkpoint" => {
                    opts.checkpoint.get_or_insert_with(CheckpointOpts::default);
                }
                "--checkpoint-secs" => {
                    let v = it.next().ok_or("--checkpoint-secs needs a value")?;
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| format!("bad checkpoint interval {v:?}"))?;
                    if secs == 0 {
                        return Err("--checkpoint-secs must be at least 1".to_string());
                    }
                    opts.checkpoint
                        .get_or_insert_with(CheckpointOpts::default)
                        .secs = Some(secs);
                }
                "--checkpoint-trials" => {
                    let v = it.next().ok_or("--checkpoint-trials needs a value")?;
                    let trials: usize = v
                        .parse()
                        .map_err(|_| format!("bad checkpoint trial count {v:?}"))?;
                    if trials == 0 {
                        return Err("--checkpoint-trials must be at least 1".to_string());
                    }
                    opts.checkpoint
                        .get_or_insert_with(CheckpointOpts::default)
                        .trials = Some(trials);
                }
                "--port" => {
                    let v = it.next().ok_or("--port needs a value")?;
                    opts.port = Some(v.parse().map_err(|_| format!("bad port {v:?}"))?);
                }
                "--connect" => {
                    let v = it.next().ok_or("--connect needs HOST:PORT")?;
                    if !v.contains(':') {
                        return Err(format!("bad --connect address {v:?} (expected HOST:PORT)"));
                    }
                    opts.connect = Some(v.clone());
                }
                "--lease-secs" => {
                    let v = it.next().ok_or("--lease-secs needs a value")?;
                    let secs: u64 = v.parse().map_err(|_| format!("bad lease duration {v:?}"))?;
                    if secs == 0 {
                        return Err("--lease-secs must be at least 1".to_string());
                    }
                    opts.lease_secs = Some(secs);
                }
                "--leases" => {
                    let v = it.next().ok_or("--leases needs a value")?;
                    let count: usize = v.parse().map_err(|_| format!("bad lease count {v:?}"))?;
                    if count == 0 {
                        return Err("--leases must be at least 1".to_string());
                    }
                    opts.leases = Some(count);
                }
                "--linger-secs" => {
                    let v = it.next().ok_or("--linger-secs needs a value")?;
                    opts.linger_secs = Some(
                        v.parse()
                            .map_err(|_| format!("bad linger duration {v:?}"))?,
                    );
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                name => {
                    if sub.is_none() {
                        sub = Some(name.to_string());
                    } else {
                        opts.inputs.push(name.to_string());
                    }
                }
            }
        }
        let sub = sub.ok_or("missing subcommand")?;
        opts.validate(&sub)?;
        Ok((sub, opts))
    }

    /// Parses a `--shard` value: `i/N` with `i < N`, `N ≥ 1`.
    fn parse_shard(v: &str) -> Result<(u32, u32), String> {
        let bad = || format!("bad shard spec {v:?} (expected i/N with i < N, N >= 1)");
        let (index, of) = v.split_once('/').ok_or_else(bad)?;
        let index: u32 = index.parse().map_err(|_| bad())?;
        let of: u32 = of.parse().map_err(|_| bad())?;
        if of == 0 || index >= of {
            return Err(bad());
        }
        Ok((index, of))
    }

    /// Flag-combination validation, run up front (at parse time) so a bad
    /// combination can never surface as an error *after* a long run.
    fn validate(&self, sub: &str) -> Result<(), String> {
        if self.full && self.quick {
            return Err("--full and --quick are mutually exclusive".to_string());
        }
        // `--quick` only means something to the bench harness; silently
        // ignoring it elsewhere would turn an intended smoke run into a
        // full one.
        if self.quick && sub != "bench" {
            return Err(format!("--quick only applies to `bench`, not {sub:?}"));
        }
        // `bench --json` writes ./BENCH_mac.json without needing --out;
        // `resume DIR` writes into DIR itself; every other figure needs a
        // directory to put its JSON series in.
        if self.json && self.out_dir.is_none() && sub != "bench" && sub != "resume" {
            return Err("--json needs --out DIR to write into".to_string());
        }
        if self.shard.is_some() && sub != "shard" {
            return Err(format!("--shard only applies to `shard`, not {sub:?}"));
        }
        // The distributed-run knobs belong to exactly one side of the wire.
        if sub != "serve" {
            for (set, flag) in [
                (self.port.is_some(), "--port"),
                (self.lease_secs.is_some(), "--lease-secs"),
                (self.leases.is_some(), "--leases"),
                (self.linger_secs.is_some(), "--linger-secs"),
            ] {
                if set {
                    return Err(format!("{flag} only applies to `serve`, not {sub:?}"));
                }
            }
        }
        if self.connect.is_some() && sub != "work" {
            return Err(format!("--connect only applies to `work`, not {sub:?}"));
        }
        if self.checkpoint.is_some() {
            match sub {
                // Resume re-checkpoints into the run directory automatically;
                // the flags only tune its cadence there.
                "resume" => {}
                "shard" | "merge" | "bench" | "all" => {
                    return Err(format!("--checkpoint does not apply to {sub:?}"));
                }
                _ => {
                    if self.out_dir.is_none() {
                        return Err("--checkpoint needs --out DIR for its artifacts".to_string());
                    }
                }
            }
        }
        match sub {
            "shard" => {
                // A partial run: exactly one experiment, explicit shard
                // coordinates, and a directory for the state artifact.
                if self.inputs.len() != 1 {
                    return Err(
                        "shard needs exactly one experiment, e.g. `repro shard fig5 \
                         --shard 0/3 --out DIR`"
                            .to_string(),
                    );
                }
                if self.shard.is_none() {
                    return Err("shard needs --shard i/N".to_string());
                }
                if self.out_dir.is_none() {
                    return Err("shard needs --out DIR for its state artifact".to_string());
                }
                if self.json {
                    return Err(
                        "shard always writes a JSON state artifact; drop --json".to_string()
                    );
                }
            }
            "merge" => {
                // Merge folds saved state — no trials run, so every
                // execution knob is meaningless and rejecting it up front
                // beats silently ignoring it.
                if self.inputs.is_empty() {
                    return Err(
                        "merge needs at least one artifact directory, e.g. `repro merge \
                         outA outB --out DIR`"
                            .to_string(),
                    );
                }
                if self.out_dir.is_none() {
                    return Err("merge needs --out DIR for its reports".to_string());
                }
                for (set, flag) in [
                    (self.threads.is_some(), "--threads"),
                    (self.batch.is_some(), "--batch"),
                    (self.trials.is_some(), "--trials"),
                    (self.full, "--full"),
                ] {
                    if set {
                        return Err(format!(
                            "{flag} does not apply to `merge` (merging folds saved shard \
                             state; no trials run)"
                        ));
                    }
                }
            }
            "resume" => {
                if self.inputs.len() != 1 {
                    return Err(
                        "resume needs exactly one run directory, e.g. `repro resume DIR`"
                            .to_string(),
                    );
                }
                if self.out_dir.is_some() {
                    return Err(
                        "resume writes into the run directory itself; drop --out".to_string()
                    );
                }
                // The grid must come from the checkpoint — overriding it
                // would make the resumed run diverge from the original.
                for (set, flag) in [(self.trials.is_some(), "--trials"), (self.full, "--full")] {
                    if set {
                        return Err(format!(
                            "{flag} does not apply to `resume` (the grid comes from the \
                             checkpoint artifact)"
                        ));
                    }
                }
            }
            "serve" => {
                // The coordinator runs no trials itself: it cuts the sweep
                // into leases, folds results, and writes the artifacts.
                if self.inputs.len() != 1 {
                    return Err(
                        "serve needs exactly one experiment, e.g. `repro serve fig5 --out DIR`"
                            .to_string(),
                    );
                }
                if self.out_dir.is_none() {
                    return Err("serve needs --out DIR for its checkpoints and reports".to_string());
                }
                for (set, flag) in [
                    (self.threads.is_some(), "--threads"),
                    (self.batch.is_some(), "--batch"),
                ] {
                    if set {
                        return Err(format!(
                            "{flag} does not apply to `serve` (workers run the trials; \
                             pass it to `repro work`)"
                        ));
                    }
                }
                if self.checkpoint.is_some() {
                    return Err(
                        "--checkpoint does not apply to `serve` (it checkpoints on every \
                         accepted result)"
                            .to_string(),
                    );
                }
            }
            "work" => {
                // A worker learns everything — experiment, grid, trials —
                // from its leases; only execution knobs make sense here.
                if self.connect.is_none() {
                    return Err(
                        "work needs --connect HOST:PORT, e.g. `repro work --connect \
                         127.0.0.1:7481`"
                            .to_string(),
                    );
                }
                if let Some(extra) = self.inputs.first() {
                    return Err(format!("unexpected extra argument {extra:?}"));
                }
                for (set, flag) in [
                    (self.trials.is_some(), "--trials"),
                    (self.full, "--full"),
                    (self.out_dir.is_some(), "--out"),
                    (self.json, "--json"),
                    (self.checkpoint.is_some(), "--checkpoint"),
                ] {
                    if set {
                        return Err(format!(
                            "{flag} does not apply to `work` (the grid and artifacts \
                             belong to the coordinator)"
                        ));
                    }
                }
            }
            _ => {
                if let Some(extra) = self.inputs.first() {
                    return Err(format!("unexpected extra argument {extra:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let (sub, opts) = Options::parse(&strs(&[
            "fig7",
            "--full",
            "--trials",
            "5",
            "--threads",
            "2",
            "--batch",
            "64",
        ]))
        .unwrap();
        assert_eq!(sub, "fig7");
        assert!(opts.full);
        assert_eq!(opts.trials, Some(5));
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.batch, Some(64));
    }

    #[test]
    fn out_dir_and_json() {
        let (_, opts) = Options::parse(&strs(&["fig3", "--out", "/tmp/x"])).unwrap();
        assert_eq!(opts.out_dir, Some(PathBuf::from("/tmp/x")));
        assert!(!opts.json);
        let (_, opts) = Options::parse(&strs(&["fig3", "--out", "/tmp/x", "--json"])).unwrap();
        assert!(opts.json);
    }

    #[test]
    fn json_without_out_is_rejected_up_front() {
        // The combination must fail at parse time — before any trial runs —
        // not when the report writer finally looks for its directory.
        assert!(Options::parse(&strs(&["fig3", "--json"])).is_err());
        assert!(Options::parse(&strs(&["all", "--json"])).is_err());
    }

    #[test]
    fn bench_json_without_out_is_allowed() {
        let (sub, opts) = Options::parse(&strs(&["bench", "--json"])).unwrap();
        assert_eq!(sub, "bench");
        assert!(opts.json);
        assert!(opts.out_dir.is_none());
    }

    #[test]
    fn quick_parses_and_conflicts_with_full() {
        let (_, opts) = Options::parse(&strs(&["bench", "--quick"])).unwrap();
        assert!(opts.quick && !opts.full);
        assert!(Options::parse(&strs(&["bench", "--quick", "--full"])).is_err());
    }

    #[test]
    fn quick_is_rejected_outside_bench() {
        assert!(Options::parse(&strs(&["fig5", "--quick"])).is_err());
        assert!(Options::parse(&strs(&["all", "--quick"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_missing_sub() {
        assert!(Options::parse(&strs(&["fig3", "--nope"])).is_err());
        assert!(Options::parse(&strs(&["--full"])).is_err());
        assert!(Options::parse(&strs(&["fig3", "fig4"])).is_err());
        assert!(Options::parse(&strs(&["fig3", "--trials", "abc"])).is_err());
        assert!(Options::parse(&strs(&["fig3", "--batch", "0"])).is_err());
    }

    #[test]
    fn shard_spec_parses_and_validates() {
        let (sub, opts) = Options::parse(&strs(&[
            "shard", "fig5", "--shard", "1/3", "--out", "/tmp/s",
        ]))
        .unwrap();
        assert_eq!(sub, "shard");
        assert_eq!(opts.inputs, vec!["fig5".to_string()]);
        assert_eq!(opts.shard, Some((1, 3)));
        // i >= N, N = 0, and junk are all parse-time errors.
        for bad in ["3/3", "4/3", "0/0", "x/2", "1:2", "2"] {
            let err = Options::parse(&strs(&["shard", "fig5", "--shard", bad, "--out", "/t"]))
                .unwrap_err();
            assert!(err.contains("bad shard spec"), "{bad}: {err}");
        }
    }

    #[test]
    fn shard_mode_requires_its_pieces_up_front() {
        // Missing experiment / --shard / --out each fail at parse time.
        assert!(Options::parse(&strs(&["shard", "--shard", "0/2", "--out", "/t"])).is_err());
        assert!(Options::parse(&strs(&["shard", "fig5", "--out", "/t"])).is_err());
        assert!(Options::parse(&strs(&["shard", "fig5", "--shard", "0/2"])).is_err());
        // Two experiments is ambiguous.
        assert!(Options::parse(&strs(&[
            "shard", "fig5", "fig7", "--shard", "0/2", "--out", "/t"
        ]))
        .is_err());
        // The artifact is always JSON; --json would suggest otherwise.
        assert!(Options::parse(&strs(&[
            "shard", "fig5", "--shard", "0/2", "--out", "/t", "--json"
        ]))
        .is_err());
        // --shard outside the shard subcommand is rejected.
        let err = Options::parse(&strs(&["fig5", "--shard", "0/2"])).unwrap_err();
        assert!(err.contains("only applies to `shard`"), "{err}");
    }

    #[test]
    fn merge_mode_takes_dirs_and_rejects_execution_knobs() {
        let (sub, opts) =
            Options::parse(&strs(&["merge", "a", "b", "c", "--out", "/t", "--json"])).unwrap();
        assert_eq!(sub, "merge");
        assert_eq!(opts.inputs, vec!["a", "b", "c"]);
        assert!(opts.json);
        // No inputs / no --out fail at parse time.
        assert!(Options::parse(&strs(&["merge", "--out", "/t"])).is_err());
        assert!(Options::parse(&strs(&["merge", "a"])).is_err());
        // Merge runs no trials: every execution knob is rejected, not
        // silently ignored.
        for flags in [
            vec!["merge", "a", "--out", "/t", "--threads", "2"],
            vec!["merge", "a", "--out", "/t", "--batch", "8"],
            vec!["merge", "a", "--out", "/t", "--trials", "5"],
            vec!["merge", "a", "--out", "/t", "--full"],
            vec!["merge", "a", "--out", "/t", "--shard", "0/2"],
        ] {
            let err = Options::parse(&strs(&flags)).unwrap_err();
            assert!(
                err.contains("does not apply to `merge`") || err.contains("only applies to"),
                "{flags:?}: {err}"
            );
        }
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let (_, opts) = Options::parse(&strs(&["fig5", "--checkpoint", "--out", "/t"])).unwrap();
        assert_eq!(opts.checkpoint, Some(CheckpointOpts::default()));
        assert_eq!(
            opts.checkpoint.unwrap().cadence(),
            SnapshotCadence::secs(CheckpointOpts::DEFAULT_SECS)
        );
        // Either cadence flag implies --checkpoint.
        let (_, opts) =
            Options::parse(&strs(&["fig5", "--checkpoint-secs", "5", "--out", "/t"])).unwrap();
        assert_eq!(opts.checkpoint.unwrap().cadence(), SnapshotCadence::secs(5));
        let (_, opts) =
            Options::parse(&strs(&["fig5", "--checkpoint-trials", "64", "--out", "/t"])).unwrap();
        assert_eq!(
            opts.checkpoint.unwrap().cadence(),
            SnapshotCadence::trials(64)
        );
        // Checkpointing needs somewhere to write.
        let err = Options::parse(&strs(&["fig5", "--checkpoint"])).unwrap_err();
        assert!(err.contains("--checkpoint needs --out"), "{err}");
        // Zero cadences are rejected.
        assert!(Options::parse(&strs(&["fig5", "--checkpoint-secs", "0", "--out", "/t"])).is_err());
        assert!(
            Options::parse(&strs(&["fig5", "--checkpoint-trials", "0", "--out", "/t"])).is_err()
        );
        // Subcommands that run no single figure sweep reject it.
        for sub in [
            vec!["merge", "a", "--out", "/t", "--checkpoint"],
            vec!["bench", "--checkpoint"],
            vec!["all", "--checkpoint", "--out", "/t"],
            vec![
                "shard",
                "fig5",
                "--shard",
                "0/2",
                "--out",
                "/t",
                "--checkpoint",
            ],
        ] {
            let err = Options::parse(&strs(&sub)).unwrap_err();
            assert!(
                err.contains("--checkpoint does not apply"),
                "{sub:?}: {err}"
            );
        }
    }

    #[test]
    fn resume_mode_takes_one_dir_and_rejects_grid_overrides() {
        let (sub, opts) = Options::parse(&strs(&["resume", "/t/run", "--json"])).unwrap();
        assert_eq!(sub, "resume");
        assert_eq!(opts.inputs, vec!["/t/run"]);
        assert!(opts.json && opts.out_dir.is_none());
        // Cadence tuning for the automatic re-checkpointing is allowed.
        let (_, opts) =
            Options::parse(&strs(&["resume", "/t/run", "--checkpoint-secs", "9"])).unwrap();
        assert_eq!(opts.checkpoint.unwrap().secs, Some(9));
        // No dir, two dirs, --out, and grid overrides all fail up front.
        assert!(Options::parse(&strs(&["resume"])).is_err());
        assert!(Options::parse(&strs(&["resume", "a", "b"])).is_err());
        assert!(Options::parse(&strs(&["resume", "a", "--out", "/t"])).is_err());
        assert!(Options::parse(&strs(&["resume", "a", "--trials", "5"])).is_err());
        assert!(Options::parse(&strs(&["resume", "a", "--full"])).is_err());
    }

    #[test]
    fn serve_mode_takes_one_experiment_and_its_own_knobs() {
        let (sub, opts) = Options::parse(&strs(&[
            "serve",
            "fig5",
            "--out",
            "/t/srv",
            "--trials",
            "2",
            "--port",
            "0",
            "--lease-secs",
            "5",
            "--leases",
            "8",
            "--linger-secs",
            "3",
            "--json",
        ]))
        .unwrap();
        assert_eq!(sub, "serve");
        assert_eq!(opts.inputs, vec!["fig5"]);
        assert_eq!(opts.port, Some(0));
        assert_eq!(opts.lease_secs, Some(5));
        assert_eq!(opts.leases, Some(8));
        assert_eq!(opts.linger_secs, Some(3));
        // No experiment, no --out, execution knobs, and --checkpoint all
        // fail up front.
        assert!(Options::parse(&strs(&["serve", "--out", "/t"])).is_err());
        assert!(Options::parse(&strs(&["serve", "a", "b", "--out", "/t"])).is_err());
        assert!(Options::parse(&strs(&["serve", "fig5"])).is_err());
        assert!(
            Options::parse(&strs(&["serve", "fig5", "--out", "/t", "--threads", "2"])).is_err()
        );
        assert!(Options::parse(&strs(&["serve", "fig5", "--out", "/t", "--batch", "8"])).is_err());
        assert!(Options::parse(&strs(&["serve", "fig5", "--out", "/t", "--checkpoint"])).is_err());
        // The serve knobs are rejected everywhere else.
        assert!(Options::parse(&strs(&["fig5", "--port", "7000"])).is_err());
        assert!(Options::parse(&strs(&["fig5", "--lease-secs", "5"])).is_err());
        assert!(Options::parse(&strs(&["fig5", "--leases", "4"])).is_err());
        assert!(Options::parse(&strs(&["fig5", "--linger-secs", "1"])).is_err());
        // Degenerate values are rejected at parse time.
        assert!(Options::parse(&strs(&[
            "serve",
            "fig5",
            "--out",
            "/t",
            "--lease-secs",
            "0"
        ]))
        .is_err());
        assert!(Options::parse(&strs(&["serve", "fig5", "--out", "/t", "--leases", "0"])).is_err());
        assert!(
            Options::parse(&strs(&["serve", "fig5", "--out", "/t", "--port", "99999"])).is_err()
        );
    }

    #[test]
    fn work_mode_needs_connect_and_rejects_grid_knobs() {
        let (sub, opts) = Options::parse(&strs(&[
            "work",
            "--connect",
            "127.0.0.1:7481",
            "--threads",
            "2",
            "--batch",
            "8",
        ]))
        .unwrap();
        assert_eq!(sub, "work");
        assert_eq!(opts.connect.as_deref(), Some("127.0.0.1:7481"));
        assert_eq!(opts.threads, Some(2));
        // Missing/bad --connect, positional args, and grid/artifact knobs
        // all fail up front.
        assert!(Options::parse(&strs(&["work"])).is_err());
        assert!(Options::parse(&strs(&["work", "--connect", "noport"])).is_err());
        assert!(Options::parse(&strs(&["work", "fig5", "--connect", "h:1"])).is_err());
        assert!(Options::parse(&strs(&["work", "--connect", "h:1", "--trials", "3"])).is_err());
        assert!(Options::parse(&strs(&["work", "--connect", "h:1", "--full"])).is_err());
        assert!(Options::parse(&strs(&["work", "--connect", "h:1", "--out", "/t"])).is_err());
        // --connect is meaningless outside `work`.
        assert!(Options::parse(&strs(&["fig5", "--connect", "h:1"])).is_err());
    }

    #[test]
    fn exec_policy_mirrors_flags() {
        let (_, opts) =
            Options::parse(&strs(&["fig3", "--threads", "4", "--batch", "16"])).unwrap();
        let exec = opts.exec();
        assert_eq!(exec.threads, Some(4));
        assert_eq!(exec.batch, Some(16));
        assert!(!exec.progress);
        let (_, opts) = Options::parse(&strs(&["fig3", "--full"])).unwrap();
        assert!(opts.exec().progress);
    }

    #[test]
    fn quick_vs_full_defaults() {
        let quick = Options::default();
        assert_eq!(quick.trials_or(5, 30), 5);
        assert_eq!(quick.mac_ns(), vec![10, 50, 100, 150]);
        let full = Options {
            full: true,
            ..Options::default()
        };
        assert_eq!(full.trials_or(5, 30), 30);
        assert_eq!(full.mac_ns().len(), 15);
        let overridden = Options {
            trials: Some(9),
            ..Options::default()
        };
        assert_eq!(overridden.trials_or(5, 30), 9);
    }
}
