//! `repro serve` — the pull-based sweep coordinator.
//!
//! A long-running process that cuts one experiment's sweep into cost-
//! weighted per-trial leases ([`TrialRange::partition`]), hands them to
//! `repro work` processes over a minimal HTTP/TCP protocol, folds the
//! results they POST back, and writes the same artifacts a single-process
//! run would — byte-identical, because trial results are position-addressed
//! functions of `(experiment, algorithm, n, trial)` alone and the fold
//! seam is associative.
//!
//! ## Wire protocol
//!
//! Three routes, all JSON over HTTP/1.1 with `Connection: close`:
//!
//! * `GET /lease` — claim work. Responses:
//!   `{"status":"lease","id":N,"experiment":...,"full":...,"trials":T,`
//!   `"work":[[cell,lo,hi],...]}` (run trials `[lo,hi)` of each grid cell),
//!   `{"status":"wait","retry_ms":200}` (everything is leased out; poll
//!   again), or `{"status":"done"}` (the sweep is complete; exit).
//! * `POST /result/<id>` — body is a `shard_state/v1` artifact (the same
//!   format `repro shard` writes; the artifact seam *is* the wire format).
//!   The server validates it against the run's grid, folds it with
//!   duplicate-trial tolerance, checkpoints, and answers
//!   `{"status":"ok","fresh":F,"duplicate":D,"remaining":R}`.
//! * `GET /metrics` — the live `sweep_metrics/v2` sidecar, re-served
//!   verbatim from `--out/metrics.json`.
//!
//! ## Failure semantics
//!
//! A lease not completed within `--lease-secs` is re-issued (under a fresh
//! id) to the next worker that asks; the original worker may still POST
//! later, and the duplicate-trial discard of
//! [`MetricStats::try_merge_dedup`] makes the double execution harmless —
//! honest re-execution reproduces the bits exactly, and anything *else*
//! (conflicting values, a foreign grid, torn per-metric trials, deep JSON)
//! is rejected with an error, never folded. Every accepted POST checkpoints
//! the fold state into `--out/checkpoints/`, so a killed coordinator
//! resumes with `repro serve` pointed at the same `--out`, re-leasing only
//! the missing trials.

use crate::aggregate::StatsCell;
use crate::checkpoint::{self, CheckpointWriter};
use crate::cli::write_report_artifacts;
use crate::figures::sharding::{find_shardable, shardable_names, ShardableEntry};
use crate::options::Options;
use crate::shard::{GridMeta, ShardState};
use contention_core::algorithm::AlgorithmKind;
use contention_core::merge::MergeStats;
use contention_sim::engine::TrialRange;
use contention_sim::monitor::{SweepMonitor, SweepSnapshot};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default coordinator port (`--port` overrides; `0` = ephemeral).
pub const DEFAULT_PORT: u16 = 7481;
/// Default lease time-to-live before re-issue (`--lease-secs`).
pub const DEFAULT_LEASE_SECS: u64 = 60;
/// Default lease count the sweep is cut into (`--leases`).
pub const DEFAULT_LEASES: usize = 16;
/// Default post-completion linger window (`--linger-secs`).
pub const DEFAULT_LINGER_SECS: u64 = 2;
/// Poll interval the `wait` response suggests to workers.
pub const WAIT_RETRY_MS: u64 = 200;

/// Request bodies larger than this are rejected up front — a full-grid
/// artifact is megabytes; hundreds of megabytes is an attack, not a result.
const MAX_BODY_BYTES: usize = 64 << 20;
/// Concurrent request-handler cap (the semaphore's permit count): enough
/// for a busy fleet, bounded so a connection flood cannot spawn unbounded
/// threads.
const MAX_CONCURRENT: usize = 32;
/// Completed-lease records are kept this long for diagnostics, then swept.
const DONE_TTL: Duration = Duration::from_secs(600);
/// ... and never more than this many, whatever their age.
const DONE_CAP: usize = 1024;
/// Per-connection socket read timeout: a worker that stops mid-request
/// must not pin a handler (and its semaphore permit) forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);
/// Accept-loop poll granularity while waiting for connections/completion.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------------
// Job store: pending/active/done leases with TTL-based re-issue.
// ---------------------------------------------------------------------------

struct ActiveLease {
    id: u64,
    work: Vec<TrialRange>,
    issued: Instant,
}

/// The lease lifecycle: `pending` → (claim) → `active` → (result) → `done`,
/// with expiry sweeping `active` back to the front of `pending` under a
/// fresh id. All time-dependent methods take an explicit `now` so tests
/// drive the clock deterministically. Bounded on every axis: `pending` and
/// `active` never exceed the initial lease count, `done` is capped and
/// TTL-swept.
struct JobStore {
    pending: VecDeque<(u64, Vec<TrialRange>)>,
    active: Vec<ActiveLease>,
    done: VecDeque<(u64, Instant)>,
    next_id: u64,
    ttl: Duration,
    /// Leases that expired and were re-issued — stragglers, for the log.
    pub reissued: usize,
}

impl JobStore {
    fn new(leases: Vec<Vec<TrialRange>>, ttl: Duration) -> JobStore {
        let pending: VecDeque<_> = leases
            .into_iter()
            .enumerate()
            .map(|(i, work)| (i as u64, work))
            .collect();
        JobStore {
            next_id: pending.len() as u64,
            pending,
            active: Vec::new(),
            done: VecDeque::new(),
            ttl,
            reissued: 0,
        }
    }

    /// Expires overdue actives back to the queue head (stragglers' work is
    /// the oldest — it should go out again first) and sweeps `done`.
    fn sweep(&mut self, now: Instant) {
        let mut i = 0;
        while i < self.active.len() {
            if now.duration_since(self.active[i].issued) >= self.ttl {
                let lease = self.active.swap_remove(i);
                let id = self.next_id;
                self.next_id += 1;
                self.reissued += 1;
                self.pending.push_front((id, lease.work));
            } else {
                i += 1;
            }
        }
        while self.done.len() > DONE_CAP {
            self.done.pop_front();
        }
        while let Some(&(_, at)) = self.done.front() {
            if now.duration_since(at) >= DONE_TTL {
                self.done.pop_front();
            } else {
                break;
            }
        }
    }

    /// Claims the next pending lease, if any.
    fn claim(&mut self, now: Instant) -> Option<(u64, Vec<TrialRange>)> {
        self.sweep(now);
        let (id, work) = self.pending.pop_front()?;
        self.active.push(ActiveLease {
            id,
            work: work.clone(),
            issued: now,
        });
        Some((id, work))
    }

    /// Marks a lease's results delivered. `false` means the lease was no
    /// longer active — it expired and was re-issued, or the id is unknown;
    /// the results were folded either way (dedup makes that safe), this is
    /// bookkeeping only.
    fn complete(&mut self, id: u64, now: Instant) -> bool {
        self.sweep(now);
        match self.active.iter().position(|l| l.id == id) {
            Some(i) => {
                self.active.swap_remove(i);
                self.done.push_back((id, now));
                true
            }
            None => false,
        }
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }
}

// ---------------------------------------------------------------------------
// Semaphore: the hand-rolled concurrency cap (no external deps).
// ---------------------------------------------------------------------------

struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.freed.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.freed.notify_one();
    }
}

// ---------------------------------------------------------------------------
// Fold state: the coordinator's master accumulator.
// ---------------------------------------------------------------------------

struct Fold {
    experiment: String,
    full: bool,
    grid: GridMeta,
    /// Master cells, kept in canonical grid order (cells nothing has
    /// touched yet are absent, like any partial artifact).
    cells: Vec<StatsCell>,
    store: JobStore,
    trials_total: usize,
    accepted_posts: usize,
    duplicate_trials: usize,
    complete: bool,
}

impl Fold {
    /// Trials fully recorded (every metric buffer holds them).
    fn recorded(&self) -> usize {
        self.cells
            .iter()
            .map(|c| {
                c.acc
                    .raw_samples()
                    .iter()
                    .map(|s| s.filled())
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Validates and folds one posted artifact; returns the merge tally in
    /// *trial* units (a trial spans all metrics atomically, enforced by the
    /// torn-trial check before any fold).
    fn fold_post(&mut self, posted: ShardState) -> Result<MergeStats, String> {
        if posted.experiment != self.experiment {
            return Err(format!(
                "artifact is for experiment {:?}, this server runs {:?}",
                posted.experiment, self.experiment
            ));
        }
        if posted.full != self.full || posted.grid != self.grid {
            return Err(
                "artifact grid does not match this server's sweep (different \
                 build or options?)"
                    .to_string(),
            );
        }
        // A trial recorded for only some metrics cannot have come from
        // this pipeline; folding it would corrupt the master state.
        checkpoint::missing_work(&posted)?;
        let metrics = self.grid.metrics.len().max(1);
        let mut slots = MergeStats::default();
        for cell in posted.into_cells() {
            match self
                .cells
                .iter_mut()
                .find(|c| c.algorithm == cell.algorithm && c.n == cell.n)
            {
                Some(mine) => slots.absorb(
                    mine.acc
                        .try_merge_dedup(cell.acc)
                        .map_err(|e| format!("cell ({}, n={}): {e}", cell.algorithm, cell.n))?,
                ),
                None => {
                    slots.fresh += cell
                        .acc
                        .raw_samples()
                        .iter()
                        .map(|s| s.filled())
                        .sum::<usize>();
                    self.cells.push(cell);
                }
            }
        }
        let grid = self.grid.clone();
        self.cells
            .sort_by_key(|c| canonical_position(&grid, c.algorithm, c.n));
        Ok(MergeStats {
            fresh: slots.fresh / metrics,
            duplicates: slots.duplicates / metrics,
        })
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

struct Shared {
    fold: Mutex<Fold>,
    writer: CheckpointWriter,
    metrics_path: PathBuf,
    handlers: Semaphore,
    started: Instant,
}

/// A bound-but-not-yet-running coordinator. [`Server::start`] binds the
/// socket and loads/cuts the work; [`Server::run`] serves until the sweep
/// completes (plus the linger window) and writes the final artifacts.
/// Split so tests can read [`Server::local_addr`] (port 0 = ephemeral)
/// before the accept loop takes the thread.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    entry: ShardableEntry,
    out_dir: PathBuf,
    json: bool,
    linger: Duration,
}

impl Server {
    /// Binds the coordinator: resolves the experiment, rebuilds its grid,
    /// resumes from the newest matching checkpoint under `--out` if one
    /// exists, cuts the remaining work into cost-weighted leases, and
    /// binds the listen socket. No trials run here — workers do that.
    pub fn start(opts: &Options) -> Result<Server, String> {
        let name = &opts.inputs[0];
        let entry = find_shardable(name).ok_or_else(|| {
            format!(
                "{name:?} is not shardable (shardable experiments: {})",
                shardable_names().join(", ")
            )
        })?;
        let out_dir = opts.out_dir.clone().expect("validated at parse time");
        let grid = (entry.grid)(opts);
        let trials_total = grid.cell_count() * grid.trials as usize;

        // Resume: fold the newest surviving checkpoint in as the starting
        // master state, if it matches this sweep.
        let mut cells: Vec<StatsCell> = Vec::new();
        if out_dir.join(checkpoint::CHECKPOINT_DIR).is_dir() {
            match checkpoint::load_latest(&out_dir) {
                Ok(loaded) => {
                    for warning in &loaded.warnings {
                        eprintln!("warning: {warning}");
                    }
                    if loaded.state.experiment == *name
                        && loaded.state.full == opts.full
                        && loaded.state.grid == grid
                    {
                        println!(
                            "[serve] resuming from checkpoint seq {} ({} trials recorded)",
                            loaded.seq,
                            checkpoint_recorded(&loaded.state)
                        );
                        cells = loaded.state.into_cells();
                    } else {
                        eprintln!(
                            "warning: checkpoint in {} is for a different sweep — starting fresh",
                            out_dir.display()
                        );
                    }
                }
                Err(e) => eprintln!("warning: cannot resume from {}: {e}", out_dir.display()),
            }
        }

        // Cut the *missing* work (everything, on a fresh start) into
        // cost-weighted per-trial leases.
        let master = ShardState::from_cells(name, opts.full, (0, 1), &grid, &cells);
        let plan = checkpoint::missing_work(&master)?;
        let leases = TrialRange::partition(
            &plan,
            &grid.cell_trial_costs(),
            opts.leases.unwrap_or(DEFAULT_LEASES),
        );
        let remaining: usize = plan.iter().map(|(_, t)| t.len()).sum();
        let store = JobStore::new(
            leases,
            Duration::from_secs(opts.lease_secs.unwrap_or(DEFAULT_LEASE_SECS)),
        );

        let writer = CheckpointWriter::new(&out_dir, name, opts.full, grid.clone())?;
        let port = opts.port.unwrap_or(DEFAULT_PORT);
        let listener = TcpListener::bind(("0.0.0.0", port))
            .map_err(|e| format!("cannot bind port {port}: {e}"))?;
        println!(
            "[serve] {name} on {}: {} leases over {remaining} of {trials_total} trials",
            listener.local_addr().map_err(|e| e.to_string())?,
            store.pending.len(),
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                fold: Mutex::new(Fold {
                    experiment: name.clone(),
                    full: opts.full,
                    grid,
                    cells,
                    store,
                    trials_total,
                    accepted_posts: 0,
                    duplicate_trials: 0,
                    complete: remaining == 0,
                }),
                writer,
                metrics_path: out_dir.join(checkpoint::METRICS_FILE),
                handlers: Semaphore::new(MAX_CONCURRENT),
                started: Instant::now(),
            }),
            entry,
            out_dir,
            json: opts.json,
            linger: Duration::from_secs(opts.linger_secs.unwrap_or(DEFAULT_LINGER_SECS)),
        })
    }

    /// The bound address — the `HOST:PORT` workers `--connect` to.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Serves until the sweep completes, then writes the experiment's
    /// reports into `--out` (byte-identical to a single-process run),
    /// answers `done` for the linger window so slow workers learn the run
    /// is over, and returns.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll listener: {e}"))?;
        let mut finalized_at: Option<Instant> = None;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared.handlers.acquire();
                    std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        shared.handlers.release();
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
            if finalized_at.is_none() && self.shared.fold.lock().expect("fold poisoned").complete {
                self.finalize()?;
                finalized_at = Some(Instant::now());
            }
            if let Some(at) = finalized_at {
                if at.elapsed() >= self.linger {
                    return Ok(());
                }
            }
        }
    }

    /// Convenience for the CLI: `start` + `run` in one call.
    pub fn serve(opts: &Options) -> Result<(), String> {
        Server::start(opts)?.run()
    }

    /// The sweep is complete: flush the final checkpoint and write the
    /// figure's reports, exactly as `repro merge` would.
    fn finalize(&self) -> Result<(), String> {
        let fold = self.shared.fold.lock().expect("fold poisoned");
        let state =
            ShardState::from_cells(&fold.experiment, fold.full, (0, 1), &fold.grid, &fold.cells);
        if !state.is_complete() {
            return Err("finalize called on an incomplete fold".to_string());
        }
        let report_opts = Options {
            full: fold.full,
            trials: Some(fold.grid.trials),
            ..Options::default()
        };
        let report = (self.entry.report)(&report_opts, &fold.cells);
        println!(
            "[serve] {} complete: {} posts accepted, {} duplicate trials discarded, \
             {} leases re-issued",
            fold.experiment, fold.accepted_posts, fold.duplicate_trials, fold.store.reissued
        );
        drop(fold);
        report.print();
        write_report_artifacts(&report, &self.out_dir, self.json)?;
        println!(
            "[serve] {} written to {}",
            if self.json { "CSVs + JSON" } else { "CSVs" },
            self.out_dir.display()
        );
        Ok(())
    }
}

/// A cell's index in canonical grid order (algorithm-major, n-minor).
fn canonical_position(grid: &GridMeta, alg: AlgorithmKind, n: u32) -> usize {
    let a = grid
        .algorithms
        .iter()
        .position(|&x| x == alg)
        .expect("cell algorithm validated against the grid");
    let i = grid
        .ns
        .iter()
        .position(|&x| x == n)
        .expect("cell n validated against the grid");
    a * grid.ns.len() + i
}

fn checkpoint_recorded(state: &ShardState) -> usize {
    state
        .cells
        .iter()
        .map(|c| {
            c.samples
                .iter()
                .map(|s| s.iter().filter(|v| !v.is_nan()).count())
                .min()
                .unwrap_or(0)
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Request handling.
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: String,
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let response = match read_request(&mut stream) {
        Ok(req) => route(&req, shared),
        Err(e) => (
            400,
            format!("{{\"status\":\"error\",\"error\":{}}}", json_str(&e)),
        ),
    };
    let (status, body) = response;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Error",
    };
    let _ = stream.write_all(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", crate::jsonout::escape(s))
}

fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".to_string());
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("cannot read header: {e}"))?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("cannot read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

fn route(req: &Request, shared: &Shared) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/lease") => lease_response(shared),
        ("GET", "/metrics") => metrics_response(shared),
        ("POST", path) if path.starts_with("/result/") => {
            match path["/result/".len()..].parse::<u64>() {
                Ok(id) => result_response(shared, id, &req.body),
                Err(_) => (400, error_body("bad lease id in path")),
            }
        }
        _ => (
            404,
            error_body(&format!("no route {} {}", req.method, req.path)),
        ),
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"status\":\"error\",\"error\":{}}}", json_str(message))
}

fn lease_response(shared: &Shared) -> (u16, String) {
    let mut fold = shared.fold.lock().expect("fold poisoned");
    if fold.complete {
        return (200, "{\"status\":\"done\"}".to_string());
    }
    match fold.store.claim(Instant::now()) {
        None => (
            200,
            format!("{{\"status\":\"wait\",\"retry_ms\":{WAIT_RETRY_MS}}}"),
        ),
        Some((id, work)) => {
            let ranges: Vec<String> = work
                .iter()
                .map(|r| format!("[{},{},{}]", r.cell, r.lo, r.hi))
                .collect();
            (
                200,
                format!(
                    "{{\"status\":\"lease\",\"id\":{id},\"experiment\":{},\"full\":{},\
                     \"trials\":{},\"work\":[{}]}}",
                    json_str(&fold.experiment),
                    fold.full,
                    fold.grid.trials,
                    ranges.join(",")
                ),
            )
        }
    }
}

fn metrics_response(shared: &Shared) -> (u16, String) {
    // Re-serve the sidecar bytes verbatim — one source of truth on disk.
    match std::fs::read_to_string(&shared.metrics_path) {
        Ok(text) => (200, text),
        Err(_) => (404, error_body("no metrics yet — no result accepted")),
    }
}

fn result_response(shared: &Shared, id: u64, body: &str) -> (u16, String) {
    // Parse and validate outside the fold lock — `ShardState::parse` is the
    // expensive part, and its grid/duplicate/shape checks (plus jsonin's
    // depth cap) are what stand between untrusted bytes and the master
    // state.
    let posted = match ShardState::parse(body) {
        Ok(state) => state,
        Err(e) => return (400, error_body(&format!("unparseable artifact: {e}"))),
    };
    let mut fold = shared.fold.lock().expect("fold poisoned");
    if fold.complete {
        // A straggler finishing after the sweep completed: its trials are
        // all duplicates by construction. Nothing to fold.
        return (200, "{\"status\":\"done\"}".to_string());
    }
    let stats = match fold.fold_post(posted) {
        Ok(stats) => stats,
        Err(e) => return (409, error_body(&e)),
    };
    fold.store.complete(id, Instant::now());
    fold.accepted_posts += 1;
    fold.duplicate_trials += stats.duplicates;
    let recorded = fold.recorded();
    let remaining = fold.trials_total - recorded;
    fold.complete = remaining == 0;
    // Checkpoint every accepted result: the fold is the only copy of the
    // fleet's work, and the final (finished) snapshot doubles as the clean-
    // shutdown flush. Written *under* the fold lock — the writer stages
    // fixed temp-file names, so concurrent snapshots would race each
    // other's renames, and serializing here also keeps checkpoint seq
    // order identical to fold order.
    let snapshot = SweepSnapshot {
        cells: fold.cells.clone(),
        completed_trials: recorded,
        total_trials: fold.trials_total,
        elapsed: shared.started.elapsed(),
        workers: fold.store.active_count().max(1),
        finished: fold.complete,
    };
    shared.writer.snapshot(snapshot);
    drop(fold);
    (
        200,
        format!(
            "{{\"status\":\"ok\",\"fresh\":{},\"duplicate\":{},\"remaining\":{remaining}}}",
            stats.fresh, stats.duplicates
        ),
    )
}

// ---------------------------------------------------------------------------
// Minimal HTTP client — shared by `repro work` and the tests.
// ---------------------------------------------------------------------------

/// One HTTP/1.1 exchange with the coordinator: sends `method path` with the
/// optional body, returns `(status, body)`. `Connection: close` both ways —
/// every exchange is its own TCP connection, which keeps both ends trivial
/// (no keep-alive state machine) at a per-request cost that is noise next
/// to running even one trial.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let body = body.unwrap_or("");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MetricStats;
    use crate::figures::sharding::find_shardable;
    use crate::figures::shared::SweepHooks;

    fn lease(cell: usize, lo: u32, hi: u32) -> Vec<TrialRange> {
        vec![TrialRange { cell, lo, hi }]
    }

    #[test]
    fn job_store_walks_the_lease_lifecycle_with_expiry_and_reissue() {
        let t0 = Instant::now();
        let ttl = Duration::from_secs(10);
        let mut store = JobStore::new(vec![lease(0, 0, 2), lease(1, 0, 2)], ttl);

        // Claim both (B a little later); the store is drained.
        let (id_a, work_a) = store.claim(t0).unwrap();
        let (id_b, _) = store.claim(t0 + Duration::from_secs(5)).unwrap();
        assert_ne!(id_a, id_b);
        assert!(
            store.claim(t0 + Duration::from_secs(5)).is_none(),
            "nothing pending"
        );
        assert_eq!(store.active_count(), 2);

        // Only lease A has aged past the TTL: the next claim re-issues its
        // work under a fresh id while B stays active.
        let late = t0 + ttl + Duration::from_secs(1);
        let (id_a2, work_a2) = store.claim(late).unwrap();
        assert!(id_a2 > id_b, "re-issue must mint a fresh id");
        assert_eq!(store.reissued, 1, "only the straggler expired");
        assert_eq!(work_a2, work_a, "the straggler's own work is re-served");

        // The original straggler's id is no longer active: completing it
        // reports false (results still folded by the caller — just no
        // bookkeeping entry), while the live id completes normally.
        assert!(!store.complete(id_a, late));
        assert!(store.complete(id_a2, late));
        assert_eq!(store.done.len(), 1);

        // Done records are TTL-swept.
        store.sweep(late + DONE_TTL + Duration::from_secs(1));
        assert!(store.done.is_empty());
    }

    #[test]
    fn fold_post_rejects_foreign_grids_and_conflicting_duplicates() {
        let entry = find_shardable("fig5").unwrap();
        let opts = Options {
            trials: Some(2),
            ..Options::default()
        };
        let grid = (entry.grid)(&opts);
        let mut fold = Fold {
            experiment: "fig5".into(),
            full: false,
            grid: grid.clone(),
            cells: Vec::new(),
            store: JobStore::new(Vec::new(), Duration::from_secs(1)),
            trials_total: grid.cell_count() * grid.trials as usize,
            accepted_posts: 0,
            duplicate_trials: 0,
            complete: false,
        };

        // Run trials {0} of every cell, twice over — the straggler +
        // re-issue shape. First POST is all fresh, identical second POST is
        // all duplicates, and the master state is unchanged by the replay.
        let plan: Vec<(usize, Vec<u32>)> =
            (0..grid.cell_count()).map(|c| (c, vec![0u32])).collect();
        let hooks = SweepHooks {
            missing: Some(&plan),
            ..SweepHooks::default()
        };
        let cells = (entry.cells)(&opts, &hooks);
        let posted = ShardState::from_cells("fig5", false, (0, 1), &grid, &cells);
        let replay = ShardState::parse(&posted.to_json()).unwrap();

        let first = fold.fold_post(posted).unwrap();
        assert_eq!(first.fresh, grid.cell_count());
        assert_eq!(first.duplicates, 0);
        let before = ShardState::from_cells("fig5", false, (0, 1), &grid, &fold.cells).to_json();
        let second = fold.fold_post(replay).unwrap();
        assert_eq!(second.fresh, 0);
        assert_eq!(second.duplicates, grid.cell_count());
        let after = ShardState::from_cells("fig5", false, (0, 1), &grid, &fold.cells).to_json();
        assert_eq!(before, after, "a replay must not change the master state");

        // A conflicting duplicate (same slot, different bits) is rejected.
        let mut tampered = fold.cells.clone();
        let mut raw: Vec<Vec<f64>> = tampered[0]
            .acc
            .raw_samples()
            .iter()
            .map(|s| s.raw().to_vec())
            .collect();
        for buf in &mut raw {
            if !buf[0].is_nan() {
                buf[0] += 1.0;
            }
        }
        tampered[0].acc = MetricStats::from_parts(
            grid.metrics.clone(),
            raw.into_iter()
                .map(contention_stats::stream::StreamingSample::from_raw)
                .collect(),
        );
        let conflicting = ShardState::from_cells("fig5", false, (0, 1), &grid, &tampered[..1]);
        let err = fold.fold_post(conflicting).unwrap_err();
        assert!(err.contains("conflicting"), "{err}");

        // A wrong-experiment artifact never folds.
        let foreign_entry = find_shardable("fig3").unwrap();
        let foreign_grid = (foreign_entry.grid)(&opts);
        let foreign = ShardState::from_cells("fig3", false, (0, 1), &foreign_grid, &[]);
        let err = fold
            .fold_post(ShardState::parse(&foreign.to_json()).unwrap())
            .unwrap_err();
        assert!(err.contains("fig3"), "{err}");
    }
}
