//! JSON emission for experiment results (`repro --json`).
//!
//! A minimal, dependency-free writer for the two artifact shapes the
//! harness produces: aggregate [`Series`] (one object per figure, points
//! carrying median/CI/outlier counts) and free-form row tables. Numbers are
//! printed with Rust's shortest round-trip `f64` formatting, so parsing the
//! JSON back recovers the exact bits — which is what lets the golden-file
//! regression fixtures under `tests/golden/` pin results byte-for-byte.
//! (The vendored serde facade stays a no-op; this writer is the real
//! serialization path until upstream serde is available.)

use crate::aggregate::Series;
use crate::fsutil;
use std::path::{Path, PathBuf};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number: shortest round-trip form; non-finite values (which no
/// aggregate should produce) degrade to `null` rather than invalid JSON.
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders one figure's series as a JSON document.
pub fn series_json(name: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", escape(name)));
    out.push_str(&format!("  \"x_label\": \"{}\",\n", escape(x_label)));
    out.push_str("  \"series\": [\n");
    for (si, s) in series.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", escape(&s.name)));
        out.push_str("      \"points\": [\n");
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"x\": {}, \"median\": {}, \"ci_low\": {}, \"ci_high\": {}, \
                 \"kept\": {}, \"dropped\": {}}}{}\n",
                num(p.x),
                num(p.median),
                num(p.ci_low),
                num(p.ci_high),
                p.kept,
                p.dropped,
                if pi + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if si + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a free-form row table (first row is the header) as JSON.
pub fn rows_json(name: &str, rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", escape(name)));
    out.push_str("  \"rows\": [\n");
    for (ri, row) in rows.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|c| format!("\"{}\"", escape(c))).collect();
        out.push_str(&format!(
            "    [{}]{}\n",
            cells.join(", "),
            if ri + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes one figure's series to `<dir>/<name>.json`; returns the path.
/// I/O failures come back as `Err`.
pub fn write_series(
    dir: &Path,
    name: &str,
    x_label: &str,
    series: &[Series],
) -> Result<PathBuf, String> {
    write(dir, name, series_json(name, x_label, series))
}

/// Writes a row table to `<dir>/<name>.json`; returns the path.
pub fn write_rows(dir: &Path, name: &str, rows: &[Vec<String>]) -> Result<PathBuf, String> {
    write(dir, name, rows_json(name, rows))
}

fn write(dir: &Path, name: &str, text: String) -> Result<PathBuf, String> {
    fsutil::ensure_dir(dir)?;
    let path = dir.join(format!("{name}.json"));
    fsutil::write_atomic(&path, text.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SeriesPoint;
    use std::fs;

    fn sample_series() -> Vec<Series> {
        vec![
            Series {
                name: "BEB".into(),
                points: vec![SeriesPoint {
                    x: 10.0,
                    median: 5.25,
                    ci_low: 4.0,
                    ci_high: 6.5,
                    kept: 3,
                    dropped: 1,
                }],
            },
            Series {
                name: "STB".into(),
                points: vec![SeriesPoint {
                    x: 10.0,
                    median: 2.0,
                    ci_low: 2.0,
                    ci_high: 2.0,
                    kept: 4,
                    dropped: 0,
                }],
            },
        ]
    }

    #[test]
    fn series_json_shape() {
        let text = series_json("fig_test", "n", &sample_series());
        assert!(text.starts_with("{\n  \"name\": \"fig_test\""));
        assert!(text.contains("\"x_label\": \"n\""));
        assert!(text.contains("{\"x\": 10, \"median\": 5.25, \"ci_low\": 4, \"ci_high\": 6.5, \"kept\": 3, \"dropped\": 1}"));
        // Two series objects, comma-separated.
        assert_eq!(text.matches("\"points\"").count(), 2);
        assert!(text.ends_with("]\n}\n"));
    }

    #[test]
    fn rows_json_shape() {
        let text = rows_json(
            "t",
            &[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]],
        );
        assert!(text.contains("[\"a\", \"b\"],"));
        assert!(text.contains("[\"1\", \"2\"]\n"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let text = rows_json("quo\"te", &[vec!["x\ty".into()]]);
        assert!(text.contains("quo\\\"te"));
        assert!(text.contains("x\\ty"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(10.0), "10");
    }

    #[test]
    fn files_round_trip() {
        let dir = std::env::temp_dir().join(format!("jsonout-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = write_series(&dir, "fig_test", "n", &sample_series()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, series_json("fig_test", "n", &sample_series()));
        let path = write_rows(&dir, "rows_test", &[vec!["a".into()]]).unwrap();
        assert!(fs::read_to_string(&path).unwrap().contains("[\"a\"]"));
        fs::remove_dir_all(dir).unwrap();
    }
}
