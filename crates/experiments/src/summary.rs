//! Scalar per-trial metrics — re-exported from the sweep engine.
//!
//! [`TrialSummary`] and [`Metric`] moved into `contention-sim` when the
//! generic engine landed, so that simulator crates can convert their raw
//! outputs without depending on this harness crate. The harness keeps this
//! module as its canonical import path.

pub use contention_sim::summary::{Metric, TrialSummary};
