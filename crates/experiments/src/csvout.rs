//! CSV emission for external plotting.

use crate::aggregate::Series;
use crate::fsutil;
use std::path::{Path, PathBuf};

/// Writes one figure's series to `<dir>/<name>.csv` with columns
/// `x, series, median, ci_low, ci_high, kept, dropped`.
/// Returns the written path; I/O failures come back as `Err`.
pub fn write_series(
    dir: &Path,
    name: &str,
    x_label: &str,
    series: &[Series],
) -> Result<PathBuf, String> {
    fsutil::ensure_dir(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&format!(
        "{x_label},series,median,ci_low,ci_high,kept,dropped\n"
    ));
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                p.x, s.name, p.median, p.ci_low, p.ci_high, p.kept, p.dropped
            ));
        }
    }
    fsutil::write_atomic(&path, out.as_bytes())?;
    Ok(path)
}

/// Writes free-form rows (first row is the header).
pub fn write_rows(dir: &Path, name: &str, rows: &[Vec<String>]) -> Result<PathBuf, String> {
    fsutil::ensure_dir(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    for row in rows {
        for cell in row {
            assert!(
                !cell.contains(',') && !cell.contains('\n'),
                "CSV cells must not contain separators: {cell:?}"
            );
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fsutil::write_atomic(&path, out.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SeriesPoint;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csvout-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn series_round_trip() {
        let dir = tmp("series");
        let series = vec![Series {
            name: "BEB".into(),
            points: vec![SeriesPoint {
                x: 10.0,
                median: 5.0,
                ci_low: 4.0,
                ci_high: 6.0,
                kept: 3,
                dropped: 1,
            }],
        }];
        let path = write_series(&dir, "fig_test", "n", &series).unwrap();
        let text = fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().starts_with("10,BEB,5,4,6,3,1"));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rows_round_trip() {
        let dir = tmp("rows");
        let path = write_rows(
            &dir,
            "rows_test",
            &[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]],
        )
        .unwrap();
        assert_eq!(fs::read_to_string(path).unwrap(), "a,b\n1,2\n");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "separators")]
    fn comma_in_cell_panics() {
        let dir = tmp("bad");
        let _ = write_rows(&dir, "bad", &[vec!["a,b".into()]]);
    }
}
