//! CSV emission for external plotting.

use crate::aggregate::Series;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes one figure's series to `<dir>/<name>.csv` with columns
/// `x, series, median, ci_low, ci_high, kept, dropped`.
/// Returns the written path.
pub fn write_series(dir: &Path, name: &str, x_label: &str, series: &[Series]) -> PathBuf {
    fs::create_dir_all(dir).expect("create output directory");
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&format!(
        "{x_label},series,median,ci_low,ci_high,kept,dropped\n"
    ));
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                p.x, s.name, p.median, p.ci_low, p.ci_high, p.kept, p.dropped
            ));
        }
    }
    let mut f = fs::File::create(&path).expect("create CSV file");
    f.write_all(out.as_bytes()).expect("write CSV");
    path
}

/// Writes free-form rows (first row is the header).
pub fn write_rows(dir: &Path, name: &str, rows: &[Vec<String>]) -> PathBuf {
    fs::create_dir_all(dir).expect("create output directory");
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    for row in rows {
        for cell in row {
            assert!(
                !cell.contains(',') && !cell.contains('\n'),
                "CSV cells must not contain separators: {cell:?}"
            );
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let mut f = fs::File::create(&path).expect("create CSV file");
    f.write_all(out.as_bytes()).expect("write CSV");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SeriesPoint;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csvout-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn series_round_trip() {
        let dir = tmp("series");
        let series = vec![Series {
            name: "BEB".into(),
            points: vec![SeriesPoint {
                x: 10.0,
                median: 5.0,
                ci_low: 4.0,
                ci_high: 6.0,
                kept: 3,
                dropped: 1,
            }],
        }];
        let path = write_series(&dir, "fig_test", "n", &series);
        let text = fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().starts_with("10,BEB,5,4,6,3,1"));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rows_round_trip() {
        let dir = tmp("rows");
        let path = write_rows(
            &dir,
            "rows_test",
            &[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]],
        );
        assert_eq!(fs::read_to_string(path).unwrap(), "a,b\n1,2\n");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "separators")]
    fn comma_in_cell_panics() {
        let dir = tmp("bad");
        write_rows(&dir, "bad", &[vec!["a,b".into()]]);
    }
}
