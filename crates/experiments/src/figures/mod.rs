//! One module per table/figure of the paper's evaluation.
//!
//! Every experiment exposes `run(&Options) -> Report`; the `repro` binary
//! maps subcommands onto these functions (see [`registry`]).

pub mod ablations;
pub mod abstract_cw;
pub mod ack_timeouts;
pub mod best_of_k;
pub mod cw_slots;
pub mod decomposition;
pub mod dynamic_traffic;
pub mod min_packet;
pub mod model_check;
pub mod noisy;
pub mod payload_regression;
pub mod rts_cts;
pub mod saturation;
pub mod scale;
pub mod sharding;
pub mod shared;
pub mod tables;
pub mod total_time;
pub mod trace_fig13;

use crate::aggregate::Series;
use crate::options::Options;
use crate::{csvout, jsonout};
use std::path::Path;

/// A CSV artifact a figure wants written alongside its text output.
#[derive(Debug, Clone)]
pub enum CsvBlock {
    Series {
        name: String,
        x_label: String,
        series: Vec<Series>,
    },
    Rows {
        name: String,
        rows: Vec<Vec<String>>,
    },
}

/// The result of regenerating one table/figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// e.g. "Figure 7 — total time, 64 B payload".
    pub title: String,
    /// Rendered text: tables, percentage lines, commentary.
    pub body: String,
    /// CSV artifacts (written only when `--out` is given).
    pub csv: Vec<CsvBlock>,
}

impl Report {
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            body: String::new(),
            csv: Vec::new(),
        }
    }

    pub fn line(&mut self, text: impl AsRef<str>) {
        self.body.push_str(text.as_ref());
        self.body.push('\n');
    }

    pub fn series_csv(&mut self, name: &str, x_label: &str, series: &[Series]) {
        self.csv.push(CsvBlock::Series {
            name: name.to_string(),
            x_label: x_label.to_string(),
            series: series.to_vec(),
        });
    }

    pub fn rows_csv(&mut self, name: &str, rows: Vec<Vec<String>>) {
        self.csv.push(CsvBlock::Rows {
            name: name.to_string(),
            rows,
        });
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("=== {} ===", self.title);
        println!("{}", self.body);
    }

    /// Writes all CSV artifacts into `dir`; an I/O failure comes back as
    /// `Err` (the CLI surfaces it through its `error:` path).
    pub fn write_csv(&self, dir: &Path) -> Result<(), String> {
        for block in &self.csv {
            match block {
                CsvBlock::Series {
                    name,
                    x_label,
                    series,
                } => {
                    csvout::write_series(dir, name, x_label, series)?;
                }
                CsvBlock::Rows { name, rows } => {
                    csvout::write_rows(dir, name, rows)?;
                }
            }
        }
        Ok(())
    }

    /// Writes the same artifacts as JSON into `dir` (`repro --json`).
    pub fn write_json(&self, dir: &Path) -> Result<(), String> {
        for block in &self.csv {
            match block {
                CsvBlock::Series {
                    name,
                    x_label,
                    series,
                } => {
                    jsonout::write_series(dir, name, x_label, series)?;
                }
                CsvBlock::Rows { name, rows } => {
                    jsonout::write_rows(dir, name, rows)?;
                }
            }
        }
        Ok(())
    }
}

/// `(subcommand, description, runner)` for every experiment.
pub type Entry = (&'static str, &'static str, fn(&Options) -> Report);

/// Everything `repro` can regenerate, in paper order.
pub fn registry() -> Vec<Entry> {
    vec![
        (
            "table1",
            "Table I — 802.11g parameters and derived frame times",
            tables::table1,
        ),
        (
            "table2",
            "Table II — CW-slot guarantees vs measured growth",
            tables::table2,
        ),
        (
            "fig3",
            "Figure 3 — CW slots, MAC sim, 64 B payload",
            cw_slots::fig3,
        ),
        (
            "fig4",
            "Figure 4 — CW slots, MAC sim, 1024 B payload",
            cw_slots::fig4,
        ),
        (
            "fig5",
            "Figure 5 — CW slots, abstract simulator",
            abstract_cw::fig5,
        ),
        (
            "fig6",
            "Figure 6 — CW slots to finish n/2 packets",
            cw_slots::fig6,
        ),
        (
            "fig7",
            "Figure 7 — total time, 64 B payload",
            total_time::fig7,
        ),
        (
            "fig8",
            "Figure 8 — total time, 1024 B payload",
            total_time::fig8,
        ),
        (
            "fig9",
            "Figure 9 — time for n/2 packets, 64 B",
            total_time::fig9,
        ),
        (
            "fig10",
            "Figure 10 — time for n/2 packets, 1024 B",
            total_time::fig10,
        ),
        (
            "fig11",
            "Figure 11 — max ACK timeouts per station",
            ack_timeouts::fig11,
        ),
        (
            "fig12",
            "Figure 12 — time waiting for ACK timeouts",
            ack_timeouts::fig12,
        ),
        (
            "fig13",
            "Figure 13 — execution trace, BEB, 20 stations",
            trace_fig13::fig13,
        ),
        (
            "fig14",
            "Figure 14 — LLB − BEB total time vs packet size",
            payload_regression::fig14,
        ),
        (
            "table3",
            "Table III — collision bounds vs measured growth",
            tables::table3,
        ),
        (
            "fig15",
            "Figure 15 — CW slots at large n (abstract)",
            abstract_cw::fig15,
        ),
        (
            "fig16",
            "Figure 16 — collision ratios vs STB (abstract)",
            abstract_cw::fig16,
        ),
        (
            "fig18",
            "Figure 18 — BEST-OF-k estimates of n",
            best_of_k::fig18,
        ),
        (
            "fig19",
            "Figure 19 — total time, BEST-OF-k vs BEB",
            best_of_k::fig19,
        ),
        (
            "decomp",
            "§III-B — total-time decomposition, BEB n=150",
            decomposition::run,
        ),
        ("rtscts", "§III-B — RTS/CTS check, LLB vs BEB", rts_cts::run),
        (
            "minpkt",
            "§V-B — minimum-size packets (12 B payload)",
            min_packet::run,
        ),
        (
            "model",
            "§IV — T_A = Θ(C·P + W) model checks",
            model_check::run,
        ),
        (
            "ablate-ackto",
            "ablation — ACK-timeout duration sweep (§V-B cliff)",
            ablations::ack_timeout,
        ),
        (
            "ablate-eifs",
            "ablation — 802.11 EIFS rule on/off",
            ablations::eifs,
        ),
        (
            "ablate-trunc",
            "ablation — CWmax truncation (§V-B)",
            ablations::truncation,
        ),
        (
            "ablate-sem",
            "ablation — windowed vs residual-timer semantics",
            ablations::semantics,
        ),
        (
            "ablate-loss",
            "ablation — ACK-loss failure injection",
            ablations::ack_loss,
        ),
        (
            "ablate-poly",
            "ablation — polynomial backoff baselines",
            ablations::polynomial,
        ),
        (
            "dynamic",
            "§VIII extension — long-lived bursty traffic",
            dynamic_traffic::run,
        ),
        (
            "saturation",
            "saturation phase diagram — offered-load sweep on 802.11g costs",
            saturation::run,
        ),
        (
            "soften",
            "arXiv:2408.11275 extension — softened collisions / noisy channel",
            noisy::run,
        ),
        (
            "scale",
            "§V-A at scale — streaming sweep to n = 10⁵ (10⁶ with --full)",
            scale::run,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = registry().iter().map(|(n, _, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("t");
        r.line("a");
        r.line("b");
        assert_eq!(r.body, "a\nb\n");
    }
}
