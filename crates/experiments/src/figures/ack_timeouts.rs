//! Figures 11 and 12 — per-station ACK-timeout diagnostics (64 B payload).
//!
//! These figures are the paper's "important hint" (§III-B): the newer
//! algorithms incur substantially more ACK timeouts — i.e. collisions — and
//! each one forces a costly retransmission.

use crate::aggregate::StatsCell;
use crate::figures::shared::{
    mac_grid, mac_stats_range, standard_mac_figure_from_cells, SweepHooks,
};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;

pub fn fig11_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::MaxAckTimeouts])
}

pub fn fig11_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 64, &[Metric::MaxAckTimeouts], hooks)
}

pub fn fig11_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 11 — max ACK timeouts per station vs n (MAC sim, 64 B payload)",
        "fig11_max_ack_timeouts_64",
        Metric::MaxAckTimeouts,
        cells,
        "BEB ≈ 9 at n=150; STB worst despite its O(n) collision bound (§V-A(ii))",
    )
}

/// Figure 11: maximum number of ACK timeouts suffered by any station.
pub fn fig11(opts: &Options) -> Report {
    fig11_report(opts, &fig11_cells(opts, &SweepHooks::none()))
}

pub fn fig12_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::MaxAckTimeoutTimeUs])
}

pub fn fig12_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 64, &[Metric::MaxAckTimeoutTimeUs], hooks)
}

pub fn fig12_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 12 — max time waiting for ACK timeouts vs n (MAC sim, 64 B payload)",
        "fig12_max_ack_timeout_time_64",
        Metric::MaxAckTimeoutTimeUs,
        cells,
        "order-of-magnitude below transmission time; BEB ≈ 1,100 µs at n=150",
    )
}

/// Figure 12: ACK-timeout waiting time of the station from Figure 11.
pub fn fig12(opts: &Options) -> Report {
    fig12_report(opts, &fig12_cells(opts, &SweepHooks::none()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::series_per_algorithm;
    use crate::figures::shared::{mac_stats, paper_algorithms};

    #[test]
    fn beb_has_fewest_max_ack_timeouts() {
        let opts = Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        };
        let cells = mac_stats(&opts, 64, &[Metric::MaxAckTimeouts]);
        let series = series_per_algorithm(&cells, &paper_algorithms(), Metric::MaxAckTimeouts);
        let beb = series[0].final_median();
        for s in &series[1..] {
            assert!(
                s.final_median() >= beb,
                "{} ({}) should suffer at least BEB's max ACK timeouts ({beb})",
                s.name,
                s.final_median()
            );
        }
    }

    #[test]
    fn timeout_time_is_75us_per_timeout() {
        let opts = Options {
            trials: Some(3),
            threads: Some(2),
            ..Options::default()
        };
        let cells = mac_stats(
            &opts,
            64,
            &[Metric::MaxAckTimeouts, Metric::MaxAckTimeoutTimeUs],
        );
        for c in &cells {
            let counts = c.acc.sample(Metric::MaxAckTimeouts);
            let times = c.acc.sample(Metric::MaxAckTimeoutTimeUs);
            for (count, time) in counts.iter().zip(times) {
                assert!(
                    (time - 75.0 * count).abs() < 1e-6,
                    "timeout time must be 75 µs × count"
                );
            }
        }
    }
}
