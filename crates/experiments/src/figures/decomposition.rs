//! §III-B — decomposing where total time goes (Result 3).
//!
//! The paper's back-of-the-envelope: for BEB at n = 150 (64 B payload), the
//! time lost to (I) collided transmissions, (II) ACK timeouts and (III) CW
//! slots lower-bounds total time at ≈22 237 µs, with transmission time
//! dominating ACK timeouts by an order of magnitude. We measure the same
//! three components directly.

use crate::aggregate::MetricStats;
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::Sweep;
use contention_core::algorithm::AlgorithmKind;
use contention_core::model::{CostModel, Decomposition};
use contention_core::params::Phy80211g;
use contention_core::time::Nanos;
use contention_mac::{MacConfig, MacSim};

pub fn run(opts: &Options) -> Report {
    let n = 150;
    let payload = 64;
    let cells = Sweep::<MacSim> {
        experiment: "decomp",
        config: MacConfig::paper(AlgorithmKind::Beb, payload),
        algorithms: vec![AlgorithmKind::Beb],
        ns: vec![n],
        trials: opts.trials_or(8, 30),
        exec: opts.exec(),
    }
    .run_fold(MetricStats::collector(&[
        Metric::Collisions,
        Metric::CwSlots,
        Metric::MaxAckTimeoutTimeUs,
        Metric::TotalTimeUs,
    ]));
    let cell = &cells[0].acc;
    let x = n as f64;
    let collisions = cell.point(x, Metric::Collisions).median;
    let cw_slots = cell.point(x, Metric::CwSlots).median;
    let max_to_time = cell.point(x, Metric::MaxAckTimeoutTimeUs).median;
    let total = cell.point(x, Metric::TotalTimeUs).median;

    let phy = Phy80211g::paper_defaults();
    let measured = Decomposition::from_measurements(
        &phy,
        payload,
        collisions as u64,
        Nanos::from_micros(max_to_time as u64),
        cw_slots as u64,
    );
    let paper = Decomposition::paper_example_beb_n150();

    let mut report = Report::new(format!(
        "§III-B — total-time decomposition, BEB, n = {n}, {payload} B payload"
    ));
    report.line(format!(
        "measured medians: {collisions:.0} disjoint collisions, {cw_slots:.0} CW slots, \
         worst-station ACK-timeout time {max_to_time:.0} µs"
    ));
    report.line("");
    report.line(format!(
        "(I)   collided transmission time : {:>9.0} µs   (paper: 13,163 µs)",
        measured.transmission.as_micros_f64()
    ));
    report.line(format!(
        "(II)  ACK-timeout waiting        : {:>9.0} µs   (paper: ≈1,100 µs)",
        measured.ack_timeouts.as_micros_f64()
    ));
    report.line(format!(
        "(III) CW slots                   : {:>9.0} µs   (paper: 7,974 µs)",
        measured.cw_slots.as_micros_f64()
    ));
    report.line(format!(
        "lower bound                      : {:>9.0} µs   (paper: 22,237 µs)",
        measured.lower_bound().as_micros_f64()
    ));
    report.line(format!(
        "measured total time              : {total:>9.0} µs"
    ));
    report.line("");
    let holds = measured.lower_bound().as_micros_f64() <= total;
    report.line(format!(
        "lower bound ≤ measured total: {}",
        if holds {
            "holds"
        } else {
            "VIOLATED — investigate"
        }
    ));
    report.line(format!(
        "transmission dominates ACK timeouts by {:.1}× (paper: an order of magnitude)",
        measured.transmission.as_micros_f64() / measured.ack_timeouts.as_micros_f64().max(1.0)
    ));
    let model = CostModel::for_payload(&phy, payload);
    let model_large = CostModel::for_payload(&phy, 1024);
    report.line(format!(
        "one disjoint collision costs {:.1} CW slots at 64 B and {:.1} at 1024 B \
         — why optimizing CW slots at the expense of collisions backfires (Result 4)",
        model.collision_cost_in_slots(),
        model_large.collision_cost_in_slots()
    ));
    report.line(format!(
        "paper's worked example total: {} (ours recomputes it from Table I: see \
         contention-core::model tests)",
        paper.lower_bound()
    ));
    report.rows_csv(
        "decomp_beb_n150",
        vec![
            vec!["component".into(), "measured_us".into(), "paper_us".into()],
            vec![
                "transmission".into(),
                format!("{:.0}", measured.transmission.as_micros_f64()),
                "13163".into(),
            ],
            vec![
                "ack_timeouts".into(),
                format!("{:.0}", measured.ack_timeouts.as_micros_f64()),
                "1100".into(),
            ],
            vec![
                "cw_slots".into(),
                format!("{:.0}", measured.cw_slots.as_micros_f64()),
                "7974".into(),
            ],
            vec![
                "lower_bound".into(),
                format!("{:.0}", measured.lower_bound().as_micros_f64()),
                "22237".into(),
            ],
            vec!["measured_total".into(), format!("{total:.0}"), "—".into()],
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_holds_against_measured_total() {
        let opts = Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(
            r.body.contains("lower bound ≤ measured total: holds"),
            "{}",
            r.body
        );
    }
}
