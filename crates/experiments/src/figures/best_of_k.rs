//! Figures 18 and 19 — the BEST-OF-k size-estimation approach (§VI).

use crate::aggregate::{series_per_algorithm, MetricStats, Series, SeriesPoint, StatsCell};
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::Sweep;
use crate::table::render_series;
use contention_core::algorithm::AlgorithmKind;
use contention_core::util::percent_change;
use contention_mac::{MacConfig, MacSim};

fn algorithms() -> Vec<AlgorithmKind> {
    vec![
        AlgorithmKind::Beb,
        AlgorithmKind::BestOfK { k: 3 },
        AlgorithmKind::BestOfK { k: 5 },
    ]
}

/// One shared sweep stream feeds both figures, mirroring the paper's
/// 20-trial runs.
fn sweep(opts: &Options) -> Vec<StatsCell> {
    Sweep::<MacSim> {
        experiment: "fig18-19",
        config: MacConfig::paper(AlgorithmKind::Beb, 64),
        algorithms: algorithms(),
        ns: opts.mac_ns(),
        trials: opts.trials_or(6, 20),
        exec: opts.exec(),
    }
    .run_fold(MetricStats::collector(&[
        Metric::MedianEstimate,
        Metric::TotalTimeUs,
    ]))
}

/// Figure 18: the estimates of n. Best-of-3 is noisier than Best-of-5, and
/// only overestimates occur — which is what keeps fixed backoff
/// collision-frugal.
pub fn fig18(opts: &Options) -> Report {
    let cells = sweep(opts);
    let estimators = &algorithms()[1..];
    let mut series = series_per_algorithm(&cells, estimators, Metric::MedianEstimate);
    // The paper plots the true size alongside the estimates.
    let truth = Series {
        name: "True size".to_string(),
        points: series[0]
            .points
            .iter()
            .map(|p| SeriesPoint {
                x: p.x,
                median: p.x,
                ci_low: p.x,
                ci_high: p.x,
                kept: 0,
                dropped: 0,
            })
            .collect(),
    };
    series.push(truth);

    let mut report = Report::new("Figure 18 — BEST-OF-k estimates of n (MAC sim)");
    report.line(render_series("n", &series));
    // The folklore guarantee bounds the *under*estimate at Ω(n / log n);
    // empirically the paper sees only overestimates. Our estimates are
    // powers of two and stations decide in a correlated way (they all hear
    // the same probe rounds), so a median can land one granularity step
    // below n; quantify both facts instead of a bare pass/fail.
    let mut never_collapses = true;
    let mut over = 0usize;
    let mut total = 0usize;
    let mut worst_ratio = f64::INFINITY;
    for s in &series[..2] {
        for p in &s.points {
            total += 1;
            if p.median >= p.x {
                over += 1;
            }
            if p.median < p.x / 2.0 {
                never_collapses = false;
            }
            worst_ratio = worst_ratio.min(p.median / p.x);
        }
    }
    report.line(format!(
        "underestimate bound (never below n/2): {}; {over}/{total} points overestimate; \
         worst estimate/n ratio {worst_ratio:.2} — i.e. within one power-of-two step \
         (paper: only overestimates occur)",
        if never_collapses { "holds" } else { "VIOLATED" },
    ));
    report.series_csv("fig18_estimates", "n", &series);
    report
}

/// Figure 19: total time of BEB vs Best-of-3 vs Best-of-5 (64 B payload).
/// The paper reports decreases of 26.0 % (k = 3) and 24.7 % (k = 5).
pub fn fig19(opts: &Options) -> Report {
    let cells = sweep(opts);
    let series = series_per_algorithm(&cells, &algorithms(), Metric::TotalTimeUs);
    let mut report = Report::new("Figure 19 — total time: BEB vs BEST-OF-k (64 B payload)");
    report.line(render_series("n", &series));
    let beb = series[0].final_median();
    let max_n = series[0].points.last().expect("points").x;
    for s in &series[1..] {
        report.line(format!(
            "{} vs BEB at n={max_n}: {:+.1}% (paper: −26.0% for k=3, −24.7% for k=5)",
            s.name,
            percent_change(s.final_median(), beb)
        ));
    }
    report.series_csv("fig19_best_of_k_total_time", "n", &series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn estimates_respect_the_underestimate_bound() {
        let r = fig18(&opts());
        assert!(r.body.contains("(never below n/2): holds"), "{}", r.body);
    }

    #[test]
    fn best_of_k_beats_beb_at_150() {
        let r = fig19(&opts());
        for line in r.body.lines().filter(|l| l.contains("vs BEB at n=150")) {
            assert!(line.contains('-'), "Best-of-k should beat BEB: {line}");
        }
    }
}
