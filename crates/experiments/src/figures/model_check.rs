//! §IV / Result 5 — checking the `T_A = Θ(C_A · P + W_A)` model.
//!
//! Two demonstrations:
//!
//! 1. **Analytic**: with `P = Θ(1)` the model preserves the theory ordering
//!    (newer algorithms win); with `P = Ω(lg n)` it predicts the reversal
//!    (LLB and LB fall behind BEB and STB) — Result 5.
//! 2. **Empirical**: plugging the abstract simulator's measured `C_A` and
//!    `W_A` into the model with the real 64 B / 1024 B packet costs predicts
//!    the same winner the MAC simulator measures.

use crate::aggregate::MetricStats;
use crate::figures::shared::paper_algorithms;
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::{folded, Sweep};
use crate::table::render;
use contention_core::algorithm::AlgorithmKind;
use contention_core::bounds::{llb_vs_beb_packet_threshold, total_time_bound};
use contention_core::model::CostModel;
use contention_core::params::Phy80211g;
use contention_core::util::lg;
use contention_mac::{MacConfig, MacSim};
use contention_slotted::windowed::WindowedConfig;
use contention_slotted::WindowedSim;

pub fn run(opts: &Options) -> Report {
    let mut report = Report::new("§IV — the collision-cost model T_A = Θ(C_A·P + W_A)");

    // 1. Analytic ordering flip.
    report.line("predicted total-time ordering from Table III bounds (lower is better):");
    let mut rows = Vec::new();
    for exp in [10u32, 20, 30] {
        let n = 1u64 << exp;
        for (p_label, p) in [("P = 1 slot", 1.0), ("P = lg n slots", lg(n as f64))] {
            let mut scored: Vec<(String, f64)> = AlgorithmKind::PAPER_SET
                .iter()
                .map(|&a| (a.label(), total_time_bound(a, n, p)))
                .collect();
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let order: Vec<String> = scored.iter().map(|(l, _)| l.clone()).collect();
            rows.push(vec![
                format!("2^{exp}"),
                p_label.to_string(),
                order.join(" < "),
            ]);
        }
    }
    report.line(render(
        &["n".into(), "packet time".into(), "predicted order".into()],
        &rows,
    ));
    report.line(format!(
        "LLB overtakes BEB once P = ω(lg n · lg lg lg n / lg lg n); at n = 2^20 that \
         threshold is {:.1} slots — the 1024 B packet is {:.1} slots (Result 5)",
        llb_vs_beb_packet_threshold(1 << 20),
        CostModel::for_payload(&Phy80211g::paper_defaults(), 1024).collision_cost_in_slots()
    ));

    // 2. Empirical: model( measured C, W from the abstract sim ) vs MAC total.
    let n = 150u32;
    let trials = opts.trials_or(8, 30);
    let abs_cells = Sweep::<WindowedSim> {
        experiment: "model-abs",
        config: WindowedConfig::truncated_model(AlgorithmKind::Beb),
        algorithms: paper_algorithms(),
        ns: vec![n],
        trials,
        exec: opts.exec(),
    }
    .run_fold(MetricStats::collector(&[
        Metric::Collisions,
        Metric::CwSlots,
    ]));
    let phy = Phy80211g::paper_defaults();
    for payload in [64u32, 1024] {
        let mac_cells = Sweep::<MacSim> {
            experiment: "model-mac",
            config: MacConfig::paper(AlgorithmKind::Beb, payload),
            algorithms: paper_algorithms(),
            ns: vec![n],
            trials,
            exec: opts.exec(),
        }
        .run_fold(MetricStats::collector(&[Metric::TotalTimeUs]));
        let model = CostModel::for_payload(&phy, payload);
        let mut rows = Vec::new();
        let mut predicted: Vec<(String, f64)> = Vec::new();
        let mut measured: Vec<(String, f64)> = Vec::new();
        for &alg in &AlgorithmKind::PAPER_SET {
            let abs = &folded(&abs_cells, alg, n).acc;
            let c = abs.point(n as f64, Metric::Collisions).median;
            let w = abs.point(n as f64, Metric::CwSlots).median;
            let pred = model.total_time(c as u64, w as u64).as_micros_f64();
            let meas = folded(&mac_cells, alg, n)
                .acc
                .point(n as f64, Metric::TotalTimeUs)
                .median;
            predicted.push((alg.label(), pred));
            measured.push((alg.label(), meas));
            rows.push(vec![
                alg.label(),
                format!("{c:.0}"),
                format!("{w:.0}"),
                format!("{pred:.0}"),
                format!("{meas:.0}"),
            ]);
        }
        report.line(format!("payload {payload} B, n = {n}:"));
        report.line(render(
            &[
                "algorithm".into(),
                "C (abstract)".into(),
                "W (abstract)".into(),
                "model T_A µs".into(),
                "MAC total µs".into(),
            ],
            &rows,
        ));
        let best = |v: &[(String, f64)]| {
            v.iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty")
                .0
                .clone()
        };
        report.line(format!(
            "model predicts {} wins; MAC measures {} winning",
            best(&predicted),
            best(&measured)
        ));
        report.line("");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_report_contains_both_checks() {
        let opts = Options {
            trials: Some(4),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(r.body.contains("predicted order"));
        assert!(r.body.contains("model predicts"));
    }
}
