//! Softened collisions / noisy channel — the arXiv:2408.11275 regime.
//!
//! The paper under reproduction prices collisions at their full 802.11 cost;
//! *Softening the Impact of Collisions in Contention Resolution* asks the
//! complementary question: what if a collision of `k` senders still delivers
//! one frame with probability `p_recover(k)`? This experiment sweeps that
//! recovery probability through the [`NoisySim`] backend (the abstract
//! windowed semantics over a [`ChannelModel`]) and, separately, through the
//! softened 802.11g MAC path — always against the collision-is-fatal
//! baseline at `p = 0`, which is bit-identical to `WindowedSim`
//! (`tests/noisy_channel.rs` enforces the equivalence).
//!
//! All three panels run through the generic sweep engine; the recovery
//! probability and noise rate live in the *config*, so the trial RNG streams
//! are shared across channel settings (common random numbers — the paired
//! comparisons are tighter than independent sampling would give).

use crate::aggregate::Series;
use crate::figures::shared::{paper_algorithms, single_stats};
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::table::{render, render_series};
use contention_core::algorithm::AlgorithmKind;
use contention_core::channel::ChannelModel;
use contention_core::util::percent_change;
use contention_mac::{MacConfig, MacSim};
use contention_slotted::noisy::NoisyConfig;
use contention_slotted::NoisySim;

/// The recovery-probability x-axis shared by the abstract and MAC panels.
const P_GRID: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95];

/// Per-slot erasure rates for the noise panel.
const NOISE_GRID: [f64; 4] = [0.0, 0.1, 0.25, 0.4];

pub fn run(opts: &Options) -> Report {
    let mut report = Report::new(
        "softened collisions — CW slots / total time vs recovery probability (arXiv:2408.11275)",
    );

    // ── Panel 1: abstract windowed semantics, CW slots vs p_recover ──────
    let n = opts.pick(150u32, 2_000);
    let trials = opts.trials_or(8, 30);
    let series: Vec<Series> = paper_algorithms()
        .iter()
        .map(|&alg| Series {
            name: alg.label(),
            points: P_GRID
                .iter()
                .map(|&p| {
                    let stats = single_stats::<NoisySim>(
                        "soften-abs",
                        NoisyConfig::abstract_model(alg, ChannelModel::softened(p)),
                        n,
                        trials,
                        opts.exec(),
                        &[Metric::CwSlots],
                    );
                    stats.point(p, Metric::CwSlots)
                })
                .collect(),
        })
        .collect();
    report.line(format!(
        "abstract windowed semantics, n = {n}: median CW slots vs recovery probability \
         (p = 0 is the fatal-collision baseline ≡ WindowedSim)"
    ));
    report.line(render_series("p_recover", &series));
    for s in &series {
        let fatal = s.at(0.0).median;
        let best = s.final_median();
        report.line(format!(
            "  {}: p=0.95 cuts CW slots {:+.1}% vs fatal",
            s.name,
            percent_change(best, fatal)
        ));
    }
    report.series_csv("soften_abstract_cw_slots", "p_recover", &series);

    // ── Panel 2: noise-only channel — erasures slow the drain ────────────
    let noise_trials = opts.trials_or(8, 30);
    let mut noise_rows = Vec::new();
    let mut noise_series = Series {
        name: "BEB".to_string(),
        points: Vec::new(),
    };
    for &noise in &NOISE_GRID {
        let stats = single_stats::<NoisySim>(
            "soften-noise",
            NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::noisy(noise)),
            n,
            noise_trials,
            opts.exec(),
            &[Metric::CwSlots, Metric::Collisions],
        );
        let point = stats.point(noise, Metric::CwSlots);
        noise_rows.push(vec![
            format!("{noise:.2}"),
            format!("{:.0}", point.median),
            format!("{:.0}", stats.raw_median(Metric::Collisions)),
        ]);
        noise_series.points.push(point);
    }
    report.line(format!(
        "\nnoise-only channel (collisions fatal), BEB, n = {n}: erasures force retries"
    ));
    report.line(render(
        &[
            "noise".to_string(),
            "CW slots".to_string(),
            "collisions".to_string(),
        ],
        &noise_rows,
    ));
    report.series_csv("soften_noise_cw_slots", "noise", &[noise_series]);

    // ── Panel 3: the 802.11g MAC path with softened collisions ───────────
    let mac_n = opts.pick(40u32, 100);
    let mac_trials = opts.trials_or(5, 20);
    let mut mac_rows = Vec::new();
    let mut fatal_time = 0.0;
    for &p in &[0.0, 0.5, 0.95] {
        let stats = single_stats::<MacSim>(
            "soften-mac",
            MacConfig::with_channel(AlgorithmKind::Beb, 64, ChannelModel::softened(p)),
            mac_n,
            mac_trials,
            opts.exec(),
            &[Metric::TotalTimeUs, Metric::AckTimeouts],
        );
        let total = stats.raw_median(Metric::TotalTimeUs);
        if p == 0.0 {
            fatal_time = total;
        }
        mac_rows.push(vec![
            format!("{p:.2}"),
            format!("{total:.0}"),
            format!("{:+.1}%", percent_change(total, fatal_time)),
            format!("{:.0}", stats.raw_median(Metric::AckTimeouts)),
        ]);
    }
    report.line(format!(
        "\nMAC simulator (802.11g DCF, BEB, 64 B, n = {mac_n}): capture softening vs total time"
    ));
    report.line(render(
        &[
            "p_recover".to_string(),
            "total time (µs)".to_string(),
            "vs fatal".to_string(),
            "ACK timeouts".to_string(),
        ],
        &mac_rows,
    ));
    report.line(
        "softening shrinks the collision cost the headline figures price in — the gap \
         between the abstract and MAC rankings narrows as p_recover grows",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            trials: Some(4),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn soften_report_has_all_three_panels() {
        let r = run(&opts());
        assert!(r.body.contains("abstract windowed semantics"));
        assert!(r.body.contains("noise-only channel"));
        assert!(r.body.contains("MAC simulator"));
        assert_eq!(r.csv.len(), 2);
    }

    #[test]
    fn recovery_helps_beb_in_the_report() {
        // p = 0.95 must not be *worse* than fatal for BEB by any margin a
        // 4-trial quick run could produce.
        let r = run(&opts());
        let line = r
            .body
            .lines()
            .find(|l| l.trim_start().starts_with("BEB:"))
            .expect("BEB summary line");
        assert!(line.contains('-'), "expected a reduction: {line}");
    }
}
