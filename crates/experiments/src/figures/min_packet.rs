//! §V-B — the smallest feasible packets (12 B payload, 76 B frame).
//!
//! NS3's UdpClient imposes a 12 B payload minimum, so the closest the paper
//! can get to the abstract model's "transmission fits in a slot" is a 76 B
//! frame. The qualitative behaviour survives: the paper reports total-time
//! increases of +6.6 % (LLB), +17.8 % (LB) and +20.6 % (STB) over BEB.

use crate::figures::shared::standard_mac_figure;
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;

pub fn run(opts: &Options) -> Report {
    let mut report = standard_mac_figure(
        opts,
        "§V-B — total time with minimum-size packets (12 B payload)",
        "minpkt_total_time_12",
        12,
        Metric::TotalTimeUs,
        "LLB +6.6%, LB +17.8%, STB +20.6%",
    );
    report.line(
        "smaller packets shrink — but do not erase — the collision cost, because the \
         preamble and ACK timeout still dwarf a 9 µs slot.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_packet_figure_runs() {
        let opts = Options {
            trials: Some(3),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(r.body.contains("vs BEB"));
    }
}
