//! Sweeps shared by several figures — all on the engine's streaming path.
//!
//! The paper generates Figures 3, 6, 7, 9, 11 and 12 from the same 64 B NS3
//! runs (and 4, 8, 10 from the 1024 B runs); we mirror that by deriving
//! those figures from one shared sweep *stream* per payload (same experiment
//! tag ⇒ same RNG streams ⇒ mutually consistent numbers within a `repro`
//! invocation), with each figure folding out only the metrics it plots.

use crate::aggregate::{
    final_percent_vs_first, series_per_algorithm, MetricStats, Series, StatsCell,
};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::{Metric, TrialSummary};
use crate::sweep::{ExecPolicy, Simulator, Sweep};
use crate::table::render_series;
use contention_core::algorithm::AlgorithmKind;
use contention_mac::{MacConfig, MacSim};
use contention_sim::engine::CellRange;
use contention_sim::monitor::{SnapshotCadence, SweepMonitor};
use contention_sim::sched::CostSpec;

/// The paper's four head-to-head algorithms.
pub fn paper_algorithms() -> Vec<AlgorithmKind> {
    AlgorithmKind::PAPER_SET.to_vec()
}

/// Execution seams the CLI threads into a shardable figure's sweep. One
/// struct (rather than a parameter per seam) because every shardable
/// `*_cells` function forwards it untouched to [`fold_grid`].
#[derive(Default, Clone, Copy)]
pub struct SweepHooks<'a> {
    /// Restrict the run to these grid cells (`repro shard`).
    pub range: Option<CellRange>,
    /// Run only these `(grid cell index, trials)` (`repro resume`); mutually
    /// exclusive with `range`.
    pub missing: Option<&'a [(usize, Vec<u32>)]>,
    /// Snapshot the in-flight accumulators on this cadence into this sink
    /// (`--checkpoint`).
    pub monitor: Option<(SnapshotCadence, &'a dyn SweepMonitor<MetricStats>)>,
}

impl<'a> SweepHooks<'a> {
    /// No seams attached: the plain full-grid run.
    pub fn none() -> SweepHooks<'static> {
        SweepHooks::default()
    }

    /// Only a cell-range restriction (the `repro shard` path).
    pub fn range(range: Option<CellRange>) -> SweepHooks<'static> {
        SweepHooks {
            range,
            ..SweepHooks::default()
        }
    }
}

/// Runs (part of) one grid on any backend, folded down to the grid's
/// metrics — the single engine-facing entry point every shardable figure
/// rides, so the grid description (what `repro shard` partitions and what
/// the artifact records) and the sweep that executes can never disagree.
/// `hooks` carries the execution seams: cell-range restriction, sparse
/// resume plan, checkpoint monitor.
pub fn fold_grid<S: Simulator>(
    experiment: &'static str,
    config: S::Config,
    grid: &GridMeta,
    opts: &Options,
    hooks: &SweepHooks,
) -> Vec<StatsCell>
where
    TrialSummary: From<S::Output>,
{
    let mut exec = opts.exec();
    exec.cells = hooks.range;
    // The grid's cost table rides along so the engine can taper claims and
    // start heavy cells first; it cannot affect any result bit.
    let costs = grid.cell_trial_costs();
    Sweep::<S> {
        experiment,
        config,
        algorithms: grid.algorithms.clone(),
        ns: grid.ns.clone(),
        trials: grid.trials,
        exec,
    }
    .run_fold_monitored(
        MetricStats::collector(&grid.metrics),
        hooks.missing,
        hooks.monitor,
        Some(&costs),
    )
}

/// The grid every standard MAC figure sweeps (payload-independent).
pub fn mac_grid(opts: &Options, metrics: &[Metric]) -> GridMeta {
    GridMeta {
        algorithms: paper_algorithms(),
        ns: opts.mac_ns(),
        trials: opts.trials_or(8, 30),
        metrics: metrics.to_vec(),
        // A MAC trial simulates Θ(log n) backoff windows of Θ(n) slots.
        cost: CostSpec::NLogN,
    }
}

/// The shared MAC sweep for one payload size, folded down to `metrics`,
/// with the CLI's execution seams attached.
pub fn mac_stats_range(
    opts: &Options,
    payload: u32,
    metrics: &[Metric],
    hooks: &SweepHooks,
) -> Vec<StatsCell> {
    let experiment: &'static str = match payload {
        64 => "mac-64",
        1024 => "mac-1024",
        12 => "mac-12",
        _ => "mac-other",
    };
    fold_grid::<MacSim>(
        experiment,
        MacConfig::paper(AlgorithmKind::Beb, payload),
        &mac_grid(opts, metrics),
        opts,
        hooks,
    )
}

/// The shared MAC sweep for one payload size, folded down to `metrics`.
pub fn mac_stats(opts: &Options, payload: u32, metrics: &[Metric]) -> Vec<StatsCell> {
    mac_stats_range(opts, payload, metrics, &SweepHooks::none())
}

/// A one-cell sweep: all trials of a single `(config, n)` pair, streamed
/// through the generic engine into the requested metric buffers. The
/// ablations use this to vary config fields the grid dimensions don't cover.
pub fn single_stats<S: Simulator>(
    experiment: &'static str,
    config: S::Config,
    n: u32,
    trials: u32,
    exec: ExecPolicy,
    metrics: &[Metric],
) -> MetricStats
where
    TrialSummary: From<S::Output>,
{
    let algorithm = S::algorithm(&config);
    let mut cells = Sweep::<S> {
        experiment,
        config,
        algorithms: vec![algorithm],
        ns: vec![n],
        trials,
        exec,
    }
    .run_fold(MetricStats::collector(metrics));
    cells.remove(0).acc
}

/// Builds the standard figure report from already-folded cells — the step
/// `repro merge` re-runs on reassembled shard state, so it must (and does)
/// depend only on the cells, never on how they were executed.
pub fn standard_mac_figure_from_cells(
    title: &str,
    csv_name: &str,
    metric: Metric,
    cells: &[StatsCell],
    paper_percents: &str,
) -> Report {
    let series = series_per_algorithm(cells, &paper_algorithms(), metric);
    report_from_series(title, csv_name, metric, &series, paper_percents)
}

/// Builds the standard figure report: a per-algorithm series table over `n`
/// plus the paper's percent-change-vs-BEB line at the largest `n`.
pub fn standard_mac_figure(
    opts: &Options,
    title: &str,
    csv_name: &str,
    payload: u32,
    metric: Metric,
    paper_percents: &str,
) -> Report {
    let cells = mac_stats(opts, payload, &[metric]);
    standard_mac_figure_from_cells(title, csv_name, metric, &cells, paper_percents)
}

/// Renders series + percent line into a [`Report`].
pub fn report_from_series(
    title: &str,
    csv_name: &str,
    metric: Metric,
    series: &[Series],
    paper_percents: &str,
) -> Report {
    let mut report = Report::new(title);
    report.line(format!("metric: {}", metric.label()));
    report.line(render_series("n", series));
    let max_n = series[0].points.last().expect("non-empty").x;
    let pct = final_percent_vs_first(series);
    let rendered: Vec<String> = pct
        .iter()
        .map(|(name, p)| format!("{name} {p:+.1}%"))
        .collect();
    report.line(format!(
        "vs BEB at n={max_n}: {}   (paper: {paper_percents})",
        rendered.join(", ")
    ));
    report.series_csv(csv_name, "n", series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            trials: Some(3),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn shared_sweep_covers_grid() {
        let opts = tiny_opts();
        let cells = mac_stats(&opts, 64, &[Metric::CwSlots]);
        assert_eq!(cells.len(), 4 * opts.mac_ns().len());
        assert!(cells
            .iter()
            .all(|c| c.acc.sample(Metric::CwSlots).len() == 3));
    }

    #[test]
    fn standard_figure_produces_table_and_percents() {
        let r = standard_mac_figure(
            &tiny_opts(),
            "test figure",
            "test_fig",
            64,
            Metric::CwSlots,
            "-49.4% / -68.2% / -83.0%",
        );
        assert!(r.body.contains("BEB"));
        assert!(r.body.contains("vs BEB at n=150"));
        assert_eq!(r.csv.len(), 1);
    }
}
