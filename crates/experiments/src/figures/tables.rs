//! Tables I, II and III.

use crate::aggregate::{MetricStats, StatsCell};
use crate::figures::shared::paper_algorithms;
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::{folded, Sweep};
use crate::table::render;
use contention_core::algorithm::AlgorithmKind;
use contention_core::bounds::{collisions_bound, cw_slots_bound};
use contention_core::params::Phy80211g;
use contention_slotted::windowed::WindowedConfig;
use contention_slotted::WindowedSim;

/// Table I: the 802.11g parameter set plus the frame times derived from it.
pub fn table1(_opts: &Options) -> Report {
    let p = Phy80211g::paper_defaults();
    let mut report = Report::new("Table I — experimental parameters (IEEE 802.11g)");
    let rows: Vec<Vec<String>> = vec![
        vec![
            "Data rate".into(),
            format!("{} Mbit/s", p.data_rate_bps / 1_000_000),
        ],
        vec!["Slot duration".into(), p.slot.to_string()],
        vec!["SIFS".into(), p.sifs.to_string()],
        vec!["DIFS".into(), p.difs.to_string()],
        vec!["ACK timeout".into(), p.ack_timeout.to_string()],
        vec!["Preamble".into(), p.preamble.to_string()],
        vec![
            "Packet overhead".into(),
            format!("{} bytes", p.header_overhead_bytes),
        ],
        vec![
            "CW min / max".into(),
            format!("{} / {}", p.cw_min, p.cw_max),
        ],
        vec!["RTS/CTS".into(), "off".into()],
    ];
    report.line(render(&["parameter".into(), "value".into()], &rows));
    report.line("derived frame times:");
    report.line(format!(
        "  64 B payload data frame : {} (paper: ≈19 µs + 20 µs preamble)",
        p.data_frame_time(64)
    ));
    report.line(format!(
        "  1024 B payload data frame: {} (paper: ≈161 µs + 20 µs preamble)",
        p.data_frame_time(1024)
    ));
    report.line(format!("  ACK frame                : {}", p.ack_time()));
    report.line(format!(
        "  RTS / CTS                : {} / {}",
        p.rts_time(),
        p.cts_time()
    ));
    report
}

/// Shared growth-check sweep for Tables II and III: abstract model over a
/// geometric n grid so ratio flatness is meaningful. Only the table's metric
/// is folded out of the stream.
fn growth_sweep(opts: &Options, metric: Metric) -> (Vec<u32>, Vec<StatsCell>) {
    let ns: Vec<u32> = if opts.full {
        vec![100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800]
    } else {
        vec![100, 400, 1_600, 6_400]
    };
    let cells = Sweep::<WindowedSim> {
        experiment: "growth-tables",
        config: WindowedConfig::abstract_model(AlgorithmKind::Beb),
        algorithms: paper_algorithms(),
        ns: ns.clone(),
        trials: opts.trials_or(8, 30),
        exec: opts.exec(),
    }
    .run_fold(MetricStats::collector(std::slice::from_ref(&metric)));
    (ns, cells)
}

/// The Θ-shape each algorithm is supposed to follow.
fn formula(kind: AlgorithmKind, what: &str) -> String {
    match (kind, what) {
        (AlgorithmKind::Beb, "cw") => "Θ(n lg n)".into(),
        (AlgorithmKind::LogBackoff, "cw") => "Θ(n lg n / lg lg n)".into(),
        (AlgorithmKind::LogLogBackoff, "cw") => "Θ(n lg lg n / lg lg lg n)".into(),
        (AlgorithmKind::Sawtooth, "cw") => "Θ(n)".into(),
        (AlgorithmKind::Beb, _) => "O(n)".into(),
        (AlgorithmKind::LogBackoff, _) => "Θ(n lg n / lg lg n)".into(),
        (AlgorithmKind::LogLogBackoff, _) => "Θ(n lg lg n / lg lg lg n)".into(),
        (AlgorithmKind::Sawtooth, _) => "Θ(n)".into(),
        _ => "—".into(),
    }
}

/// Builds the measured/bound ratio table for a metric + bound function.
fn growth_table(
    title: &str,
    csv_name: &str,
    what: &str,
    metric: Metric,
    bound: fn(AlgorithmKind, u64) -> f64,
    opts: &Options,
) -> Report {
    let (ns, cells) = growth_sweep(opts, metric);
    let mut report = Report::new(title);
    let mut header = vec!["algorithm".to_string(), "guarantee".to_string()];
    for &n in &ns {
        header.push(format!("n={n}"));
    }
    header.push("flatness".to_string());
    let mut rows = Vec::new();
    let mut csv_rows = vec![header.clone()];
    for &alg in &AlgorithmKind::PAPER_SET {
        let ratios: Vec<f64> = ns
            .iter()
            .map(|&n| {
                let measured = folded(&cells, alg, n).acc.point(n as f64, metric).median;
                measured / bound(alg, n as u64)
            })
            .collect();
        // Flatness over the upper half of the grid, where the asymptotics
        // should already hold: max ratio / min ratio, 1.0 = perfectly flat.
        let tail = &ratios[ratios.len() / 2..];
        let flat = tail.iter().cloned().fold(f64::MIN, f64::max)
            / tail.iter().cloned().fold(f64::MAX, f64::min);
        let mut row = vec![alg.label(), formula(alg, what)];
        for r in &ratios {
            row.push(format!("{r:.2}"));
        }
        row.push(format!("{flat:.2}"));
        csv_rows.push(row.clone());
        rows.push(row);
    }
    report.line(render(&header, &rows));
    report.line(
        "cells are measured-median / bound(n); a flat row (flatness near 1) means the \
         measured growth matches the guarantee's shape",
    );
    report.rows_csv(csv_name, csv_rows);
    report
}

/// Table II: CW-slot guarantees vs measured growth (abstract model).
pub fn table2(opts: &Options) -> Report {
    growth_table(
        "Table II — CW-slot guarantees vs measured growth (abstract simulator)",
        "table2_cw_growth",
        "cw",
        Metric::CwSlots,
        cw_slots_bound,
        opts,
    )
}

/// Table III: collision bounds vs measured growth (abstract model).
pub fn table3(opts: &Options) -> Report {
    let mut report = growth_table(
        "Table III — collision bounds vs measured growth (abstract simulator)",
        "table3_collision_growth",
        "collisions",
        Metric::Collisions,
        collisions_bound,
        opts,
    );
    report.line(
        "total-time column of Table III: T_A = Θ(C_A·P + W_A); see `repro model` \
         for the packet-size threshold analysis",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prints_all_parameters() {
        let r = table1(&Options::default());
        for needle in [
            "54 Mbit/s",
            "9µs",
            "16µs",
            "34µs",
            "75µs",
            "20µs",
            "1 / 1024",
        ] {
            assert!(r.body.contains(needle), "missing {needle}: {}", r.body);
        }
    }

    #[test]
    fn growth_tables_have_flat_beb_and_stb_rows() {
        let opts = Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        };
        let r = table3(&opts);
        assert!(r.body.contains("O(n)"));
        assert!(r.body.contains("flatness"));
    }
}
