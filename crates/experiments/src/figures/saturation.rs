//! Saturation phase diagram — offered load sweep on the dynamic engine.
//!
//! The batch experiments fix the workload and vary `n`; this one fixes the
//! channel (802.11g costs, 64 B payload) and sweeps the *offered load* from
//! well under capacity to past it, asking where each algorithm's dynamic
//! behaviour transitions from "stable queue, bounded latency" to
//! "saturated: completion collapses and latency is set by the drain window".
//!
//! The engine's `n` axis carries the load in **per-mille of channel
//! capacity** ([`DynAxis::LoadPerMille`]): `n = 900` means arrivals at 90 %
//! of the `1/success_cost` packets-per-slot the channel could serve
//! back-to-back, so `n = 1000` is the nominal phase boundary before any
//! collision overhead. The interesting finding is how far *below* 1000 each
//! backoff algorithm's real boundary sits — collision cost eats capacity,
//! and it eats different amounts per algorithm.
//!
//! Riding the standard grid makes the sweep shardable: `repro shard
//! saturation` / `repro merge` reproduce this report byte-for-byte.

use crate::aggregate::StatsCell;
use crate::figures::shared::{fold_grid, paper_algorithms, SweepHooks};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;
use crate::table::render;
use contention_core::algorithm::AlgorithmKind;
use contention_sim::sched::CostSpec;
use contention_slotted::dynamic::{ArrivalProcess, DynAxis, DynamicConfig, DynamicSim};

const METRICS: [Metric; 5] = [
    Metric::Throughput,
    Metric::CompletionRate,
    Metric::P50LatencySlots,
    Metric::P99LatencySlots,
    Metric::MeanLatencySlots,
];

/// A cell counts as "stable" when its median completion rate is at least
/// this; the phase boundary is the largest swept load that still clears it.
const STABLE_COMPLETION: f64 = 0.98;

fn config(opts: &Options) -> DynamicConfig {
    // The configured rate is a placeholder — the LoadPerMille axis rescales
    // it per cell. Horizon/drain are sized so full mode resolves the
    // boundary with steady-state confidence while quick mode stays fast.
    let (horizon, drain) = if opts.full {
        (60_000, 60_000)
    } else {
        (12_000, 12_000)
    };
    DynamicConfig {
        axis: DynAxis::LoadPerMille,
        horizon_slots: horizon,
        drain_slots: drain,
        ..DynamicConfig::mac_costs(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonSingles { rate: 0.001 },
            64,
        )
    }
}

/// Swept loads in per-mille of channel capacity.
fn loads(opts: &Options) -> Vec<u32> {
    if opts.full {
        vec![50, 100, 150, 200, 250, 300, 400, 500, 600, 800, 1000, 1200]
    } else {
        vec![100, 200, 300, 400, 600, 800, 1000]
    }
}

pub fn grid(opts: &Options) -> GridMeta {
    GridMeta {
        algorithms: paper_algorithms(),
        ns: loads(opts),
        trials: opts.trials_or(3, 10),
        metrics: METRICS.to_vec(),
        // The load axis is per-mille of capacity: arrivals (and so work per
        // trial) grow linearly along it.
        cost: CostSpec::LinearN,
    }
}

pub fn cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    fold_grid::<DynamicSim>("saturation", config(opts), &grid(opts), opts, hooks)
}

pub fn report(opts: &Options, cells: &[StatsCell]) -> Report {
    let cfg = config(opts);
    let loads = loads(opts);
    let mut report =
        Report::new("saturation phase diagram — offered load sweep, 802.11g costs (64 B payload)");
    report.line(format!(
        "load axis: per-mille of channel capacity (1/{} packets per slot); \
         horizon {} slots + drain {} slots; median of {} trials",
        cfg.success_cost,
        cfg.horizon_slots,
        cfg.drain_slots,
        opts.trials_or(3, 10)
    ));

    let at = |alg: AlgorithmKind, n: u32, metric: Metric| -> f64 {
        cells
            .iter()
            .find(|c| c.algorithm == alg && c.n == n)
            .expect("grid cell present")
            .acc
            .raw_median(metric)
    };

    let mut csv = vec![vec![
        "algorithm".to_string(),
        "load_permille".to_string(),
        "throughput_pkts_per_slot".to_string(),
        "completion".to_string(),
        "p50_latency_slots".to_string(),
        "p99_latency_slots".to_string(),
        "mean_latency_slots".to_string(),
    ]];
    let mut boundaries = Vec::new();
    for alg in paper_algorithms() {
        let mut rows = Vec::new();
        let mut boundary: Option<u32> = None;
        for &load in &loads {
            let throughput = at(alg, load, Metric::Throughput);
            let completion = at(alg, load, Metric::CompletionRate);
            let p50 = at(alg, load, Metric::P50LatencySlots);
            let p99 = at(alg, load, Metric::P99LatencySlots);
            let mean = at(alg, load, Metric::MeanLatencySlots);
            if completion >= STABLE_COMPLETION {
                boundary = Some(boundary.map_or(load, |b: u32| b.max(load)));
            }
            rows.push(vec![
                format!("{load}"),
                format!("{throughput:.5}"),
                format!("{:.1}%", completion * 100.0),
                format!("{p50:.0}"),
                format!("{p99:.0}"),
            ]);
            csv.push(vec![
                alg.label(),
                format!("{load}"),
                format!("{throughput:.6}"),
                format!("{completion:.4}"),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{mean:.1}"),
            ]);
        }
        report.line(format!("{}:", alg.label()));
        report.line(render(
            &[
                "load ‰".into(),
                "throughput".into(),
                "done".into(),
                "p50 lat".into(),
                "p99 lat".into(),
            ],
            &rows,
        ));
        boundaries.push((alg.label(), boundary));
    }
    let rendered: Vec<String> = boundaries
        .iter()
        .map(|(name, b)| match b {
            Some(load) => format!("{name} ≤{load}‰"),
            None => format!("{name} <{}‰", loads[0]),
        })
        .collect();
    report.line(format!(
        "phase boundary (largest load with median completion ≥ {:.0}%): {}",
        STABLE_COMPLETION * 100.0,
        rendered.join(", ")
    ));
    report.rows_csv("saturation_phase", csv);
    report
}

pub fn run(opts: &Options) -> Report {
    report(opts, &cells(opts, &SweepHooks::none()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_report_shows_boundary_and_all_algorithms() {
        let opts = Options {
            trials: Some(2),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(r.body.contains("phase boundary"), "{}", r.body);
        for alg in paper_algorithms() {
            assert!(r.body.contains(&alg.label()), "{}", r.body);
        }
        assert_eq!(r.csv.len(), 1);
    }

    #[test]
    fn phase_boundary_sits_between_the_load_extremes() {
        let opts = Options {
            trials: Some(2),
            threads: Some(2),
            ..Options::default()
        };
        let cells = cells(&opts, &SweepHooks::none());
        let completion = |alg, load| {
            cells
                .iter()
                .find(|c| c.algorithm == alg && c.n == load)
                .unwrap()
                .acc
                .raw_median(Metric::CompletionRate)
        };
        for alg in paper_algorithms() {
            assert!(
                completion(alg, 100) >= STABLE_COMPLETION,
                "{alg:?} unstable at 10% load"
            );
            assert!(
                completion(alg, 1000) < STABLE_COMPLETION,
                "{alg:?} stable at nominal capacity — collision cost should forbid that"
            );
        }
    }
}
