//! Figure 13 — an execution trace of BEB with 20 stations.
//!
//! The paper uses this trace to argue "ACK timeout ≈ collision": every thin
//! red line (ACK-timeout wait) follows a transmission that overlapped another
//! one; every non-overlapping transmission gets its ACK. We render the same
//! picture in ASCII and verify the claim mechanically.

use crate::figures::Report;
use crate::options::Options;
use crate::sweep::run_trial;
use contention_core::algorithm::AlgorithmKind;
use contention_mac::{MacConfig, MacSim, SpanKind};

/// Runs the trace trial (through the engine's canonical single-trial path)
/// and renders it.
pub fn fig13(opts: &Options) -> Report {
    let n = 20;
    let kind = AlgorithmKind::Beb;
    let mut config = MacConfig::paper(kind, 64);
    config.capture_trace = true;
    let run = run_trial::<MacSim>("fig13", &config, n, 0);
    let trace = run.trace.expect("trace was requested");

    let mut report = Report::new("Figure 13 — execution of BEB with 20 stations (64 B payload)");
    report.line("legend: █ data (ACKed)   ▓ data (collided)   a ACK   - ACK-timeout wait");
    let width = opts.pick(100, 160);
    report.line(trace.render_ascii(width));

    let failures = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::DataFail)
        .count() as u64;
    report.line(format!(
        "total time {:.0} µs; {} disjoint collisions involving {} station-transmissions; \
         {} ACK timeouts",
        run.metrics.total_time.as_micros_f64(),
        run.metrics.collisions,
        run.metrics.colliding_stations,
        run.metrics.total_ack_timeouts(),
    ));
    report.line(format!(
        "ACK timeout ≈ collision check: every failed transmission overlapped another \
         ({} failures = {} colliding station-transmissions; probe corruptions: {})",
        failures, run.metrics.colliding_stations, run.probe_corruptions
    ));

    // CSV of the raw spans for external plotting.
    let mut rows = vec![vec![
        "station".to_string(),
        "kind".to_string(),
        "start_us".to_string(),
        "end_us".to_string(),
    ]];
    for span in &trace.spans {
        rows.push(vec![
            span.station.to_string(),
            format!("{:?}", span.kind),
            format!("{:.3}", span.start.as_micros_f64()),
            format!("{:.3}", span.end.as_micros_f64()),
        ]);
    }
    report.rows_csv("fig13_trace_spans", rows);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_report_confirms_ack_timeout_collision_identity() {
        let r = fig13(&Options::default());
        assert!(r.body.contains("probe corruptions: 0"));
        assert!(r.body.contains('█'));
        // 21 rows of timeline (20 stations + axis) exist in the body.
        assert!(r.body.lines().filter(|l| l.contains('|')).count() >= 20);
    }
}
