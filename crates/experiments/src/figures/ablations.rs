//! Ablations beyond the paper's figures, probing the design choices the
//! paper discusses in §V (and that DESIGN.md §6 commits to):
//!
//! * [`ack_timeout`] — §V-B: "values below [the] threshold will lead a
//!   station to consider its packet lost before the ACK can be received...
//!   unnecessary retransmissions and, ultimately, poor throughput."
//! * [`eifs`] — the 802.11 EIFS rule's contribution to collision cost.
//! * [`truncation`] — §V-B: the CWmax = 1024 truncation "is rarely reached
//!   ... and does not seem to have any noticeable impact".
//! * [`semantics`] — windowed (theory) vs residual-timer (802.11) execution
//!   of the same schedules in the abstract model.
//! * [`ack_loss`] — §III-B: "an ACK might be lost due to wireless effects
//!   ... the same costs hold": failure injection.
//! * [`polynomial`] — the quadratic-backoff baseline from the related work
//!   ([53]) dropped into the single-batch setting.
//!
//! Every ablation streams its trials through the generic sweep engine
//! ([`single_stats`]), varying only the config fields under study and
//! retaining only the metrics its table prints.

use crate::figures::shared::{paper_algorithms, single_stats};
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::ExecPolicy;
use crate::table::render;
use contention_core::algorithm::AlgorithmKind;
use contention_core::params::Phy80211g;
use contention_core::schedule::Truncation;
use contention_core::time::Nanos;
use contention_core::util::percent_change;
use contention_mac::{MacConfig, MacSim};
use contention_slotted::residual::ResidualConfig;
use contention_slotted::windowed::WindowedConfig;
use contention_slotted::{ResidualSim, WindowedSim};

/// Medians of (total time µs, total ACK timeouts, successes) over one MAC
/// cell streamed through the engine.
fn mac_medians(
    experiment: &'static str,
    config: &MacConfig,
    n: u32,
    trials: u32,
    exec: ExecPolicy,
) -> (f64, f64, f64) {
    let stats = single_stats::<MacSim>(
        experiment,
        *config,
        n,
        trials,
        exec,
        &[Metric::TotalTimeUs, Metric::AckTimeouts, Metric::Successes],
    );
    (
        stats.raw_median(Metric::TotalTimeUs),
        stats.raw_median(Metric::AckTimeouts),
        stats.raw_median(Metric::Successes),
    )
}

/// ACK-timeout sweep: the cliff sits at SIFS + ACK airtime (≈ 38 µs with
/// Table I's parameters); below it, the sender declares failure while its
/// ACK is still on the air and the batch never completes.
pub fn ack_timeout(opts: &Options) -> Report {
    let n = 60;
    let trials = opts.trials_or(5, 15);
    let phy = Phy80211g::paper_defaults();
    let cliff = phy.sifs + phy.ack_time();
    let mut report = Report::new("ablation — ACK-timeout duration (BEB, 64 B, n = 60)");
    report.line(format!(
        "ACK arrives SIFS + ACK = {cliff} after the data frame; timeouts below that \
         can never observe success (§V-B)."
    ));
    let mut rows = Vec::new();
    for timeout_us in [30u64, 36, 39, 45, 55, 75, 100, 150] {
        let mut config = MacConfig::paper(AlgorithmKind::Beb, 64);
        config.phy.ack_timeout = Nanos::from_micros(timeout_us);
        config.max_sim_time = Nanos::from_millis(500);
        let (total, timeouts, successes) =
            mac_medians("ablate-ackto", &config, n, trials, opts.exec());
        rows.push(vec![
            format!("{timeout_us}"),
            format!("{successes:.0}/{n}"),
            if successes as u32 == n {
                format!("{total:.0}")
            } else {
                "—".into()
            },
            format!("{timeouts:.0}"),
        ]);
    }
    report.line(render(
        &[
            "ACK timeout µs".into(),
            "completed".into(),
            "total µs".into(),
            "ACK timeouts".into(),
        ],
        &rows,
    ));
    report.line(
        "below the cliff nothing completes (every attempt self-aborts); above it, \
         growing the timeout only adds per-collision waiting.",
    );
    report.rows_csv(
        "ablate_ack_timeout",
        std::iter::once(vec![
            "ack_timeout_us".to_string(),
            "completed".to_string(),
            "total_us".to_string(),
            "ack_timeouts".to_string(),
        ])
        .chain(rows.iter().map(|r| {
            vec![
                r[0].clone(),
                r[1].replace('/', ":"),
                r[2].replace('—', ""),
                r[3].clone(),
            ]
        }))
        .collect(),
    );
    report
}

/// EIFS on/off for every algorithm: EIFS charges every bystander of a
/// collision an extra SIFS+ACK of deferral, amplifying exactly the cost the
/// paper says A2 ignores.
pub fn eifs(opts: &Options) -> Report {
    let n = 150;
    let trials = opts.trials_or(5, 20);
    let mut report = Report::new("ablation — the 802.11 EIFS rule (64 B, n = 150)");
    let mut rows = Vec::new();
    let mut beb: [f64; 2] = [0.0; 2];
    for alg in paper_algorithms() {
        let mut cells = [0.0f64; 2];
        for (i, use_eifs) in [false, true].into_iter().enumerate() {
            let mut config = MacConfig::paper(alg, 64);
            config.use_eifs = use_eifs;
            let (total, _, _) = mac_medians(
                if use_eifs {
                    "ablate-eifs-on"
                } else {
                    "ablate-eifs-off"
                },
                &config,
                n,
                trials,
                opts.exec(),
            );
            cells[i] = total;
        }
        if alg == AlgorithmKind::Beb {
            beb = cells;
        }
        rows.push(vec![
            alg.label(),
            format!("{:.0}", cells[0]),
            format!("{:+.1}%", percent_change(cells[0], beb[0])),
            format!("{:.0}", cells[1]),
            format!("{:+.1}%", percent_change(cells[1], beb[1])),
        ]);
    }
    report.line(render(
        &[
            "algorithm".into(),
            "EIFS off µs".into(),
            "vs BEB".into(),
            "EIFS on µs".into(),
            "vs BEB".into(),
        ],
        &rows,
    ));
    report.line(
        "EIFS widens every challenger's deficit: it multiplies the per-collision \
         penalty that the abstract model prices at zero.",
    );
    report
}

/// Truncation ablation in the abstract model: §V-B says CWmax = 1024 is
/// rarely reached at n = 150 and has no noticeable impact.
pub fn truncation(opts: &Options) -> Report {
    let n = 150;
    let trials = opts.trials_or(9, 30);
    let mut report = Report::new("ablation — CW truncation in the abstract model (BEB, n = 150)");
    let mut rows = Vec::new();
    for (label, trunc) in [
        ("unbounded", Truncation::unbounded()),
        ("CWmax=1024 (Table I)", Truncation::paper()),
        (
            "CWmax=256",
            Truncation {
                cw_min: 1,
                cw_max: 256,
            },
        ),
    ] {
        let mut config = WindowedConfig::abstract_model(AlgorithmKind::Beb);
        config.truncation = trunc;
        let stats = single_stats::<WindowedSim>(
            "ablate-trunc",
            config,
            n,
            trials,
            opts.exec(),
            &[Metric::CwSlots, Metric::Collisions],
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", stats.raw_median(Metric::CwSlots)),
            format!("{:.0}", stats.raw_median(Metric::Collisions)),
        ]);
    }
    report.line(render(
        &["truncation".into(), "CW slots".into(), "collisions".into()],
        &rows,
    ));
    report.line(
        "1024 matches unbounded (it is rarely reached at n = 150, §V-B); forcing \
         CWmax down to 256 ≈ 1.7n begins to cost extra collisions.",
    );
    report
}

/// Windowed (Figure 2) vs residual-timer (802.11 DCF) semantics for the
/// same schedules, in the same A0–A2 collision model.
pub fn semantics(opts: &Options) -> Report {
    let n = 150;
    let trials = opts.trials_or(9, 30);
    let mut report =
        Report::new("ablation — windowed vs residual-timer semantics (abstract model, n = 150)");
    let mut rows = Vec::new();
    const SEM_METRICS: [Metric; 2] = [Metric::CwSlots, Metric::Collisions];
    for alg in paper_algorithms() {
        let windowed = single_stats::<WindowedSim>(
            "ablate-sem-w",
            WindowedConfig::truncated_model(alg),
            n,
            trials,
            opts.exec(),
            &SEM_METRICS,
        );
        let residual = single_stats::<ResidualSim>(
            "ablate-sem-r",
            ResidualConfig::paper(alg),
            n,
            trials,
            opts.exec(),
            &SEM_METRICS,
        );
        rows.push(vec![
            alg.label(),
            format!("{:.0}", windowed.raw_median(Metric::CwSlots)),
            format!("{:.0}", windowed.raw_median(Metric::Collisions)),
            format!("{:.0}", residual.raw_median(Metric::CwSlots)),
            format!("{:.0}", residual.raw_median(Metric::Collisions)),
        ]);
    }
    report.line(render(
        &[
            "algorithm".into(),
            "windowed CW".into(),
            "windowed coll.".into(),
            "residual CW".into(),
            "residual coll.".into(),
        ],
        &rows,
    ));
    report.line(
        "residual timers finish sooner (no wait-out-the-window) but leave the \
         collision ordering intact — the paper's findings are not an artifact \
         of which semantics the MAC layer uses.",
    );
    report
}

/// ACK-loss failure injection: lost ACKs are misdiagnosed as collisions and
/// charged the full §III-B costs.
pub fn ack_loss(opts: &Options) -> Report {
    let n = 100;
    let trials = opts.trials_or(5, 15);
    let mut report = Report::new("ablation — ACK-loss failure injection (BEB, 64 B, n = 100)");
    let mut rows = Vec::new();
    for loss_pct in [0u32, 2, 5, 10, 20] {
        let mut config = MacConfig::paper(AlgorithmKind::Beb, 64);
        config.ack_loss_prob = loss_pct as f64 / 100.0;
        config.max_sim_time = Nanos::from_millis(5_000);
        let stats = single_stats::<MacSim>(
            "ablate-loss",
            config,
            n,
            trials,
            opts.exec(),
            &[
                Metric::TotalTimeUs,
                Metric::AckTimeouts,
                Metric::CollidingStations,
            ],
        );
        rows.push(vec![
            format!("{loss_pct}%"),
            format!("{:.0}", stats.raw_median(Metric::TotalTimeUs)),
            format!("{:.0}", stats.raw_median(Metric::AckTimeouts)),
            format!("{:.0}", stats.raw_median(Metric::CollidingStations)),
        ]);
    }
    report.line(render(
        &[
            "ACK loss".into(),
            "total µs".into(),
            "ACK timeouts".into(),
            "collision participants".into(),
        ],
        &rows,
    ));
    report.line(
        "the gap between timeouts and true collision participants is the injected \
         loss: the sender cannot tell them apart (ACK timeout ≈ collision, §III-B) \
         and pays retransmission + timeout + window growth either way.",
    );
    report
}

/// Quadratic/cubic polynomial backoff dropped into the single-batch setting.
pub fn polynomial(opts: &Options) -> Report {
    let n = 150;
    let trials = opts.trials_or(5, 20);
    let mut report = Report::new("ablation — polynomial backoff baselines (64 B, n = 150)");
    let mut rows = Vec::new();
    let mut beb_total = 0.0;
    let algorithms = [
        AlgorithmKind::Beb,
        AlgorithmKind::Polynomial { degree: 2 },
        AlgorithmKind::Polynomial { degree: 3 },
        AlgorithmKind::Sawtooth,
    ];
    for alg in algorithms {
        let config = MacConfig::paper(alg, 64);
        let stats = single_stats::<MacSim>(
            "ablate-poly",
            config,
            n,
            trials,
            opts.exec(),
            &[Metric::TotalTimeUs, Metric::CwSlots, Metric::Collisions],
        );
        let t = stats.raw_median(Metric::TotalTimeUs);
        if alg == AlgorithmKind::Beb {
            beb_total = t;
        }
        rows.push(vec![
            alg.label(),
            format!("{:.0}", stats.raw_median(Metric::CwSlots)),
            format!("{:.0}", stats.raw_median(Metric::Collisions)),
            format!("{t:.0}"),
            format!("{:+.1}%", percent_change(t, beb_total)),
        ]);
    }
    report.line(render(
        &[
            "algorithm".into(),
            "CW slots".into(),
            "collisions".into(),
            "total µs".into(),
            "vs BEB".into(),
        ],
        &rows,
    ));
    report.line(
        "polynomial backoff grows windows far too slowly for a burst: it hoards \
         collisions exactly as the collision-cost model predicts (quadratic is \
         a non-bursty-traffic design, per the related work [53]).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            trials: Some(3),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn ack_timeout_cliff_blocks_completion() {
        let r = ack_timeout(&opts());
        // Below the ≈38 µs cliff, the batch must not complete.
        let row30 = r
            .body
            .lines()
            .find(|l| l.trim_start().starts_with("30 "))
            .unwrap();
        assert!(row30.contains("—"), "30 µs should never complete: {row30}");
        // At the 75 µs default, it must complete.
        let row75 = r
            .body
            .lines()
            .find(|l| l.trim_start().starts_with("75 "))
            .unwrap();
        assert!(row75.contains("60/60"), "75 µs should complete: {row75}");
    }

    #[test]
    fn truncation_at_1024_is_noise() {
        let r = truncation(&Options {
            trials: Some(9),
            threads: Some(2),
            ..Options::default()
        });
        assert!(r.body.contains("unbounded"));
        assert!(r.body.contains("CWmax=1024"));
    }

    #[test]
    fn semantics_table_covers_all_algorithms() {
        let r = semantics(&opts());
        for alg in ["BEB", "LB", "LLB", "STB"] {
            assert!(r.body.contains(alg), "missing {alg}");
        }
    }

    #[test]
    fn polynomial_hoards_collisions() {
        let r = polynomial(&opts());
        assert!(r.body.contains("POLY(2)"));
        // Quadratic backoff must be slower than BEB on a burst.
        let line = r.body.lines().find(|l| l.contains("POLY(2)")).unwrap();
        assert!(line.contains('+'), "POLY(2) should trail BEB: {line}");
    }
}
