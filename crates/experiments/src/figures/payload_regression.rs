//! Figure 14 — LLB − BEB total-time difference as packet size grows.
//!
//! The paper fits an OLS model of the per-trial difference on payload size
//! and finds each extra 100 B costs LLB roughly 700 µs more than BEB, with
//! p < 0.001 — empirical support for the §IV-D asymptotics (total time
//! depends on collisions × packet time).

use crate::aggregate::{aggregate_values, paired_differences, MetricStats, Series};
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::Sweep;
use crate::table::render_series;
use contention_core::algorithm::AlgorithmKind;
use contention_mac::{MacConfig, MacSim};
use contention_stats::regression::linear_fit;

/// Runs the payload sweep and the regression.
pub fn fig14(opts: &Options) -> Report {
    let n = 150;
    let payloads: Vec<u32> = if opts.full {
        (1..=10).map(|i| i * 100).collect()
    } else {
        vec![100, 400, 700, 1000]
    };
    let trials = opts.trials_or(8, 30);

    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut points = Vec::new();
    for &payload in &payloads {
        let cells = Sweep::<MacSim> {
            experiment: "fig14",
            config: MacConfig::paper(AlgorithmKind::Beb, payload),
            algorithms: vec![AlgorithmKind::Beb, AlgorithmKind::LogLogBackoff],
            ns: vec![n],
            trials,
            exec: opts.exec(),
        }
        .run_fold(MetricStats::collector(&[Metric::TotalTimeUs]));
        // Position-addressed buffers keep trial order, so pairing by index
        // still compares common-random-number partners.
        let diffs = paired_differences(
            cells[1].acc.sample(Metric::TotalTimeUs),
            cells[0].acc.sample(Metric::TotalTimeUs),
        );
        for &d in &diffs {
            xs.push(payload as f64);
            ys.push(d);
        }
        points.push(aggregate_values(payload as f64, &diffs));
    }

    let fit = linear_fit(&xs, &ys);
    let series = vec![Series {
        name: "LLB − BEB (µs)".to_string(),
        points,
    }];

    let mut report = Report::new(format!(
        "Figure 14 — LLB − BEB total time vs payload size (n = {n})"
    ));
    report.line(render_series("payload B", &series));
    report.line(format!(
        "OLS fit: slope {:+.2} µs/B ⇒ {:+.0} µs per extra 100 B (paper: ≈ +700 µs per 100 B)",
        fit.slope,
        fit.slope * 100.0
    ));
    report.line(format!(
        "slope t = {:.2}, p = {:.2e} (paper: p < 0.001), R² = {:.3}",
        fit.t_statistic, fit.p_value, fit.r_squared
    ));
    report.series_csv("fig14_llb_minus_beb", "payload_bytes", &series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_is_positive_and_significant() {
        let opts = Options {
            trials: Some(6),
            threads: Some(2),
            ..Options::default()
        };
        let r = fig14(&opts);
        let fit_line = r.body.lines().find(|l| l.starts_with("OLS fit")).unwrap();
        assert!(fit_line.contains("slope +"), "{fit_line}");
        let p_line = r.body.lines().find(|l| l.starts_with("slope t")).unwrap();
        // Significance at a loose threshold for the quick grid.
        let p: f64 = p_line
            .split("p = ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .trim_end_matches(',')
            .parse()
            .unwrap();
        assert!(p < 0.05, "regression not significant: {p_line}");
    }
}
