//! §V-A at full scale — the streaming sweep the paper ran on a cluster.
//!
//! The paper's large-n evaluation pushes the abstract simulator to n = 10⁵
//! stations with hundreds of trials per cell on four 16-core Xeon nodes.
//! This experiment runs that regime in one process on the engine's
//! stream-and-fold path: trials are claimed in batches from an on-the-fly
//! cursor and each trial folds into flat per-metric buffers
//! ([`MetricStats`]), so a cell retains `trials × metrics × 8` bytes no
//! matter how large `n` gets. The default grid reaches the paper's n = 10⁵;
//! `--full` extends it to 10⁶ — a regime the collect-everything pipeline
//! was never asked to survive.
//!
//! BEB vs STB is the headline pair out here: Θ(n lg n) vs Θ(n) CW slots
//! (Table II), so the gap must widen with n.

use crate::aggregate::{series_per_algorithm, StatsCell};
use crate::figures::shared::{fold_grid, SweepHooks};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;
use crate::table::render_series;
use contention_core::algorithm::AlgorithmKind;
use contention_core::util::percent_change;
use contention_sim::sched::CostSpec;
use contention_slotted::windowed::WindowedConfig;
use contention_slotted::WindowedSim;

/// The cw-slot metrics the figure folds out per trial.
const METRICS: [Metric; 2] = [Metric::CwSlots, Metric::Collisions];

pub fn grid(opts: &Options) -> GridMeta {
    // Default: the paper's ceiling, n = 12 500 … 10⁵. --full: n up to 10⁶.
    let ns: Vec<u32> = if opts.full {
        (1..=10).map(|i| i * 100_000).collect()
    } else {
        (1..=8).map(|i| i * 12_500).collect()
    };
    GridMeta {
        algorithms: vec![AlgorithmKind::Beb, AlgorithmKind::Sawtooth],
        ns,
        trials: opts.trials_or(5, 25),
        metrics: METRICS.to_vec(),
        // Windowed backoff runs Θ(log n) windows of Θ(n) slots; the 80×
        // spread across this grid's n axis is exactly what cost-balanced
        // sharding exists for.
        cost: CostSpec::NLogN,
    }
}

pub fn cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    fold_grid::<WindowedSim>(
        "scale",
        WindowedConfig::abstract_model(AlgorithmKind::Beb),
        &grid(opts),
        opts,
        hooks,
    )
}

pub fn run(opts: &Options) -> Report {
    report(opts, &cells(opts, &SweepHooks::none()))
}

pub fn report(opts: &Options, cells: &[StatsCell]) -> Report {
    let g = grid(opts);
    let (algorithms, ns, trials) = (g.algorithms, g.ns, g.trials);

    let max_n = *ns.last().expect("non-empty grid");
    let retained: usize = cells.iter().map(|c| c.acc.retained_bytes()).sum();
    let mut report = Report::new(format!(
        "§V-A at scale — BEB vs STB CW slots, abstract simulator, n up to {max_n}"
    ));
    let cw = series_per_algorithm(cells, &algorithms, Metric::CwSlots);
    report.line(render_series("n", &cw));
    let beb = cw[0].final_median();
    let stb = cw[1].final_median();
    report.line(format!(
        "STB vs BEB at n={max_n}: {:+.1}% CW slots (Table II: Θ(n) vs Θ(n lg n) — \
         the gap widens with n)",
        percent_change(stb, beb)
    ));
    let collisions = series_per_algorithm(cells, &algorithms, Metric::Collisions);
    report.line(format!(
        "collisions at n={max_n}: BEB {:.0} vs STB {:.0}",
        collisions[0].final_median(),
        collisions[1].final_median()
    ));
    report.line(format!(
        "streamed {} trials through batched workers; aggregation retained {} bytes \
         ({} cells × {trials} trials × {} metrics × 8 B) — independent of n",
        cells.len() * trials as usize,
        retained,
        cells.len(),
        METRICS.len(),
    ));
    report.series_csv("scale_cw_slots", "n", &cw);
    report.series_csv("scale_collisions", "n", &collisions);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_grid_reaches_1e5_and_stb_wins() {
        let opts = Options {
            trials: Some(2),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(r.title.contains("n up to 100000"), "{}", r.title);
        let pct = r
            .body
            .lines()
            .find(|l| l.starts_with("STB vs BEB"))
            .expect("percent line");
        assert!(pct.contains('-'), "STB must beat BEB at n=1e5: {pct}");
        assert_eq!(r.csv.len(), 2);
    }

    #[test]
    fn retained_bytes_are_reported_and_small() {
        let opts = Options {
            trials: Some(2),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        // 16 cells × 2 trials × 2 metrics × 8 B = 512 bytes.
        assert!(r.body.contains("retained 512 bytes"), "{}", r.body);
    }
}
