//! Figures 7–10 — total time and half-completion time in the MAC simulator.
//!
//! These are the paper's headline reversal: the ordering of Figures 3–6
//! flips once the cost of collisions is measured (Result 2).
//!
//! Each figure is split into `*_cells` (the sweep, cell-range aware for
//! process sharding) and `*_report` (pure function of the folded cells).

use crate::aggregate::StatsCell;
use crate::figures::shared::{
    mac_grid, mac_stats_range, standard_mac_figure_from_cells, SweepHooks,
};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;

pub fn fig7_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::TotalTimeUs])
}

pub fn fig7_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 64, &[Metric::TotalTimeUs], hooks)
}

pub fn fig7_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 7 — total time vs n (MAC sim, 64 B payload)",
        "fig7_total_time_64",
        Metric::TotalTimeUs,
        cells,
        "LLB +5.6%, LB +19.3%, STB +26.5% (ordering reversed!)",
    )
}

/// Figure 7: total time, 64 B payload.
pub fn fig7(opts: &Options) -> Report {
    fig7_report(opts, &fig7_cells(opts, &SweepHooks::none()))
}

pub fn fig8_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::TotalTimeUs])
}

pub fn fig8_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 1024, &[Metric::TotalTimeUs], hooks)
}

pub fn fig8_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 8 — total time vs n (MAC sim, 1024 B payload)",
        "fig8_total_time_1024",
        Metric::TotalTimeUs,
        cells,
        "LLB +9.1%, LB +25.4%, STB +35.4%",
    )
}

/// Figure 8: total time, 1024 B payload (larger packets favour BEB more).
pub fn fig8(opts: &Options) -> Report {
    fig8_report(opts, &fig8_cells(opts, &SweepHooks::none()))
}

pub fn fig9_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::HalfTimeUs])
}

pub fn fig9_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 64, &[Metric::HalfTimeUs], hooks)
}

pub fn fig9_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 9 — time for n/2 packets vs n (MAC sim, 64 B payload)",
        "fig9_half_time_64",
        Metric::HalfTimeUs,
        cells,
        "LLB +13.1%, LB +17.3%, STB +25.4%",
    )
}

/// Figure 9: time until n/2 packets complete, 64 B — stragglers are *not*
/// the explanation; BEB leads on the first half too.
pub fn fig9(opts: &Options) -> Report {
    fig9_report(opts, &fig9_cells(opts, &SweepHooks::none()))
}

pub fn fig10_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::HalfTimeUs])
}

pub fn fig10_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 1024, &[Metric::HalfTimeUs], hooks)
}

pub fn fig10_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 10 — time for n/2 packets vs n (MAC sim, 1024 B payload)",
        "fig10_half_time_1024",
        Metric::HalfTimeUs,
        cells,
        "LLB +10.1%, LB +16.6%, STB +26.6%",
    )
}

/// Figure 10: time until n/2 packets complete, 1024 B.
pub fn fig10(opts: &Options) -> Report {
    fig10_report(opts, &fig10_cells(opts, &SweepHooks::none()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shows_the_reversal() {
        let opts = Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        };
        let r = fig7(&opts);
        let pct_line = r.body.lines().find(|l| l.starts_with("vs BEB")).unwrap();
        // The strongly-separated challengers must be *slower* than BEB in
        // total time (LLB sits within noise of BEB at few trials, so it is
        // asserted only in the integration tests with more trials).
        assert!(
            pct_line.contains(", LB +") || pct_line.starts_with("vs BEB at n=150: LB +"),
            "{pct_line}"
        );
        assert!(pct_line.contains("STB +"), "{pct_line}");
    }
}
