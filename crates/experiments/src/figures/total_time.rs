//! Figures 7–10 — total time and half-completion time in the MAC simulator.
//!
//! These are the paper's headline reversal: the ordering of Figures 3–6
//! flips once the cost of collisions is measured (Result 2).

use crate::figures::shared::standard_mac_figure;
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;

/// Figure 7: total time, 64 B payload.
pub fn fig7(opts: &Options) -> Report {
    standard_mac_figure(
        opts,
        "Figure 7 — total time vs n (MAC sim, 64 B payload)",
        "fig7_total_time_64",
        64,
        Metric::TotalTimeUs,
        "LLB +5.6%, LB +19.3%, STB +26.5% (ordering reversed!)",
    )
}

/// Figure 8: total time, 1024 B payload (larger packets favour BEB more).
pub fn fig8(opts: &Options) -> Report {
    standard_mac_figure(
        opts,
        "Figure 8 — total time vs n (MAC sim, 1024 B payload)",
        "fig8_total_time_1024",
        1024,
        Metric::TotalTimeUs,
        "LLB +9.1%, LB +25.4%, STB +35.4%",
    )
}

/// Figure 9: time until n/2 packets complete, 64 B — stragglers are *not*
/// the explanation; BEB leads on the first half too.
pub fn fig9(opts: &Options) -> Report {
    standard_mac_figure(
        opts,
        "Figure 9 — time for n/2 packets vs n (MAC sim, 64 B payload)",
        "fig9_half_time_64",
        64,
        Metric::HalfTimeUs,
        "LLB +13.1%, LB +17.3%, STB +25.4%",
    )
}

/// Figure 10: time until n/2 packets complete, 1024 B.
pub fn fig10(opts: &Options) -> Report {
    standard_mac_figure(
        opts,
        "Figure 10 — time for n/2 packets vs n (MAC sim, 1024 B payload)",
        "fig10_half_time_1024",
        1024,
        Metric::HalfTimeUs,
        "LLB +10.1%, LB +16.6%, STB +26.6%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shows_the_reversal() {
        let opts = Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        };
        let r = fig7(&opts);
        let pct_line = r.body.lines().find(|l| l.starts_with("vs BEB")).unwrap();
        // The strongly-separated challengers must be *slower* than BEB in
        // total time (LLB sits within noise of BEB at few trials, so it is
        // asserted only in the integration tests with more trials).
        assert!(
            pct_line.contains(", LB +") || pct_line.starts_with("vs BEB at n=150: LB +"),
            "{pct_line}"
        );
        assert!(pct_line.contains("STB +"), "{pct_line}");
    }
}
