//! §VIII extension — long-lived bursty traffic.
//!
//! The paper's concluding question: does the collision-cost finding survive
//! when traffic is a *stream* of bursts rather than one batch? We run the
//! dynamic slotted simulator twice per algorithm over Poisson-timed bursts:
//!
//! * with **unit costs** (the A0–A2 world where a collision costs one slot),
//!   where the theory's CW-slot ordering should govern latency; and
//! * with **802.11g costs** (success ≈ 13 slots, collision ≈ 17 slots for a
//!   64 B payload), where the paper's collision-cost argument predicts BEB
//!   regains the lead.
//!
//! The two cost models are the sweep's `n` axis ([`DynAxis::CostPreset`]:
//! `n = 0` unit, `n = 1` MAC), so the whole figure is one engine grid —
//! shardable, checkpointable, and resumable like the batch figures.

use crate::aggregate::StatsCell;
use crate::figures::shared::{fold_grid, paper_algorithms, SweepHooks};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;
use crate::table::render;
use contention_core::algorithm::AlgorithmKind;
use contention_core::util::percent_change;
use contention_sim::sched::CostSpec;
use contention_slotted::dynamic::{ArrivalProcess, DynAxis, DynamicConfig, DynamicSim};

const METRICS: [Metric; 2] = [Metric::MeanLatencySlots, Metric::CompletionRate];

fn arrivals(opts: &Options) -> ArrivalProcess {
    ArrivalProcess::PoissonBursts {
        rate: if opts.full { 0.000_5 } else { 0.000_8 },
        size: 60,
    }
}

fn config(opts: &Options) -> DynamicConfig {
    DynamicConfig {
        axis: DynAxis::CostPreset { payload_bytes: 64 },
        ..DynamicConfig::abstract_model(AlgorithmKind::Beb, arrivals(opts))
    }
}

pub fn grid(opts: &Options) -> GridMeta {
    GridMeta {
        algorithms: paper_algorithms(),
        ns: vec![0, 1],
        trials: opts.trials_or(5, 15),
        metrics: METRICS.to_vec(),
        // The axis is a two-point cost-preset selector, not a size: both
        // cells simulate the same horizon.
        cost: CostSpec::Uniform,
    }
}

pub fn cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    fold_grid::<DynamicSim>("dynamic", config(opts), &grid(opts), opts, hooks)
}

pub fn report(opts: &Options, cells: &[StatsCell]) -> Report {
    let trials = opts.trials_or(5, 15);
    let arrivals = arrivals(opts);
    let mut report =
        Report::new("§VIII extension — long-lived bursty traffic (Poisson bursts of 60 packets)");
    report.line(format!(
        "offered load {:.3} packets/slot; mean packet latency in slots (median of {trials} trials)",
        arrivals.offered_load()
    ));

    let at = |alg: AlgorithmKind, n: u32, metric: Metric| -> f64 {
        cells
            .iter()
            .find(|c| c.algorithm == alg && c.n == n)
            .expect("grid cell present")
            .acc
            .raw_median(metric)
    };

    let mut rows = Vec::new();
    let mut beb = [0.0f64; 2];
    let mut winners: [Option<(String, f64)>; 2] = [None, None];
    for alg in paper_algorithms() {
        let lat_unit = at(alg, 0, Metric::MeanLatencySlots);
        let done_unit = at(alg, 0, Metric::CompletionRate);
        let lat_mac = at(alg, 1, Metric::MeanLatencySlots);
        let done_mac = at(alg, 1, Metric::CompletionRate);
        if alg == AlgorithmKind::Beb {
            beb = [lat_unit, lat_mac];
        }
        for (slot, lat) in [(0usize, lat_unit), (1, lat_mac)] {
            if winners[slot]
                .as_ref()
                .map(|(_, best)| lat < *best)
                .unwrap_or(true)
            {
                winners[slot] = Some((alg.label(), lat));
            }
        }
        rows.push(vec![
            alg.label(),
            format!("{lat_unit:.0}"),
            format!("{:+.0}%", percent_change(lat_unit, beb[0])),
            format!("{:.0}%", done_unit * 100.0),
            format!("{lat_mac:.0}"),
            format!("{:+.0}%", percent_change(lat_mac, beb[1])),
            format!("{:.0}%", done_mac * 100.0),
        ]);
    }
    report.line(render(
        &[
            "algorithm".into(),
            "A2 latency".into(),
            "vs BEB".into(),
            "done".into(),
            "802.11g latency".into(),
            "vs BEB".into(),
            "done".into(),
        ],
        &rows,
    ));
    let a2_winner = winners[0].clone().expect("ran").0;
    let mac_winner = winners[1].clone().expect("ran").0;
    report.line(format!(
        "unit-cost (A2) winner: {a2_winner}; 802.11g-cost winner: {mac_winner} — the \
         single-batch reversal {} to long-lived bursty traffic.",
        if mac_winner == "BEB" && a2_winner != "BEB" {
            "extends"
        } else {
            "partially extends"
        }
    ));
    report.rows_csv(
        "dynamic_bursty_latency",
        std::iter::once(vec![
            "algorithm".to_string(),
            "a2_latency_slots".to_string(),
            "a2_completion".to_string(),
            "mac_latency_slots".to_string(),
            "mac_completion".to_string(),
        ])
        .chain(rows.iter().map(|r| {
            vec![
                r[0].clone(),
                r[1].clone(),
                r[3].replace('%', ""),
                r[4].clone(),
                r[6].replace('%', ""),
            ]
        }))
        .collect(),
    );
    report
}

pub fn run(opts: &Options) -> Report {
    report(opts, &cells(opts, &SweepHooks::none()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_report_runs_and_names_winners() {
        let opts = Options {
            trials: Some(3),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(r.body.contains("winner"));
        assert!(r.body.contains("802.11g"));
    }
}
