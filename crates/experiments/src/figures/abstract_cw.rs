//! Figures 5, 15 and 16 — the abstract (A0–A2 only) simulator.
//!
//! Each figure is split into `*_cells` (the sweep, cell-range aware for
//! process sharding) and `*_report` (pure function of the folded cells);
//! Figures 15 and 16 share one large-n sweep, so they share its grid too.

use crate::aggregate::{series_per_algorithm, Series, SeriesPoint, StatsCell};
use crate::figures::shared::{fold_grid, paper_algorithms, report_from_series, SweepHooks};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;
use crate::sweep::folded;
use crate::table::render_series;
use contention_core::algorithm::AlgorithmKind;
use contention_sim::sched::CostSpec;
use contention_slotted::windowed::WindowedConfig;
use contention_slotted::WindowedSim;

pub fn fig5_grid(opts: &Options) -> GridMeta {
    GridMeta {
        algorithms: paper_algorithms(),
        ns: opts.mac_ns(),
        trials: opts.trials_or(12, 50),
        metrics: vec![Metric::CwSlots],
        cost: CostSpec::NLogN,
    }
}

pub fn fig5_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    fold_grid::<WindowedSim>(
        "fig5",
        WindowedConfig::abstract_model(AlgorithmKind::Beb),
        &fig5_grid(opts),
        opts,
        hooks,
    )
}

pub fn fig5_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    let series = series_per_algorithm(cells, &paper_algorithms(), Metric::CwSlots);
    report_from_series(
        "Figure 5 — CW slots vs n (abstract simulator, assumptions A0–A2 only)",
        "fig5_cw_slots_abstract",
        Metric::CwSlots,
        &series,
        "BEB separates; LLB/LB/STB overlap at small n",
    )
}

/// Figure 5: CW slots from the abstract simulator over the paper's n grid.
///
/// This is the "simple Java simulation" — it roughly agrees with the NS3
/// numbers in magnitude and in BEB's separation, though the newer algorithms
/// do not separate cleanly at this scale (§III-A1).
pub fn fig5(opts: &Options) -> Report {
    fig5_report(opts, &fig5_cells(opts, &SweepHooks::none()))
}

/// The large-n grid of §V-A, shared by Figures 15 and 16. The paper runs
/// n ≤ 10⁵ in increments of 400 with 200 trials on a cluster; `--full` uses
/// increments of 8 000 with a couple dozen trials, quick mode stays below
/// n = 2·10⁴.
pub fn large_n_grid(opts: &Options) -> GridMeta {
    let ns: Vec<u32> = if opts.full {
        (1..=12).map(|i| i * 8_000).collect()
    } else {
        vec![2_000, 6_000, 12_000, 20_000]
    };
    GridMeta {
        algorithms: paper_algorithms(),
        ns,
        trials: opts.trials_or(8, 24),
        metrics: vec![Metric::CwSlots, Metric::Collisions],
        cost: CostSpec::NLogN,
    }
}

pub fn large_n_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    fold_grid::<WindowedSim>(
        "fig15-16",
        WindowedConfig::abstract_model(AlgorithmKind::Beb),
        &large_n_grid(opts),
        opts,
        hooks,
    )
}

pub fn fig15_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    let series = series_per_algorithm(cells, &paper_algorithms(), Metric::CwSlots);
    let mut report = report_from_series(
        "Figure 15 — CW slots at large n (abstract simulator)",
        "fig15_large_n_cw_slots",
        Metric::CwSlots,
        &series,
        "STB best; LLB below LB at large n (asymptotics kick in)",
    );
    let max_n = series[0].points.last().expect("points").x;
    let lb = series[1].final_median();
    let llb = series[2].final_median();
    report.line(format!(
        "ordering flip check at n={max_n}: LLB {llb:.0} vs LB {lb:.0} → LLB {} LB",
        if llb < lb { "beats" } else { "still trails" }
    ));
    report
}

/// Figure 15: CW slots at large n — STB pulls ahead and LLB finally
/// outperforms LB, as the asymptotics (Table II) demand (§V-A(i)).
pub fn fig15(opts: &Options) -> Report {
    fig15_report(opts, &large_n_cells(opts, &SweepHooks::none()))
}

/// Figure 16: ratio of median collision counts vs STB (§V-A(ii)–(iii)):
/// LB/STB exceeds 1 quickly, LLB/STB crawls upward, BEB/STB stays flat.
pub fn fig16(opts: &Options) -> Report {
    fig16_report(opts, &large_n_cells(opts, &SweepHooks::none()))
}

pub fn fig16_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    let ns: Vec<u32> = {
        let mut v: Vec<u32> = cells.iter().map(|c| c.n).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let numerators = [
        AlgorithmKind::LogBackoff,
        AlgorithmKind::LogLogBackoff,
        AlgorithmKind::Beb,
    ];
    let series: Vec<Series> = numerators
        .iter()
        .map(|&alg| Series {
            name: format!("{}/STB", alg.label()),
            points: ns
                .iter()
                .map(|&n| {
                    let num = folded(cells, alg, n)
                        .acc
                        .point(n as f64, Metric::Collisions)
                        .median;
                    let den = folded(cells, AlgorithmKind::Sawtooth, n)
                        .acc
                        .point(n as f64, Metric::Collisions)
                        .median
                        .max(1.0);
                    let ratio = num / den;
                    SeriesPoint {
                        x: n as f64,
                        median: ratio,
                        ci_low: ratio,
                        ci_high: ratio,
                        kept: 0,
                        dropped: 0,
                    }
                })
                .collect(),
        })
        .collect();
    let mut report =
        Report::new("Figure 16 — ratio of median collisions vs STB (abstract simulator)");
    report.line(render_series("n", &series));
    report.line(format!(
        "LB/STB at largest n: {:.2} (paper: exceeds 1 quickly); BEB/STB: {:.2} (paper: flat, ≈ constant)",
        series[0].final_median(),
        series[2].final_median()
    ));
    report.series_csv("fig16_collision_ratios", "n", &series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            trials: Some(5),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn fig5_runs_and_orders_beb_worst() {
        let r = fig5(&opts());
        let pct = r.body.lines().find(|l| l.starts_with("vs BEB")).unwrap();
        assert!(pct.contains("STB -"), "{pct}");
    }

    #[test]
    fn fig16_ratios_behave() {
        let r = fig16(&opts());
        assert!(r.body.contains("LB/STB"));
        assert!(r.body.contains("BEB/STB"));
    }
}
