//! §III-B "RTS/CTS" — the findings survive with the handshake enabled.
//!
//! With RTS/CTS, collisions happen among 20 B RTS frames instead of data
//! frames, but the extra inter-frame spaces and control frames add overhead.
//! The paper reports LLB's total-time increase over BEB moving from
//! +5.6 %/+9.1 % (64 B/1024 B, RTS off) to +10.7 %/+7.5 % (RTS on) — same
//! qualitative picture.

use crate::aggregate::MetricStats;
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;
use crate::sweep::Sweep;
use crate::table::render;
use contention_core::algorithm::AlgorithmKind;
use contention_core::util::percent_change;
use contention_mac::{MacConfig, MacSim};

pub fn run(opts: &Options) -> Report {
    let n = 150;
    let trials = opts.trials_or(6, 30);
    let mut rows = Vec::new();
    let mut report = Report::new("§III-B — RTS/CTS check: LLB vs BEB total time (n = 150)");
    for payload in [64u32, 1024] {
        for rts in [false, true] {
            let mut config = MacConfig::paper(AlgorithmKind::Beb, payload);
            config.rts_cts = rts;
            let cells = Sweep::<MacSim> {
                experiment: if rts { "rtscts-on" } else { "rtscts-off" },
                config,
                algorithms: vec![AlgorithmKind::Beb, AlgorithmKind::LogLogBackoff],
                ns: vec![n],
                trials,
                exec: opts.exec(),
            }
            .run_fold(MetricStats::collector(&[Metric::TotalTimeUs]));
            let beb = cells[0].acc.point(n as f64, Metric::TotalTimeUs).median;
            let llb = cells[1].acc.point(n as f64, Metric::TotalTimeUs).median;
            let paper = match (payload, rts) {
                (64, false) => "+5.6%",
                (1024, false) => "+9.1%",
                (64, true) => "+10.7%",
                (1024, true) => "+7.5%",
                _ => unreachable!(),
            };
            rows.push(vec![
                format!("{payload} B"),
                if rts { "on" } else { "off" }.to_string(),
                format!("{beb:.0}"),
                format!("{llb:.0}"),
                format!("{:+.1}%", percent_change(llb, beb)),
                paper.to_string(),
            ]);
        }
    }
    report.line(render(
        &[
            "payload".into(),
            "RTS/CTS".into(),
            "BEB µs".into(),
            "LLB µs".into(),
            "LLB vs BEB".into(),
            "paper".into(),
        ],
        &rows,
    ));
    report.line("qualitative behaviour is unchanged by RTS/CTS: BEB still leads (§III-B).");
    report.rows_csv(
        "rtscts_llb_vs_beb",
        std::iter::once(vec![
            "payload".to_string(),
            "rts_cts".to_string(),
            "beb_us".to_string(),
            "llb_us".to_string(),
            "llb_vs_beb_pct".to_string(),
        ])
        .chain(rows.iter().map(|r| {
            vec![
                r[0].replace(" B", ""),
                r[1].clone(),
                r[2].clone(),
                r[3].clone(),
                r[4].replace(['%', '+'], ""),
            ]
        }))
        .collect(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rts_on_and_off_both_reported() {
        let opts = Options {
            trials: Some(3),
            threads: Some(2),
            ..Options::default()
        };
        let r = run(&opts);
        assert!(r.body.contains("on"));
        assert!(r.body.contains("off"));
        assert!(r.body.contains("1024 B"));
    }
}
