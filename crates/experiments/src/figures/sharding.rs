//! The shardable-experiment registry: which figures `repro shard` /
//! `repro merge` can split across processes.
//!
//! A figure is shardable when it factors into a *cells* half (one engine
//! sweep, restrictable to a cell range) and a *report* half (a pure
//! function of the folded cells). Each entry wires those halves together
//! with the [`GridMeta`] describing the sweep, so the CLI can partition the
//! grid, run one cell range per process, and rebuild the exact
//! single-process report from merged `shard_state/v1` artifacts.
//!
//! The invariant every entry must satisfy — pinned by this module's tests
//! and by `tests/shard_equivalence.rs` — is
//! `report(opts, cells(opts, None)) == <registry runner>(opts)`, byte for
//! byte, including the CSV/JSON artifacts.

use crate::aggregate::StatsCell;
use crate::figures::shared::SweepHooks;
use crate::figures::{
    abstract_cw, ack_timeouts, cw_slots, dynamic_traffic, saturation, scale, total_time, Report,
};
use crate::options::Options;
use crate::shard::GridMeta;

/// One shardable experiment: the sweep-grid description plus the two
/// halves of its figure pipeline. `Copy` (it is three fn pointers and a
/// static name) so the work-server can hold one across threads.
#[derive(Clone, Copy)]
pub struct ShardableEntry {
    /// Registry subcommand name (`fig5`, `scale`, …).
    pub name: &'static str,
    /// The grid the experiment sweeps under these options.
    pub grid: fn(&Options) -> GridMeta,
    /// Runs the sweep — restricted/sparsified/monitored per the hooks —
    /// and returns the folded cells.
    pub cells: fn(&Options, &SweepHooks) -> Vec<StatsCell>,
    /// Builds the figure's report from (complete) folded cells.
    pub report: fn(&Options, &[StatsCell]) -> Report,
}

/// Every experiment `repro shard` accepts, in paper order.
pub fn shardable_registry() -> Vec<ShardableEntry> {
    vec![
        ShardableEntry {
            name: "fig3",
            grid: cw_slots::fig3_grid,
            cells: cw_slots::fig3_cells,
            report: cw_slots::fig3_report,
        },
        ShardableEntry {
            name: "fig4",
            grid: cw_slots::fig4_grid,
            cells: cw_slots::fig4_cells,
            report: cw_slots::fig4_report,
        },
        ShardableEntry {
            name: "fig5",
            grid: abstract_cw::fig5_grid,
            cells: abstract_cw::fig5_cells,
            report: abstract_cw::fig5_report,
        },
        ShardableEntry {
            name: "fig6",
            grid: cw_slots::fig6_grid,
            cells: cw_slots::fig6_cells,
            report: cw_slots::fig6_report,
        },
        ShardableEntry {
            name: "fig7",
            grid: total_time::fig7_grid,
            cells: total_time::fig7_cells,
            report: total_time::fig7_report,
        },
        ShardableEntry {
            name: "fig8",
            grid: total_time::fig8_grid,
            cells: total_time::fig8_cells,
            report: total_time::fig8_report,
        },
        ShardableEntry {
            name: "fig9",
            grid: total_time::fig9_grid,
            cells: total_time::fig9_cells,
            report: total_time::fig9_report,
        },
        ShardableEntry {
            name: "fig10",
            grid: total_time::fig10_grid,
            cells: total_time::fig10_cells,
            report: total_time::fig10_report,
        },
        ShardableEntry {
            name: "fig11",
            grid: ack_timeouts::fig11_grid,
            cells: ack_timeouts::fig11_cells,
            report: ack_timeouts::fig11_report,
        },
        ShardableEntry {
            name: "fig12",
            grid: ack_timeouts::fig12_grid,
            cells: ack_timeouts::fig12_cells,
            report: ack_timeouts::fig12_report,
        },
        ShardableEntry {
            name: "fig15",
            grid: abstract_cw::large_n_grid,
            cells: abstract_cw::large_n_cells,
            report: abstract_cw::fig15_report,
        },
        ShardableEntry {
            name: "fig16",
            grid: abstract_cw::large_n_grid,
            cells: abstract_cw::large_n_cells,
            report: abstract_cw::fig16_report,
        },
        ShardableEntry {
            name: "scale",
            grid: scale::grid,
            cells: scale::cells,
            report: scale::report,
        },
        ShardableEntry {
            name: "dynamic",
            grid: dynamic_traffic::grid,
            cells: dynamic_traffic::cells,
            report: dynamic_traffic::report,
        },
        ShardableEntry {
            name: "saturation",
            grid: saturation::grid,
            cells: saturation::cells,
            report: saturation::report,
        },
    ]
}

/// Looks up one shardable experiment by name.
pub fn find_shardable(name: &str) -> Option<ShardableEntry> {
    shardable_registry().into_iter().find(|e| e.name == name)
}

/// The names `repro shard` advertises in error messages.
pub fn shardable_names() -> Vec<&'static str> {
    shardable_registry().into_iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{registry, CsvBlock};
    use crate::jsonout;
    use crate::shard::{merge_states, ShardState};
    use contention_sim::engine::CellRange;

    fn tiny_opts() -> Options {
        Options {
            trials: Some(2),
            threads: Some(2),
            ..Options::default()
        }
    }

    /// A report's full byte image: title, body, and every rendered artifact.
    fn rendered(report: &Report) -> (String, String, Vec<String>) {
        let blocks = report
            .csv
            .iter()
            .map(|b| match b {
                CsvBlock::Series {
                    name,
                    x_label,
                    series,
                } => jsonout::series_json(name, x_label, series),
                CsvBlock::Rows { name, rows } => jsonout::rows_json(name, rows),
            })
            .collect();
        (report.title.clone(), report.body.clone(), blocks)
    }

    #[test]
    fn every_shardable_name_is_a_registry_experiment() {
        let registered: Vec<&str> = registry().iter().map(|(n, _, _)| *n).collect();
        for entry in shardable_registry() {
            assert!(
                registered.contains(&entry.name),
                "{} is shardable but not registered",
                entry.name
            );
        }
        let names = shardable_names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate shardable name");
    }

    /// The load-bearing invariant: the split pipeline reproduces the
    /// registry runner byte-for-byte for every shardable experiment.
    #[test]
    fn split_pipeline_matches_registry_runner_for_every_entry() {
        let opts = tiny_opts();
        for entry in shardable_registry() {
            let (_, _, runner) = registry()
                .into_iter()
                .find(|(n, _, _)| *n == entry.name)
                .expect("registered");
            let direct = runner(&opts);
            let split = (entry.report)(&opts, &(entry.cells)(&opts, &SweepHooks::none()));
            assert_eq!(
                rendered(&direct),
                rendered(&split),
                "{}: split pipeline diverged from the registry runner",
                entry.name
            );
        }
    }

    /// Grid description and executed sweep agree: the cells a full run
    /// returns are exactly the grid's cells, in grid order.
    #[test]
    fn grids_describe_the_cells_the_sweep_returns() {
        let opts = tiny_opts();
        for entry in shardable_registry() {
            let grid = (entry.grid)(&opts);
            let cells = (entry.cells)(&opts, &SweepHooks::none());
            assert_eq!(cells.len(), grid.cell_count(), "{}", entry.name);
            let mut expected = Vec::new();
            for &alg in &grid.algorithms {
                for &n in &grid.ns {
                    expected.push((alg, n));
                }
            }
            let got: Vec<_> = cells.iter().map(|c| (c.algorithm, c.n)).collect();
            assert_eq!(got, expected, "{}: cell order", entry.name);
            for cell in &cells {
                assert_eq!(cell.acc.metrics(), &grid.metrics[..], "{}", entry.name);
                assert!(cell.acc.is_complete(), "{}", entry.name);
            }
        }
    }

    /// A quick two-way shard/merge round trip through the artifact format
    /// for one entry (the full backend × shard-count matrix lives in
    /// `tests/shard_equivalence.rs`).
    #[test]
    fn fig5_two_shards_merge_back_to_the_unsharded_report() {
        let opts = tiny_opts();
        let entry = find_shardable("fig5").expect("fig5 is shardable");
        let grid = (entry.grid)(&opts);
        let states: Vec<ShardState> = (0..2)
            .map(|i| {
                let range = CellRange::shard(grid.cell_count(), i, 2);
                let cells = (entry.cells)(&opts, &SweepHooks::range(Some(range)));
                let text =
                    ShardState::from_cells(entry.name, opts.full, (i as u32, 2), &grid, &cells)
                        .to_json();
                ShardState::parse(&text).expect("round trip")
            })
            .collect();
        let merged = merge_states(states).expect("compatible shards");
        assert!(merged.is_complete());
        let report = (entry.report)(&opts, &merged.into_cells());
        let direct = (entry.report)(&opts, &(entry.cells)(&opts, &SweepHooks::none()));
        assert_eq!(rendered(&report), rendered(&direct));
    }
}
