//! Figures 3, 4 and 6 — contention-window slots in the MAC simulator.
//!
//! Each figure is split into a `*_cells` half (the sweep, optionally
//! restricted to a cell range for process sharding) and a `*_report` half
//! (pure function of the folded cells) — `repro merge` re-runs only the
//! report half on reassembled shard state.

use crate::aggregate::{series_per_algorithm, StatsCell};
use crate::figures::shared::{
    mac_grid, mac_stats_range, paper_algorithms, report_from_series,
    standard_mac_figure_from_cells, SweepHooks,
};
use crate::figures::Report;
use crate::options::Options;
use crate::shard::GridMeta;
use crate::summary::Metric;

pub fn fig3_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::CwSlots])
}

pub fn fig3_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 64, &[Metric::CwSlots], hooks)
}

pub fn fig3_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 3 — CW slots vs n (MAC sim, 64 B payload)",
        "fig3_cw_slots_64",
        Metric::CwSlots,
        cells,
        "LLB -49.4%, LB -68.2%, STB -83.0%",
    )
}

/// Figure 3: CW slots, 64 B payload. The theory's prediction (Table II) —
/// each newer algorithm beats BEB — must hold here (Result 1).
pub fn fig3(opts: &Options) -> Report {
    fig3_report(opts, &fig3_cells(opts, &SweepHooks::none()))
}

pub fn fig4_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &[Metric::CwSlots])
}

pub fn fig4_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 1024, &[Metric::CwSlots], hooks)
}

pub fn fig4_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    standard_mac_figure_from_cells(
        "Figure 4 — CW slots vs n (MAC sim, 1024 B payload)",
        "fig4_cw_slots_1024",
        Metric::CwSlots,
        cells,
        "LLB -54.2%, LB -69.9%, STB -84.2%",
    )
}

/// Figure 4: CW slots, 1024 B payload.
pub fn fig4(opts: &Options) -> Report {
    fig4_report(opts, &fig4_cells(opts, &SweepHooks::none()))
}

const FIG6_METRICS: [Metric; 2] = [Metric::HalfCwSlots, Metric::CwSlots];

pub fn fig6_grid(opts: &Options) -> GridMeta {
    mac_grid(opts, &FIG6_METRICS)
}

pub fn fig6_cells(opts: &Options, hooks: &SweepHooks) -> Vec<StatsCell> {
    mac_stats_range(opts, 64, &FIG6_METRICS, hooks)
}

pub fn fig6_report(_opts: &Options, cells: &[StatsCell]) -> Report {
    let half = series_per_algorithm(cells, &paper_algorithms(), Metric::HalfCwSlots);
    let full = series_per_algorithm(cells, &paper_algorithms(), Metric::CwSlots);
    let mut report = report_from_series(
        "Figure 6 — CW slots to finish n/2 packets (MAC sim, 64 B payload)",
        "fig6_half_cw_slots_64",
        Metric::HalfCwSlots,
        &half,
        "LLB -25.0%, LB -56.4%, STB -77.7%",
    );
    report.line("share of CW slots consumed by the first n/2 packets (at largest n):");
    for (h, f) in half.iter().zip(&full) {
        let ratio = h.final_median() / f.final_median().max(1.0);
        report.line(format!(
            "  {:>4}: {:.0}%  (remaining n/2 packets take the other {:.0}%)",
            h.name,
            100.0 * ratio,
            100.0 * (1.0 - ratio)
        ));
    }
    report
}

/// Figure 6: CW slots needed to finish the first n/2 packets (64 B).
///
/// The paper's two observations: (1) the *remaining* n/2 packets account for
/// the bulk of the CW slots; (2) the improvement over BEB shrinks for the
/// first half (stragglers hurt BEB most). We print the half-completion table
/// plus the half/full ratio that supports observation (1).
pub fn fig6(opts: &Options) -> Report {
    fig6_report(opts, &fig6_cells(opts, &SweepHooks::none()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            trials: Some(4),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn fig3_orders_algorithms_as_theory_predicts() {
        let r = fig3(&opts());
        // The percent line must show all three challengers negative.
        let pct_line = r.body.lines().find(|l| l.starts_with("vs BEB")).unwrap();
        assert!(pct_line.contains("LB -"), "{pct_line}");
        assert!(pct_line.contains("STB -"), "{pct_line}");
    }

    #[test]
    fn fig6_reports_half_share() {
        let r = fig6(&opts());
        assert!(r.body.contains("share of CW slots"));
        assert!(r.body.contains("BEB"));
    }
}
