//! Figures 3, 4 and 6 — contention-window slots in the MAC simulator.

use crate::aggregate::series_per_algorithm;
use crate::figures::shared::{
    mac_stats, paper_algorithms, report_from_series, standard_mac_figure,
};
use crate::figures::Report;
use crate::options::Options;
use crate::summary::Metric;

/// Figure 3: CW slots, 64 B payload. The theory's prediction (Table II) —
/// each newer algorithm beats BEB — must hold here (Result 1).
pub fn fig3(opts: &Options) -> Report {
    standard_mac_figure(
        opts,
        "Figure 3 — CW slots vs n (MAC sim, 64 B payload)",
        "fig3_cw_slots_64",
        64,
        Metric::CwSlots,
        "LLB -49.4%, LB -68.2%, STB -83.0%",
    )
}

/// Figure 4: CW slots, 1024 B payload.
pub fn fig4(opts: &Options) -> Report {
    standard_mac_figure(
        opts,
        "Figure 4 — CW slots vs n (MAC sim, 1024 B payload)",
        "fig4_cw_slots_1024",
        1024,
        Metric::CwSlots,
        "LLB -54.2%, LB -69.9%, STB -84.2%",
    )
}

/// Figure 6: CW slots needed to finish the first n/2 packets (64 B).
///
/// The paper's two observations: (1) the *remaining* n/2 packets account for
/// the bulk of the CW slots; (2) the improvement over BEB shrinks for the
/// first half (stragglers hurt BEB most). We print the half-completion table
/// plus the half/full ratio that supports observation (1).
pub fn fig6(opts: &Options) -> Report {
    let cells = mac_stats(opts, 64, &[Metric::HalfCwSlots, Metric::CwSlots]);
    let half = series_per_algorithm(&cells, &paper_algorithms(), Metric::HalfCwSlots);
    let full = series_per_algorithm(&cells, &paper_algorithms(), Metric::CwSlots);
    let mut report = report_from_series(
        "Figure 6 — CW slots to finish n/2 packets (MAC sim, 64 B payload)",
        "fig6_half_cw_slots_64",
        Metric::HalfCwSlots,
        &half,
        "LLB -25.0%, LB -56.4%, STB -77.7%",
    );
    report.line("share of CW slots consumed by the first n/2 packets (at largest n):");
    for (h, f) in half.iter().zip(&full) {
        let ratio = h.final_median() / f.final_median().max(1.0);
        report.line(format!(
            "  {:>4}: {:.0}%  (remaining n/2 packets take the other {:.0}%)",
            h.name,
            100.0 * ratio,
            100.0 * (1.0 - ratio)
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            trials: Some(4),
            threads: Some(2),
            ..Options::default()
        }
    }

    #[test]
    fn fig3_orders_algorithms_as_theory_predicts() {
        let r = fig3(&opts());
        // The percent line must show all three challengers negative.
        let pct_line = r.body.lines().find(|l| l.starts_with("vs BEB")).unwrap();
        assert!(pct_line.contains("LB -"), "{pct_line}");
        assert!(pct_line.contains("STB -"), "{pct_line}");
    }

    #[test]
    fn fig6_reports_half_share() {
        let r = fig6(&opts());
        assert!(r.body.contains("share of CW slots"));
        assert!(r.body.contains("BEB"));
    }
}
