//! Crash-safe artifact writes.
//!
//! Every artifact the CLI leaves behind (shard state, checkpoints, reports,
//! metrics) goes through [`write_atomic`]: the bytes land in a `*.tmp` file
//! in the destination directory, are fsynced, and are renamed over the final
//! name. A process killed at any instant therefore leaves either the old
//! file, the new file, or a stray `*.tmp` — never a truncated artifact under
//! the real name. Readers ignore `*.tmp` (see `shard::load_dir` and
//! `checkpoint::load_latest`), so torn writes are invisible to
//! `repro merge` and `repro resume`.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// Writes `<path>.tmp` in the same directory (same filesystem, so the final
/// rename is atomic), fsyncs the data, renames over `path`, then best-effort
/// fsyncs the directory so the rename itself survives a power cut. Any I/O
/// failure is reported with the path it happened on; on failure the
/// destination is untouched (a stale `*.tmp` may remain and is harmless).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = tmp_path(path);
    let mut file =
        File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    file.write_all(bytes)
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    file.sync_all()
        .map_err(|e| format!("cannot sync {}: {e}", tmp.display()))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| {
        format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        )
    })?;
    // Persisting the rename needs a directory fsync; failure to *observe*
    // that (e.g. a filesystem that refuses to open directories) does not
    // mean the write failed, so it is not an error.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The temp-file name `write_atomic` stages under: `<file name>.tmp` in the
/// same directory. Exposed so tests can construct torn-write scenarios.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Creates `dir` (and parents), reporting the path on failure.
pub fn ensure_dir(dir: &Path) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsutil-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_replaces() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !tmp_path(&path).exists(),
            "successful write must not leave its temp file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_reports_the_failing_path() {
        let dir = scratch_dir("missing").join("no-such-subdir");
        let err = write_atomic(&dir.join("artifact.json"), b"x").unwrap_err();
        assert!(err.contains("artifact.json.tmp"), "unexpected error: {err}");
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn tmp_path_stays_in_the_same_directory() {
        let p = tmp_path(Path::new("/a/b/c.shardstate.json"));
        assert_eq!(p, Path::new("/a/b/c.shardstate.json.tmp"));
    }
}
