//! # contention-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation. Each figure lives in its own module under
//! [`figures`]; the `repro` binary exposes one subcommand per figure.
//!
//! The building blocks:
//!
//! * [`summary::TrialSummary`] — the scalar metrics extracted from one trial
//!   (full per-station vectors are dropped inside the worker so large-`n`
//!   abstract sweeps stay memory-light). Defined in `contention-sim`.
//! * [`sweep`] — the generic `Sweep<S: Simulator>` engine (defined in
//!   `contention-sim`): one Cartesian `(algorithm × n × trial)` runner
//!   drives the MAC, windowed, residual and dynamic simulators alike,
//!   streaming each trial into a per-cell accumulator (the `run_fold` seam).
//! * [`aggregate`] — the paper's reporting pipeline: outlier filtering
//!   (1.5·IQR from the median), medians, and 95 % CIs, fed by
//!   [`aggregate::MetricStats`] — flat per-metric trial buffers that retain
//!   only what a figure asks for.
//! * [`table`] — plain-text table rendering for the terminal.
//! * [`csvout`] — CSV emission for plotting.
//! * [`jsonout`] — JSON emission (`repro --json`), pinned by golden files.
//! * [`jsonin`] — the matching round-trip-exact JSON reader.
//! * [`shard`] — process-sharded sweep state (`shard_state/v1` artifacts):
//!   `repro shard` serializes per-cell accumulator buffers, `repro merge`
//!   recombines them into reports byte-identical to a single-process run.
//! * [`fsutil`] — crash-safe artifact writes (temp file + fsync + rename);
//!   every on-disk artifact goes through it.
//! * [`checkpoint`] — crash-safe long runs: the `CheckpointWriter` sweep
//!   monitor persists in-flight state as `shard_state/v1` checkpoints plus a
//!   `metrics.json` live-progress sidecar; `repro resume DIR` reloads the
//!   newest valid checkpoint and runs only the missing trials, byte-identical
//!   to an uninterrupted run.
//! * [`server`] — the `repro serve` coordinator: cuts a sweep into
//!   cost-weighted per-trial leases, hands them to pull-based workers over
//!   minimal HTTP (the `shard_state/v1` artifact *is* the wire format),
//!   folds posted results with duplicate-trial dedup, and writes the same
//!   byte-identical artifacts a single-process run would.
//! * [`worker`] — the `repro work` half: claims leases, runs exactly the
//!   leased trials through the shared engine path, POSTs artifacts back.
//! * [`options`] — the `repro` CLI options (quick vs `--full` paper grids,
//!   `--threads` / `--batch` execution knobs).
//! * [`cli`] — the `repro` entry point; the binary itself lives in the
//!   workspace root package so `cargo run --bin repro` needs no `-p` flag.

pub mod aggregate;
pub mod benchmark;
pub mod checkpoint;
pub mod cli;
pub mod csvout;
pub mod figures;
pub mod fsutil;
pub mod jsonin;
pub mod jsonout;
pub mod options;
pub mod server;
pub mod shard;
pub mod summary;
pub mod sweep;
pub mod table;
pub mod worker;

pub use options::Options;
pub use summary::TrialSummary;
