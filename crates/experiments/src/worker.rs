//! `repro work` — the pull-based sweep worker.
//!
//! Connects to a `repro serve` coordinator, claims per-trial leases, runs
//! exactly the leased trials through the same engine path every other mode
//! uses (`ShardableEntry::cells` with a sparse `missing` plan — per-trial
//! RNG derivation makes the results bit-identical to any other execution),
//! and POSTs the resulting `shard_state/v1` artifact back. Loops until the
//! coordinator answers `done`.
//!
//! The worker holds no durable state: killing one mid-lease loses nothing
//! but time (the coordinator re-issues the lease after `--lease-secs`),
//! and a worker that double-runs trials is harmless (the coordinator's
//! dedup fold discards bit-identical replays).

use crate::figures::sharding::find_shardable;
use crate::figures::shared::SweepHooks;
use crate::jsonin::Json;
use crate::options::Options;
use crate::server::http_request;
use crate::shard::ShardState;
use std::time::Duration;

/// How many consecutive failed exchanges before a worker that has *never*
/// reached the coordinator gives up.
const CONNECT_RETRIES: u32 = 25;
/// Pause between connection retries.
const RETRY_PAUSE: Duration = Duration::from_millis(200);

/// Fault-injection hook for the lease-failure tests: if set, the worker
/// sleeps this many milliseconds after claiming each lease and before
/// running it — a window in which CI kills it mid-lease.
const HOLD_ENV: &str = "REPRO_WORK_HOLD_MS";

/// One claimed lease, decoded off the wire.
struct Lease {
    id: u64,
    experiment: String,
    full: bool,
    trials: u32,
    /// Coalesced sparse plan: one `(cell, sorted trials)` entry per cell —
    /// the engine's `missing` seam requires each cell to appear once.
    plan: Vec<(usize, Vec<u32>)>,
}

/// A decoded `/lease` response: work, a pause, or the end of the run.
enum LeaseReply {
    Lease(Lease),
    Wait(Duration),
    Done,
}

/// Decodes a `/lease` response body.
fn decode_lease(body: &str) -> Result<LeaseReply, String> {
    let json = Json::parse(body)?;
    match json.field("status")?.as_str()? {
        "done" => Ok(LeaseReply::Done),
        "wait" => {
            let ms = json
                .field("retry_ms")
                .and_then(Json::as_f64)
                .unwrap_or(200.0);
            Ok(LeaseReply::Wait(Duration::from_millis(ms.max(0.0) as u64)))
        }
        "lease" => {
            let id = json.field("id")?.as_f64()? as u64;
            let experiment = json.field("experiment")?.as_str()?.to_string();
            let full = json.field("full")?.as_bool()?;
            let trials = json.field("trials")?.as_u32()?;
            let mut plan: Vec<(usize, Vec<u32>)> = Vec::new();
            for range in json.field("work")?.as_array()? {
                let triple = range.as_array()?;
                if triple.len() != 3 {
                    return Err("work ranges must be [cell, lo, hi]".to_string());
                }
                let cell = triple[0].as_u32()? as usize;
                let (lo, hi) = (triple[1].as_u32()?, triple[2].as_u32()?);
                if lo >= hi || hi > trials {
                    return Err(format!("bad trial range [{lo},{hi}) of {trials}"));
                }
                match plan.iter_mut().find(|(c, _)| *c == cell) {
                    Some((_, ts)) => ts.extend(lo..hi),
                    None => plan.push((cell, (lo..hi).collect())),
                }
            }
            for (_, ts) in &mut plan {
                ts.sort_unstable();
                ts.dedup();
            }
            plan.sort_by_key(|&(c, _)| c);
            Ok(LeaseReply::Lease(Lease {
                id,
                experiment,
                full,
                trials,
                plan,
            }))
        }
        other => Err(format!("unknown lease status {other:?}")),
    }
}

/// Runs one lease's trials and returns the artifact to POST back.
fn run_lease(lease: &Lease, opts: &Options) -> Result<String, String> {
    let entry = find_shardable(&lease.experiment).ok_or_else(|| {
        format!(
            "coordinator leased unknown experiment {:?}",
            lease.experiment
        )
    })?;
    let run_opts = Options {
        full: lease.full,
        trials: Some(lease.trials),
        threads: opts.threads,
        batch: opts.batch,
        ..Options::default()
    };
    let grid = (entry.grid)(&run_opts);
    for &(cell, _) in &lease.plan {
        if cell >= grid.cell_count() {
            return Err(format!(
                "leased cell {cell} is outside this build's {}-cell grid — \
                 coordinator and worker run different code",
                grid.cell_count()
            ));
        }
    }
    let hooks = SweepHooks {
        missing: Some(&lease.plan),
        ..SweepHooks::default()
    };
    let cells = (entry.cells)(&run_opts, &hooks);
    Ok(ShardState::from_cells(&lease.experiment, lease.full, (0, 1), &grid, &cells).to_json())
}

/// The worker loop: claim, run, report, repeat until `done`.
pub fn run_worker(opts: &Options) -> Result<(), String> {
    let addr = opts.connect.clone().expect("validated at parse time");
    let hold = std::env::var(HOLD_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    let mut failures = 0u32;
    let mut ever_connected = false;
    let mut leases_done = 0usize;
    loop {
        let response = http_request(&addr, "GET", "/lease", None);
        let (status, body) = match response {
            Ok(r) => r,
            Err(e) => {
                failures += 1;
                if !ever_connected && failures >= CONNECT_RETRIES {
                    return Err(format!("cannot reach coordinator at {addr}: {e}"));
                }
                if ever_connected {
                    // The coordinator lingers only briefly after completion;
                    // a vanished coordinator after successful exchanges
                    // almost certainly means the run finished without us.
                    println!(
                        "[work] coordinator at {addr} gone after {leases_done} leases — \
                         assuming the sweep completed"
                    );
                    return Ok(());
                }
                std::thread::sleep(RETRY_PAUSE);
                continue;
            }
        };
        ever_connected = true;
        failures = 0;
        if status != 200 {
            return Err(format!(
                "coordinator rejected lease claim ({status}): {body}"
            ));
        }
        let lease = match decode_lease(&body) {
            Ok(LeaseReply::Lease(lease)) => lease,
            Ok(LeaseReply::Wait(pause)) => {
                std::thread::sleep(pause);
                continue;
            }
            Ok(LeaseReply::Done) => {
                println!("[work] sweep complete after {leases_done} leases");
                return Ok(());
            }
            Err(e) => {
                return Err(format!("malformed lease response ({e}): {body}"));
            }
        };
        if let Some(pause) = hold {
            // Fault injection: linger before running so a test can kill us
            // mid-lease and watch the coordinator re-issue the work.
            std::thread::sleep(pause);
        }
        let trials: usize = lease.plan.iter().map(|(_, t)| t.len()).sum();
        println!(
            "[work] lease {}: {} trials across {} cells of {}",
            lease.id,
            trials,
            lease.plan.len(),
            lease.experiment
        );
        let artifact = run_lease(&lease, opts)?;
        let path = format!("/result/{}", lease.id);
        match http_request(&addr, "POST", &path, Some(&artifact)) {
            Ok((200, reply)) => {
                leases_done += 1;
                println!("[work] lease {} accepted: {reply}", lease.id);
            }
            Ok((409, reply)) => {
                // The fold rejected our results: wrong build, conflicting
                // bits. Running more leases would produce more rejections.
                return Err(format!("coordinator rejected lease {}: {reply}", lease.id));
            }
            Ok((status, reply)) => {
                return Err(format!(
                    "unexpected reply {status} to lease {}: {reply}",
                    lease.id
                ));
            }
            Err(e) => {
                // Delivery failed — the lease will expire and be re-issued;
                // our next claim round decides whether the server is gone.
                eprintln!("warning: could not deliver lease {}: {e}", lease.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_decoding_coalesces_ranges_into_one_sorted_plan_entry_per_cell() {
        let reply = decode_lease(
            "{\"status\":\"lease\",\"id\":7,\"experiment\":\"fig5\",\"full\":false,\
             \"trials\":8,\"work\":[[2,0,3],[2,3,5],[0,6,8],[0,2,4]]}",
        )
        .unwrap();
        let LeaseReply::Lease(lease) = reply else {
            panic!("expected a lease");
        };
        assert_eq!(lease.id, 7);
        assert_eq!(lease.experiment, "fig5");
        assert_eq!(
            lease.plan,
            vec![(0, vec![2, 3, 6, 7]), (2, vec![0, 1, 2, 3, 4])],
            "ranges of one cell must fuse into a single sorted plan entry"
        );

        assert!(matches!(
            decode_lease("{\"status\":\"wait\",\"retry_ms\":50}"),
            Ok(LeaseReply::Wait(p)) if p == Duration::from_millis(50)
        ));
        assert!(matches!(
            decode_lease("{\"status\":\"done\"}"),
            Ok(LeaseReply::Done)
        ));
        assert!(decode_lease("not json").is_err());
        // Degenerate and out-of-bounds ranges are rejected, not run.
        assert!(decode_lease(
            "{\"status\":\"lease\",\"id\":1,\"experiment\":\"fig5\",\"full\":false,\
             \"trials\":4,\"work\":[[0,3,9]]}"
        )
        .is_err());
    }
}
