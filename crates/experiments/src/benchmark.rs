//! The `repro bench` harness: pins the MAC hot-path performance trajectory.
//!
//! Measures single-threaded wall time per trial on the workloads that
//! dominate `repro --full` (the MAC simulator's event queue and medium
//! bookkeeping), plus microbenchmarks of those two structures in isolation.
//! Every workload routes through [`contention_sim::engine::run_trial`], so a
//! benched trial is bit-identical to the corresponding sweep trial.
//!
//! The harness compares each measurement against [`BASELINE`] — the same
//! workloads measured on the pre-overhaul simulator (`BinaryHeap` +
//! `HashSet` lazy-cancellation queue, rescan-based medium, per-trial
//! allocation of all scratch state) — and emits the whole comparison as a
//! `BENCH_mac.json` artifact so the perf trajectory is tracked in one place
//! from PR 4 forward. Absolute numbers are machine-dependent; the
//! *speedups* are the quantity the artifact exists to record.
//!
//! `--quick` shrinks samples and iteration counts to smoke-test levels: CI
//! runs it on every push to keep the harness and the JSON schema from
//! rotting, without pretending CI wall time is a measurement.

use crate::aggregate::MetricStats;
use crate::figures::Report;
use crate::jsonout::{escape, num};
use crate::options::Options;
use crate::summary::Metric;
use contention_core::algorithm::AlgorithmKind;
use contention_core::channel::ChannelModel;
use contention_core::time::Nanos;
use contention_mac::medium::{ActiveTx, Medium, TxKind, TxSource};
use contention_mac::{MacConfig, MacSim};
use contention_sim::engine::{run_trial_with, ExecPolicy, Simulator, Sweep};
use contention_sim::event::EventQueue;
use contention_slotted::dynamic::{ArrivalProcess, DynamicConfig, DynamicSim};
use contention_slotted::noisy::NoisyConfig;
use contention_slotted::windowed::WindowedConfig;
use contention_slotted::{NoisySim, WindowedSim};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Schema tag written into `BENCH_mac.json`; bump on breaking layout change.
pub const SCHEMA: &str = "bench_mac/v1";

/// Pre-overhaul reference numbers (ns per iteration), measured on this
/// repository at the PR 3 tree (commit 887e040) with the same harness,
/// single-threaded, release profile. Recorded here so every future
/// `BENCH_mac.json` carries the trajectory's origin with it.
pub const BASELINE: &[(&str, f64)] = &[
    ("mac_fig5_cw", BASELINE_MAC_FIG5),
    ("mac_fig13_trace", BASELINE_MAC_FIG13),
    ("mac_soften", BASELINE_MAC_SOFTEN),
    ("windowed_fig5_abstract", BASELINE_WINDOWED),
    ("windowed_scale_n1e5", BASELINE_WINDOWED_SCALE),
    ("noisy_soften_sampled", BASELINE_NOISY_SOFTEN),
    ("event_queue_churn", BASELINE_QUEUE),
    ("medium_busy_periods", BASELINE_MEDIUM),
    ("dynamic_saturation", BASELINE_DYN_SATURATION),
    ("dynamic_bursty_drain", BASELINE_DYN_DRAIN),
    ("sched_tail_scale8", BASELINE_SCHED_TAIL),
];
const BASELINE_MAC_FIG5: f64 = 1_320_000.0;
const BASELINE_MAC_FIG13: f64 = 55_900.0;
const BASELINE_MAC_SOFTEN: f64 = 301_500.0;
const BASELINE_WINDOWED: f64 = 2_293_000.0;
// The two windowed/noisy additions were measured at the PR 5 tree (commit
// 3345fc6), immediately before the windowed hot-path overhaul — the windowed
// loop was untouched between PR 3 and PR 5, so the trajectory origin is the
// same simulator.
const BASELINE_WINDOWED_SCALE: f64 = 39_800_000.0;
const BASELINE_NOISY_SOFTEN: f64 = 9_220_000.0;
const BASELINE_QUEUE: f64 = 1_128_000.0;
const BASELINE_MEDIUM: f64 = 88_900.0;
// The dynamic-engine workloads were measured at the PR 7 tree (commit
// f5656c0), immediately before the streaming overhaul: global `BinaryHeap`
// timer queue, fully materialised arrival schedule, per-packet `Schedule`
// state and a sorted-`Vec` latency collector.
// The drain workload runs *unit* costs on purpose: with 802.11g costs the
// overhaul also fixed the old engine's arrival handling (arrivals used to
// be postponed by busy periods), so mac-cost trials are not
// work-equivalent across the two engines and cannot pin a speedup. Unit
// costs never enter a busy period, where both engines do identical work.
const BASELINE_DYN_SATURATION: f64 = 147_263_517.0;
const BASELINE_DYN_DRAIN: f64 = 2_105_455.0;
// The scheduler-tail workload was measured at the PR 8 tree (commit
// f1575ac), immediately before the cost-aware runtime: fixed `auto_batch`
// claims from the atomic cursor, grid-order claiming, no worker-count cap,
// and a fresh `thread::scope` (8 spawns + joins) for every one of the
// workload's twenty-four sub-sweeps. The grid and trial set are identical
// on both sides — only the runtime around them changed.
const BASELINE_SCHED_TAIL: f64 = 12_419_817.0;

/// One benchmark workload. `make` builds the iteration closure fresh per
/// measurement; the closure owns its scratch arena (exactly like one engine
/// worker), so the warm-up sample populates the arena and the timed samples
/// see the engine's steady-state per-trial cost. Each call executes
/// iteration `i` and returns a checksum (kept live so the optimizer cannot
/// delete the work).
struct Workload {
    name: &'static str,
    desc: &'static str,
    /// Iterations per sample (full mode); quick mode divides this down.
    iters: u64,
    /// Minimum speedup vs [`BASELINE`] this workload must sustain (0 = no
    /// target). Full-mode `repro bench` fails acceptance below this.
    target_speedup: f64,
    make: fn() -> Box<dyn FnMut(u64) -> u64>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "mac_fig5_cw",
            desc: "MAC CW-slots trial (BEB, 64 B, n=100) — the fig3/fig5 panel workload",
            iters: 8,
            target_speedup: 0.0,
            make: || {
                let mut scratch = <MacSim as Simulator>::Scratch::default();
                let config = MacConfig::paper(AlgorithmKind::Beb, 64);
                Box::new(move |i| {
                    run_trial_with::<MacSim>(
                        "bench-mac-fig5",
                        &config,
                        100,
                        (i % 8) as u32,
                        &mut scratch,
                    )
                    .metrics
                    .cw_slots
                })
            },
        },
        Workload {
            name: "mac_fig13_trace",
            desc: "MAC trace trial (BEB, 64 B, n=20, spans recorded) — the fig13 workload",
            iters: 64,
            target_speedup: 0.0,
            make: || {
                let mut scratch = <MacSim as Simulator>::Scratch::default();
                let mut config = MacConfig::paper(AlgorithmKind::Beb, 64);
                config.capture_trace = true;
                Box::new(move |i| {
                    let run = run_trial_with::<MacSim>(
                        "bench-mac-fig13",
                        &config,
                        20,
                        (i % 8) as u32,
                        &mut scratch,
                    );
                    run.trace.map(|t| t.spans.len() as u64).unwrap_or(0)
                })
            },
        },
        Workload {
            name: "mac_soften",
            desc: "MAC softened-channel trial (BEB, 64 B, n=60, p=0.5) — the soften panel",
            iters: 16,
            target_speedup: 0.0,
            make: || {
                let mut scratch = <MacSim as Simulator>::Scratch::default();
                let config =
                    MacConfig::with_channel(AlgorithmKind::Beb, 64, ChannelModel::softened(0.5));
                Box::new(move |i| {
                    run_trial_with::<MacSim>(
                        "bench-mac-soften",
                        &config,
                        60,
                        (i % 8) as u32,
                        &mut scratch,
                    )
                    .metrics
                    .collisions
                })
            },
        },
        Workload {
            name: "windowed_fig5_abstract",
            desc: "abstract windowed trial (BEB, n=10^4) — the fig5 abstract workload",
            iters: 16,
            // Hot-path-overhaul acceptance: the fused-draw/occupancy loop
            // must keep this ≥4× over the PR 3 loop.
            target_speedup: 4.0,
            make: || {
                let mut scratch = <WindowedSim as Simulator>::Scratch::default();
                let config = WindowedConfig::abstract_model(AlgorithmKind::Beb);
                Box::new(move |i| {
                    run_trial_with::<WindowedSim>(
                        "bench-windowed",
                        &config,
                        10_000,
                        (i % 8) as u32,
                        &mut scratch,
                    )
                    .cw_slots
                })
            },
        },
        Workload {
            name: "windowed_scale_n1e5",
            desc: "abstract windowed trial (BEB, n=10^5) — the scale sweep's per-shard profile",
            iters: 4,
            target_speedup: 0.0,
            make: || {
                let mut scratch = <WindowedSim as Simulator>::Scratch::default();
                let config = WindowedConfig::abstract_model(AlgorithmKind::Beb);
                Box::new(move |i| {
                    run_trial_with::<WindowedSim>(
                        "bench-windowed-scale",
                        &config,
                        100_000,
                        (i % 4) as u32,
                        &mut scratch,
                    )
                    .cw_slots
                })
            },
        },
        Workload {
            name: "noisy_soften_sampled",
            desc: "noisy-channel trial (BEB, n=10^4, p=0.5) — the sampled resolution path",
            iters: 8,
            target_speedup: 0.0,
            make: || {
                let mut scratch = <NoisySim as Simulator>::Scratch::default();
                let config =
                    NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::softened(0.5));
                Box::new(move |i| {
                    run_trial_with::<NoisySim>(
                        "bench-noisy-soften",
                        &config,
                        10_000,
                        (i % 8) as u32,
                        &mut scratch,
                    )
                    .collisions
                })
            },
        },
        Workload {
            name: "dynamic_saturation",
            desc: "dynamic near-saturation trial (BEB, unit costs, rate 0.9) — the \
                   saturation sweep's hottest cell shape",
            iters: 10,
            // Streaming-overhaul acceptance: lazy arrivals + calendar queue
            // + histogram latencies must keep this ≥3× over the PR 7 engine.
            target_speedup: 3.0,
            make: || {
                let mut scratch = <DynamicSim as Simulator>::Scratch::default();
                let config = DynamicConfig {
                    horizon_slots: 20_000,
                    drain_slots: 20_000,
                    ..DynamicConfig::abstract_model(
                        AlgorithmKind::Beb,
                        ArrivalProcess::PoissonSingles { rate: 0.9 },
                    )
                };
                Box::new(move |i| {
                    let m = run_trial_with::<DynamicSim>(
                        "bench-dyn-sat",
                        &config,
                        0,
                        (i % 8) as u32,
                        &mut scratch,
                    );
                    m.completed.wrapping_add(m.collisions)
                })
            },
        },
        Workload {
            name: "dynamic_bursty_drain",
            desc: "dynamic bursty drain trial (BEB, unit costs, bursts of 60) — the \
                   dynamic-traffic figure's arrival shape",
            iters: 20,
            target_speedup: 3.0,
            make: || {
                let mut scratch = <DynamicSim as Simulator>::Scratch::default();
                let config = DynamicConfig::abstract_model(
                    AlgorithmKind::Beb,
                    ArrivalProcess::PoissonBursts {
                        rate: 0.000_8,
                        size: 60,
                    },
                );
                Box::new(move |i| {
                    let m = run_trial_with::<DynamicSim>(
                        "bench-dyn-drain",
                        &config,
                        0,
                        (i % 8) as u32,
                        &mut scratch,
                    );
                    m.completed.wrapping_add(m.collisions)
                })
            },
        },
        Workload {
            name: "sched_tail_scale8",
            desc: "twenty-four short 8-thread sub-sweeps over a heterogeneous windowed grid — \
                   scheduling overhead, pool reuse and tail idle",
            iters: 4,
            // Cost-aware-runtime acceptance: tapered claiming + the
            // persistent worker pool must keep this ≥1.3× over the fixed
            // auto-batch scheduler that respawned threads per sub-sweep.
            target_speedup: 1.3,
            make: || Box::new(|_| sched_tail_pass()),
        },
        Workload {
            name: "event_queue_churn",
            desc: "event queue schedule/cancel/pop churn, 4k live events",
            iters: 64,
            target_speedup: 0.0,
            make: || Box::new(|i| queue_churn(4096, i)),
        },
        Workload {
            name: "medium_busy_periods",
            desc: "medium busy-period churn, alternating clean frames and 3-way collisions",
            iters: 256,
            target_speedup: 0.0,
            make: || Box::new(|i| medium_churn(2048, i)),
        },
    ]
}

/// One pass of the scheduler-tail workload: many short 8-thread sub-sweeps
/// over a heterogeneous (scale-shaped) `n` ladder, the shape a figure run
/// presents to the runtime — per-trial cost spanning an order of magnitude
/// across the grid, and a fresh sweep (worker spin-up + join) every
/// fraction of a millisecond. What this times is the *runtime*, not the
/// simulator: claim scheduling, thread startup, and the idle tail behind
/// the heaviest cells. The grid is deliberately light so the runtime's
/// fixed per-sub-sweep costs are the signal, not the noise.
fn sched_tail_pass() -> u64 {
    const SUB_SWEEPS: usize = 24;
    let ns: Vec<u32> = vec![25, 50, 100, 200, 400];
    let algorithms = vec![AlgorithmKind::Beb, AlgorithmKind::Sawtooth];
    // The cost table the production fold path (fold_grid) would attach for
    // a windowed grid, driving tapered claims and heaviest-first order.
    let costs: Vec<f64> = algorithms
        .iter()
        .flat_map(|_| {
            ns.iter()
                .map(|&n| contention_sim::sched::CostSpec::NLogN.cost(n))
        })
        .collect();
    let mut checksum = 0u64;
    for _ in 0..SUB_SWEEPS {
        let cells = Sweep::<WindowedSim> {
            experiment: "bench-sched-tail",
            config: WindowedConfig::abstract_model(AlgorithmKind::Beb),
            algorithms: algorithms.clone(),
            ns: ns.clone(),
            trials: 2,
            exec: ExecPolicy::threads(8),
        }
        .run_fold_monitored(
            MetricStats::collector(&[Metric::CwSlots]),
            None,
            None,
            Some(&costs),
        );
        for cell in &cells {
            for sample in cell.acc.raw_samples() {
                for v in sample.raw() {
                    checksum = checksum.wrapping_add(v.to_bits());
                }
            }
        }
    }
    checksum
}

/// Schedule `live` events, then repeatedly pop one + schedule one + cancel
/// one — the MAC simulator's steady-state queue traffic shape.
fn queue_churn(live: u64, salt: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    // Deterministic pseudo-times (keep the queue well mixed, no RNG needed).
    let mut state = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next_time = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut tokens = Vec::with_capacity(live as usize);
    for p in 0..live {
        tokens.push(q.schedule_after(Nanos(next_time()), p));
    }
    let mut checksum = 0u64;
    for p in 0..live {
        let (at, payload) = q.pop().expect("queue is non-empty");
        checksum = checksum.wrapping_add(at.as_nanos()).wrapping_add(payload);
        let t = q.schedule_after(Nanos(next_time()), p);
        // Cancel a mid-age token half the time, the fresh one otherwise.
        let victim = if p % 2 == 0 {
            tokens[(p as usize + tokens.len() / 2) % tokens.len()]
        } else {
            t
        };
        if q.cancel(victim) {
            checksum = checksum.wrapping_add(1);
        }
        let idx = p as usize % tokens.len();
        tokens[idx] = t;
    }
    while q.pop().is_some() {}
    checksum
}

/// Alternate clean singleton frames with 3-way collisions — the two busy
/// period shapes that dominate a contended MAC run.
fn medium_churn(periods: u64, salt: u64) -> u64 {
    let mut m = Medium::new();
    let mut id = (salt as u32).wrapping_mul(1 << 20);
    let mut t = 0u64;
    let mut checksum = 0u64;
    let frame = |id: u32, station: u32, start: u64, end: u64| ActiveTx {
        id,
        source: TxSource::Station(station),
        kind: TxKind::Data,
        for_station: None,
        tag: 0,
        start: Nanos(start),
        end: Nanos(end),
        corrupted: false,
        overlaps: 0,
    };
    for p in 0..periods {
        if p % 2 == 0 {
            m.start_tx(frame(id, 0, t, t + 10));
            let (tx, period) = m.end_tx(id, Nanos(t + 10));
            checksum += u64::from(!tx.corrupted) + u64::from(period.is_some());
            id += 1;
        } else {
            for s in 0..3u32 {
                m.start_tx(frame(id + s, s, t, t + 10));
            }
            for s in 0..3u32 {
                let (tx, period) = m.end_tx(id + s, Nanos(t + 10));
                checksum += u64::from(tx.corrupted)
                    + period.map(|p| p.corrupted_contenders as u64).unwrap_or(0);
            }
            id += 3;
        }
        t += 20;
    }
    checksum
}

/// One measured workload result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: &'static str,
    pub desc: &'static str,
    pub samples: usize,
    pub iters_per_sample: u64,
    pub ns_per_iter: f64,
    pub baseline_ns_per_iter: Option<f64>,
    /// Minimum speedup this workload must sustain (0 = no target).
    pub target_speedup: f64,
}

impl BenchResult {
    /// Baseline time over current time (> 1 means faster than pre-overhaul).
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_ns_per_iter.map(|b| b / self.ns_per_iter)
    }

    /// Whether the measurement clears its acceptance target (vacuously true
    /// without one).
    pub fn meets_target(&self) -> bool {
        self.target_speedup <= 0.0 || self.speedup().is_some_and(|s| s >= self.target_speedup)
    }
}

/// Measures one workload: one warm-up sample, then `samples` timed samples;
/// the reported figure is the *fastest* sample's ns/iteration. The
/// workloads are deterministic and allocation-free in steady state, so
/// their true cost is a constant per machine — external interference (a
/// shared or virtualized host, another tenant's burst) only ever adds
/// time, making the minimum the estimator least polluted by neighbors and
/// the only one stable enough to gate acceptance (`target_speedup`) on.
/// (The recorded baselines were measured as medians on an otherwise-idle
/// machine, where median and min agree to a few percent.)
fn measure(w: &Workload, samples: usize, iters: u64) -> BenchResult {
    let mut run = (w.make)();
    let mut checksum = 0u64;
    let mut timings: Vec<f64> = Vec::with_capacity(samples);
    for sample in 0..=samples {
        let start = Instant::now();
        for i in 0..iters {
            checksum = checksum.wrapping_add(run(i));
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if sample > 0 {
            timings.push(elapsed / iters as f64);
        }
    }
    std::hint::black_box(checksum);
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let baseline = BASELINE
        .iter()
        .find(|(n, _)| *n == w.name)
        .map(|&(_, ns)| ns);
    BenchResult {
        name: w.name,
        desc: w.desc,
        samples,
        iters_per_sample: iters,
        ns_per_iter: timings[0],
        baseline_ns_per_iter: baseline,
        target_speedup: w.target_speedup,
    }
}

/// Runs every workload. Quick mode cuts iteration counts and samples to
/// smoke-test levels.
pub fn run_all(quick: bool) -> Vec<BenchResult> {
    let samples = if quick { 2 } else { 7 };
    workloads()
        .iter()
        .map(|w| {
            let iters = if quick { (w.iters / 8).max(1) } else { w.iters };
            measure(w, samples, iters)
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders `BENCH_mac.json` (round-trip-exact numbers via [`crate::jsonout`],
/// schema-stable keys).
pub fn bench_json(results: &[BenchResult], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    out.push_str(
        "  \"baseline_provenance\": \"pre-overhaul simulator at PR 3 (commit 887e040): \
         BinaryHeap+HashSet event queue, rescanning medium, per-trial allocation of all \
         scratch state (the engine then had no arena, so trials were measured fresh)\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", escape(r.name));
        let _ = writeln!(out, "      \"desc\": \"{}\",", escape(r.desc));
        let _ = writeln!(out, "      \"samples\": {},", r.samples);
        let _ = writeln!(out, "      \"iters_per_sample\": {},", r.iters_per_sample);
        let _ = writeln!(out, "      \"ns_per_iter\": {},", num(r.ns_per_iter));
        let _ = writeln!(
            out,
            "      \"baseline_ns_per_iter\": {},",
            r.baseline_ns_per_iter.map(num).unwrap_or("null".into())
        );
        let _ = writeln!(
            out,
            "      \"speedup\": {},",
            r.speedup().map(num).unwrap_or("null".into())
        );
        let _ = writeln!(
            out,
            "      \"target_speedup\": {}",
            if r.target_speedup > 0.0 {
                num(r.target_speedup)
            } else {
                "null".into()
            }
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `repro bench` subcommand: measure, report, and (with `--json`) write
/// the `BENCH_mac.json` artifact into `--out DIR` (default: the current
/// directory). An unwritable destination is an `Err`, not a panic — and it
/// is detected *before* the measurement pass, not after it.
pub fn run(opts: &Options) -> Result<Report, String> {
    let quick = opts.quick;
    // Probe the artifact destination up front so a bad --out cannot waste a
    // full measurement pass (same fail-fast rule as the figure runners).
    let json_path = if opts.json {
        let dir = opts
            .out_dir
            .clone()
            .unwrap_or_else(|| Path::new(".").to_path_buf());
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create bench output dir {}: {e}", dir.display()))?;
        let path = dir.join("BENCH_mac.json");
        std::fs::write(&path, "").map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Some(path)
    } else {
        None
    };
    let results = run_all(quick);
    let mut report = Report::new(if quick {
        "Benchmarks — MAC hot path (quick smoke mode; timings are not measurements)"
    } else {
        "Benchmarks — MAC hot path vs pre-overhaul baseline"
    });
    report.line(format!(
        "{:<24} {:>12} {:>14} {:>9}",
        "workload", "ns/iter", "baseline", "speedup"
    ));
    for r in &results {
        report.line(format!(
            "{:<24} {:>12} {:>14} {:>9}",
            r.name,
            fmt_ns(r.ns_per_iter),
            r.baseline_ns_per_iter.map(fmt_ns).unwrap_or("-".into()),
            r.speedup()
                .map(|s| format!("{s:.2}×"))
                .unwrap_or("-".into()),
        ));
    }
    if let Some(path) = json_path {
        std::fs::write(&path, bench_json(&results, quick))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        report.line(format!("\nwrote {}", path.display()));
    }
    // Acceptance targets are enforced in full mode only — quick mode is a
    // schema smoke test, not a measurement, so a noisy CI box cannot flake
    // the gate. (CI separately checks a relaxed floor on the quick numbers.)
    let missed: Vec<&BenchResult> = results.iter().filter(|r| !r.meets_target()).collect();
    if !missed.is_empty() {
        let mut msg = String::from("bench acceptance failed:");
        for r in &missed {
            let _ = write!(
                msg,
                " {} at {} (target ≥{:.1}×);",
                r.name,
                r.speedup()
                    .map(|s| format!("{s:.2}×"))
                    .unwrap_or("-".into()),
                r.target_speedup,
            );
        }
        if quick {
            report.line(format!("\nnote (quick mode, not enforced): {msg}"));
        } else {
            // Show the measurements before failing — a missed target is
            // exactly when the table matters most.
            report.print();
            return Err(msg);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_measures_every_workload() {
        let results = run_all(true);
        assert_eq!(results.len(), workloads().len());
        for r in &results {
            assert!(r.ns_per_iter > 0.0, "{}", r.name);
            assert!(
                r.baseline_ns_per_iter.is_some(),
                "{} lacks baseline",
                r.name
            );
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let results = run_all(true);
        let json = bench_json(&results, true);
        for key in [
            "\"schema\": \"bench_mac/v1\"",
            "\"mode\": \"quick\"",
            "\"baseline_provenance\"",
            "\"workloads\"",
            "\"ns_per_iter\"",
            "\"baseline_ns_per_iter\"",
            "\"speedup\"",
            "\"target_speedup\"",
            "\"mac_fig5_cw\"",
            "\"mac_fig13_trace\"",
            "\"windowed_scale_n1e5\"",
            "\"noisy_soften_sampled\"",
            "\"dynamic_saturation\"",
            "\"dynamic_bursty_drain\"",
            "\"sched_tail_scale8\"",
        ] {
            assert!(json.contains(key), "missing {key} in\n{json}");
        }
    }

    #[test]
    fn workload_checksums_are_deterministic() {
        // Same iteration on a cold and a warmed arena: the arena may only
        // move memory, never results.
        for w in workloads() {
            let mut cold = (w.make)();
            let mut warmed = (w.make)();
            warmed(0);
            warmed(5);
            assert_eq!(cold(3), warmed(3), "{}", w.name);
        }
    }

    /// Manual measurement helper (not a test of anything): prints the
    /// full-mode estimate for the scheduler-tail workload so baselines can
    /// be recorded from the exact harness that will enforce them.
    #[test]
    #[ignore = "manual baseline measurement helper"]
    fn measure_sched_tail() {
        let all = workloads();
        let w = all
            .iter()
            .find(|w| w.name == "sched_tail_scale8")
            .expect("workload exists");
        let r = measure(w, 7, w.iters);
        eprintln!("sched_tail_scale8: {} ns/iter", r.ns_per_iter);
    }

    #[test]
    fn baseline_covers_every_workload_exactly_once() {
        let names: Vec<&str> = workloads().iter().map(|w| w.name).collect();
        assert_eq!(BASELINE.len(), names.len());
        for (name, ns) in BASELINE {
            assert!(names.contains(name), "stale baseline entry {name}");
            assert!(*ns > 0.0);
        }
    }
}
