//! Crash-safe long runs: periodic checkpoints, resume, live metrics.
//!
//! A checkpointed run attaches a [`CheckpointWriter`] to the engine's
//! snapshot seam (`contention_sim::monitor`). On each snapshot the writer
//! serializes the in-flight accumulator state as a plain `shard_state/v1`
//! artifact — the same format `repro shard` emits, with shard coordinates
//! `(0, 1)` and holes (`null`) for trials the snapshot's ragged cut missed —
//! into `<out>/checkpoints/`, atomically (`*.tmp` + fsync + rename), under a
//! monotonically increasing sequence number, with a `latest` pointer file
//! naming the newest one. A `metrics.json` sidecar (`sweep_metrics/v2`)
//! lands in `<out>` on the same cadence: the machine-readable counterpart to
//! the TTY progress meter. Since v2 the sidecar reports `work_done` /
//! `work_total` in the grid's [`CostSpec`](contention_sim::sched::CostSpec)
//! units and derives `eta_secs` from the *work* rate, so the ETA no longer
//! lies when the remaining cells are much heavier (or lighter) than the
//! finished ones.
//!
//! `repro resume <out>` loads the newest valid checkpoint (pointer first,
//! newest-valid scan as fallback — a torn pointer or artifact is skipped,
//! never fatal), computes the [`missing_work`] plan, runs *only* those
//! trials, and merges them into the loaded state. Because the per-trial RNG
//! is position-addressed, the resumed report is byte-identical to an
//! uninterrupted run — `tests/checkpoint_resume.rs` pins this against the
//! committed golden.
//!
//! Checkpoint I/O must never kill the run it protects: a failed write warns
//! on stderr once and the sweep continues; the next snapshot retries.

use crate::aggregate::{MetricStats, StatsCell};
use crate::fsutil;
use crate::jsonin::Json;
use crate::jsonout::{escape, num};
use crate::shard::{GridMeta, ShardState, SHARD_SUFFIX};
use contention_sim::monitor::{SweepMonitor, SweepSnapshot};
use contention_sim::sched::CostModel;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Schema tag of the `metrics.json` sidecar.
pub const METRICS_SCHEMA: &str = "sweep_metrics/v2";

/// Subdirectory of the run's `--out` dir that holds checkpoints.
pub const CHECKPOINT_DIR: &str = "checkpoints";

/// Pointer file inside [`CHECKPOINT_DIR`] naming the newest checkpoint.
pub const LATEST_FILE: &str = "latest";

/// File name of the live-metrics sidecar inside the `--out` dir.
pub const METRICS_FILE: &str = "metrics.json";

/// How many checkpoints to keep; older ones are pruned best-effort.
const RETAIN: usize = 3;

/// The artifact name of checkpoint `seq` for `experiment`. Zero-padding
/// keeps lexicographic and numeric order aligned for human `ls`-ing; the
/// loader parses the number and does not rely on it.
pub fn checkpoint_file_name(experiment: &str, seq: u64) -> String {
    format!("{experiment}.ckpt{seq:06}{SHARD_SUFFIX}")
}

/// The sequence number encoded in a checkpoint file name, if any.
fn seq_of_file(name: &str) -> Option<u64> {
    let rest = name.strip_suffix(SHARD_SUFFIX)?;
    let at = rest.rfind(".ckpt")?;
    rest[at + ".ckpt".len()..].parse().ok()
}

/// Serializes sweep snapshots into atomic checkpoint artifacts plus the
/// `metrics.json` sidecar. Attached to a run via
/// [`SweepHooks`](crate::figures::shared::SweepHooks)`::monitor`.
pub struct CheckpointWriter {
    out_dir: PathBuf,
    ckpt_dir: PathBuf,
    experiment: String,
    full: bool,
    grid: GridMeta,
    /// Already-recorded state a resume run starts from; merged into every
    /// checkpoint so a second crash loses nothing.
    base: Vec<StatsCell>,
    /// Trials the base already holds (counted per cell as the minimum across
    /// metric buffers, matching `ShardState::missing`).
    base_trials: usize,
    /// Cost-weighted work the base already holds — subtracted from the
    /// snapshot's work before computing the work *rate*, since the base's
    /// trials did not run in this process's elapsed time.
    base_work: f64,
    /// Next sequence number to write (continues past existing checkpoints).
    seq: AtomicU64,
    warned: AtomicBool,
}

impl CheckpointWriter {
    /// A writer for a fresh checkpointed run into `out_dir`. Creates
    /// `<out_dir>/checkpoints/`; sequence numbers continue past any
    /// checkpoints already there.
    pub fn new(
        out_dir: &Path,
        experiment: &str,
        full: bool,
        grid: GridMeta,
    ) -> Result<CheckpointWriter, String> {
        let ckpt_dir = out_dir.join(CHECKPOINT_DIR);
        fsutil::ensure_dir(&ckpt_dir)?;
        let mut next_seq = 0;
        let entries = fs::read_dir(&ckpt_dir)
            .map_err(|e| format!("cannot read {}: {e}", ckpt_dir.display()))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| format!("cannot read an entry of {}: {e}", ckpt_dir.display()))?;
            if let Some(seq) = entry.file_name().to_str().and_then(seq_of_file) {
                next_seq = next_seq.max(seq + 1);
            }
        }
        Ok(CheckpointWriter {
            out_dir: out_dir.to_path_buf(),
            ckpt_dir,
            experiment: experiment.to_string(),
            full,
            grid,
            base: Vec::new(),
            base_trials: 0,
            base_work: 0.0,
            seq: AtomicU64::new(next_seq),
            warned: AtomicBool::new(false),
        })
    }

    /// Folds an already-loaded state (the checkpoint a resume starts from)
    /// into every future checkpoint, so an interrupted *resume* still
    /// leaves a checkpoint holding everything recorded so far.
    pub fn with_base(mut self, base: ShardState) -> CheckpointWriter {
        assert_eq!(base.grid, self.grid, "base state must match the run grid");
        self.base_trials = recorded_trials(&base);
        self.base = base.into_cells();
        self.base_work = self.work_of(&self.base);
        self
    }

    /// The sequence number the next checkpoint will carry.
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Cost-weighted work the given cells hold, in the grid's cost units: a
    /// trial counts once every metric buffer records it (the
    /// [`recorded_trials`] rule), weighted by its cell's per-trial cost.
    fn work_of(&self, cells: &[StatsCell]) -> f64 {
        cells
            .iter()
            .map(|c| {
                let done = c
                    .acc
                    .raw_samples()
                    .iter()
                    .map(|s| s.raw().iter().filter(|v| !v.is_nan()).count())
                    .min()
                    .unwrap_or(0);
                done as f64 * self.grid.cost.trial_cost(c.algorithm, c.n)
            })
            .sum()
    }

    fn write_snapshot(&self, snap: &SweepSnapshot<MetricStats>) -> Result<(), String> {
        let cells = merge_cells(&self.grid, &self.base, &snap.cells)?;
        let state = ShardState::from_cells(&self.experiment, self.full, (0, 1), &self.grid, &cells);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let name = checkpoint_file_name(&self.experiment, seq);
        fsutil::write_atomic(&self.ckpt_dir.join(&name), state.to_json().as_bytes())?;
        fsutil::write_atomic(
            &self.ckpt_dir.join(LATEST_FILE),
            format!("{name}\n").as_bytes(),
        )?;
        self.prune(seq);

        let trials_done = self.base_trials + snap.completed_trials;
        let trials_total = self.base_trials + snap.total_trials;
        let elapsed_secs = snap.elapsed.as_secs_f64();
        let rate = guarded_rate(snap.completed_trials as f64, elapsed_secs);
        // ETA from the cost-weighted work rate of *this run's* trials (the
        // base was recorded in an earlier process; its work contributes no
        // rate information): remaining heavy cells weigh in as heavy.
        let work_done = self.work_of(&cells);
        let work_total: f64 = self.grid.cell_costs().iter().sum();
        let work_rate = guarded_rate((work_done - self.base_work).max(0.0), elapsed_secs);
        // Remaining work of zero — finished, or a degenerate zero-cost grid
        // — is an ETA of zero regardless of the (possibly unknowable) rate.
        let work_left = (work_total - work_done).max(0.0);
        let eta_secs = if work_left <= 0.0 {
            0.0
        } else {
            guarded_rate(work_left, work_rate)
        };
        let doc = MetricsDoc {
            experiment: self.experiment.clone(),
            cells_done: cells.iter().filter(|c| c.acc.is_complete()).count(),
            cells_total: self.grid.cell_count(),
            trials_done,
            trials_total,
            work_done,
            work_total,
            elapsed_secs,
            trials_per_sec: rate,
            trials_per_sec_per_worker: guarded_rate(rate, snap.workers.max(1) as f64),
            workers: snap.workers,
            eta_secs,
            checkpoint_seq: seq,
            finished: snap.finished,
        };
        fsutil::write_atomic(&self.out_dir.join(METRICS_FILE), doc.to_json().as_bytes())
    }

    /// Best-effort removal of checkpoints older than the [`RETAIN`] newest.
    /// Failures are ignored: pruning is hygiene, not correctness.
    fn prune(&self, newest: u64) {
        let Ok(entries) = fs::read_dir(&self.ckpt_dir) else {
            return;
        };
        for entry in entries.flatten() {
            if let Some(seq) = entry.file_name().to_str().and_then(seq_of_file) {
                if seq + (RETAIN as u64) <= newest {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

impl SweepMonitor<MetricStats> for CheckpointWriter {
    /// Persists one snapshot. Never panics and never propagates: checkpoint
    /// I/O failing must not take down the sweep it protects. The first
    /// failure warns on stderr; later snapshots keep retrying silently.
    fn snapshot(&self, snap: SweepSnapshot<MetricStats>) {
        if let Err(e) = self.write_snapshot(&snap) {
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: checkpoint write failed: {e} (run continues; \
                     the next snapshot retries)"
                );
            }
        }
    }
}

/// Denominators below this are "no time / no work observed yet", not a
/// measurement — a first snapshot can land within the clock's resolution
/// of the start, and a zero-cost grid has nothing to rate.
const RATE_EPS: f64 = 1e-9;

/// `numer / denom` when that is a meaningful finite rate; NaN — rendered
/// `null` in `sweep_metrics/v2` — otherwise. Guards every rate and ETA in
/// the sidecar: near-zero elapsed time, a `work_total` of zero, and a NaN
/// propagating through a numerator must all degrade to `null`, never to
/// `NaN`/`inf` text, because the work-server re-serves the file verbatim
/// to clients that may be stricter JSON parsers than ours.
fn guarded_rate(numer: f64, denom: f64) -> f64 {
    let measurable = denom.is_finite() && denom > RATE_EPS && numer.is_finite();
    if !measurable {
        return f64::NAN;
    }
    let rate = numer / denom;
    if rate.is_finite() {
        rate
    } else {
        f64::NAN
    }
}

/// Base ∪ fresh, cell-merged into canonical grid order — the reassembly
/// step shared by checkpoint snapshots (base = the state a resume loaded,
/// fresh = the in-flight ragged cut) and `repro resume`'s final fold
/// (fresh = the executed missing-work plan). Cells present in neither are
/// omitted — the artifact format tolerates missing cells.
pub fn merge_cells(
    grid: &GridMeta,
    base: &[StatsCell],
    fresh: &[StatsCell],
) -> Result<Vec<StatsCell>, String> {
    let mut merged = Vec::new();
    for &alg in &grid.algorithms {
        for &n in &grid.ns {
            let find = |cells: &[StatsCell]| -> Option<MetricStats> {
                cells
                    .iter()
                    .find(|c| c.algorithm == alg && c.n == n)
                    .map(|c| c.acc.clone())
            };
            let acc = match (find(base), find(fresh)) {
                (Some(mut b), Some(s)) => {
                    b.try_merge(s)
                        .map_err(|e| format!("cell ({alg}, n={n}): {e}"))?;
                    Some(b)
                }
                (b, s) => b.or(s),
            };
            if let Some(acc) = acc {
                merged.push(StatsCell {
                    algorithm: alg,
                    n,
                    acc,
                });
            }
        }
    }
    Ok(merged)
}

/// Trials a state has fully recorded, counted per cell as the minimum
/// across metric buffers (a trial counts only when every metric holds it).
fn recorded_trials(state: &ShardState) -> usize {
    state
        .cells
        .iter()
        .map(|cell| {
            cell.samples
                .iter()
                .map(|s| s.iter().filter(|v| !v.is_nan()).count())
                .min()
                .unwrap_or(0)
        })
        .sum()
}

/// The resume work plan: for each canonical grid-cell index, the trials the
/// state has not recorded — exactly the `missing` argument of
/// `Sweep::run_fold_monitored`. Cells with nothing missing are omitted; a
/// complete state yields an empty plan.
///
/// A trial recorded for only *some* of a cell's metrics cannot have come
/// from this pipeline (trials record all metrics atomically under the cell
/// lock) and is rejected as a corrupt artifact rather than re-run — re-running
/// it would double-record the metrics that are present.
pub fn missing_work(state: &ShardState) -> Result<Vec<(usize, Vec<u32>)>, String> {
    let trials = state.grid.trials;
    let mut plan = Vec::new();
    let mut index = 0usize;
    for &alg in &state.grid.algorithms {
        for &n in &state.grid.ns {
            let cell = state.cells.iter().find(|c| c.algorithm == alg && c.n == n);
            let mut missing: Vec<u32> = Vec::new();
            match cell {
                None => missing.extend(0..trials),
                Some(cell) => {
                    for t in 0..trials as usize {
                        let holes = cell.samples.iter().filter(|s| s[t].is_nan()).count();
                        if holes == cell.samples.len() {
                            missing.push(t as u32);
                        } else if holes > 0 {
                            return Err(format!(
                                "cell ({alg}, n={n}) trial {t} is recorded for only some \
                                 metrics — corrupt artifact"
                            ));
                        }
                    }
                }
            }
            if !missing.is_empty() {
                plan.push((index, missing));
            }
            index += 1;
        }
    }
    Ok(plan)
}

/// What [`load_latest`] recovered: the state, its sequence number, and any
/// recovery warnings the caller should surface (a dangling `latest`
/// pointer, checkpoints skipped as torn). Warnings are non-fatal by
/// definition — a valid checkpoint was still found — but silent fallback
/// hid real damage (a pruned pointer target means the pointer write and
/// the prune raced, or someone deleted artifacts by hand), so the caller
/// is expected to print them.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    pub state: ShardState,
    pub seq: u64,
    pub warnings: Vec<String>,
}

/// Loads the newest valid checkpoint under `<out_dir>/checkpoints/` and its
/// sequence number. The `latest` pointer is tried first; if it is missing,
/// torn, or names an unreadable/unparseable artifact, every checkpoint in
/// the directory is tried newest-first (staged `*.tmp` files never match
/// the artifact suffix, so a write killed mid-stage is invisible). Falling
/// back is never silent: each pointer or artifact problem stepped over on
/// the way to a good checkpoint lands in
/// [`warnings`](LoadedCheckpoint::warnings), file names included.
pub fn load_latest(out_dir: &Path) -> Result<LoadedCheckpoint, String> {
    let ckpt_dir = out_dir.join(CHECKPOINT_DIR);
    if !ckpt_dir.is_dir() {
        return Err(format!(
            "{} does not exist — was this run started with --checkpoint?",
            ckpt_dir.display()
        ));
    }
    let mut warnings = Vec::new();
    let pointer_path = ckpt_dir.join(LATEST_FILE);
    match fs::read_to_string(&pointer_path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No pointer at all — a run interrupted before its first
            // checkpoint completed the pointer write. The scan below is
            // the normal path, not a recovery; nothing to warn about.
        }
        Err(e) => warnings.push(format!(
            "cannot read checkpoint pointer {}: {e} — recovering from the \
             newest surviving checkpoint",
            pointer_path.display()
        )),
        Ok(pointer) => {
            let name = pointer.trim();
            match seq_of_file(name) {
                None => warnings.push(format!(
                    "checkpoint pointer {} names {name:?}, which is not a \
                     checkpoint file name — recovering from the newest \
                     surviving checkpoint",
                    pointer_path.display()
                )),
                Some(seq) => match load_checkpoint(&ckpt_dir.join(name)) {
                    Ok((state, _)) => {
                        return Ok(LoadedCheckpoint {
                            state,
                            seq,
                            warnings,
                        })
                    }
                    Err(e) => warnings.push(format!(
                        "checkpoint pointer {} dangles ({e}) — recovering \
                         from the newest surviving checkpoint",
                        pointer_path.display()
                    )),
                },
            }
        }
    }
    // Pointer unusable — scan for the newest checkpoint that parses.
    let entries =
        fs::read_dir(&ckpt_dir).map_err(|e| format!("cannot read {}: {e}", ckpt_dir.display()))?;
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| format!("cannot read an entry of {}: {e}", ckpt_dir.display()))?;
        if let Some(seq) = entry.file_name().to_str().and_then(seq_of_file) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    let mut failures = Vec::new();
    for (seq, path) in found {
        match load_checkpoint(&path) {
            Ok((state, _)) => {
                return Ok(LoadedCheckpoint {
                    state,
                    seq,
                    warnings,
                })
            }
            Err(e) => {
                warnings.push(format!("skipping torn checkpoint: {e}"));
                failures.push(e);
            }
        }
    }
    if failures.is_empty() {
        Err(format!("no checkpoints in {}", ckpt_dir.display()))
    } else {
        Err(format!(
            "no valid checkpoint in {}:\n  {}",
            ckpt_dir.display(),
            failures.join("\n  ")
        ))
    }
}

fn load_checkpoint(path: &Path) -> Result<(ShardState, PathBuf), String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let state = ShardState::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((state, path.to_path_buf()))
}

/// The `metrics.json` document (`sweep_metrics/v2`): a point-in-time view
/// of a checkpointed run for dashboards and the future work-server.
/// Unknown-yet quantities (`trials_per_sec` before any trial lands,
/// `eta_secs`) are NaN in memory and `null` on disk. v2 added `work_done` /
/// `work_total` (cost-weighted progress in the grid's cost-model units) and
/// made `eta_secs` work-rate-based.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    pub experiment: String,
    pub cells_done: usize,
    pub cells_total: usize,
    pub trials_done: usize,
    pub trials_total: usize,
    pub work_done: f64,
    pub work_total: f64,
    pub elapsed_secs: f64,
    pub trials_per_sec: f64,
    pub trials_per_sec_per_worker: f64,
    pub workers: usize,
    pub eta_secs: f64,
    pub checkpoint_seq: u64,
    pub finished: bool,
}

impl MetricsDoc {
    /// Renders the sidecar document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(METRICS_SCHEMA)));
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str(&format!("  \"cells_done\": {},\n", self.cells_done));
        out.push_str(&format!("  \"cells_total\": {},\n", self.cells_total));
        out.push_str(&format!("  \"trials_done\": {},\n", self.trials_done));
        out.push_str(&format!("  \"trials_total\": {},\n", self.trials_total));
        out.push_str(&format!("  \"work_done\": {},\n", num(self.work_done)));
        out.push_str(&format!("  \"work_total\": {},\n", num(self.work_total)));
        out.push_str(&format!(
            "  \"elapsed_secs\": {},\n",
            num(self.elapsed_secs)
        ));
        out.push_str(&format!(
            "  \"trials_per_sec\": {},\n",
            num(self.trials_per_sec)
        ));
        out.push_str(&format!(
            "  \"trials_per_sec_per_worker\": {},\n",
            num(self.trials_per_sec_per_worker)
        ));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"eta_secs\": {},\n", num(self.eta_secs)));
        out.push_str(&format!("  \"checkpoint_seq\": {},\n", self.checkpoint_seq));
        out.push_str(&format!("  \"finished\": {}\n", self.finished));
        out.push_str("}\n");
        out
    }

    /// Parses a sidecar document, validating the schema tag.
    pub fn parse(text: &str) -> Result<MetricsDoc, String> {
        let v = Json::parse(text)?;
        let schema = v.field("schema")?.as_str()?;
        if schema != METRICS_SCHEMA {
            return Err(format!(
                "unsupported metrics schema {schema:?} (expected {METRICS_SCHEMA:?})"
            ));
        }
        let count = |key: &str| -> Result<usize, String> { Ok(v.field(key)?.as_u32()? as usize) };
        Ok(MetricsDoc {
            experiment: v.field("experiment")?.as_str()?.to_string(),
            cells_done: count("cells_done")?,
            cells_total: count("cells_total")?,
            trials_done: count("trials_done")?,
            trials_total: count("trials_total")?,
            work_done: v.field("work_done")?.as_f64()?,
            work_total: v.field("work_total")?.as_f64()?,
            elapsed_secs: v.field("elapsed_secs")?.as_f64()?,
            trials_per_sec: v.field("trials_per_sec")?.as_f64()?,
            trials_per_sec_per_worker: v.field("trials_per_sec_per_worker")?.as_f64()?,
            workers: count("workers")?,
            eta_secs: v.field("eta_secs")?.as_f64()?,
            checkpoint_seq: v.field("checkpoint_seq")?.as_u32()? as u64,
            finished: v.field("finished")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Metric;
    use contention_core::algorithm::AlgorithmKind;
    use contention_stats::stream::StreamingSample;
    use std::time::Duration;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_grid() -> GridMeta {
        GridMeta {
            algorithms: vec![AlgorithmKind::Beb],
            ns: vec![10, 20],
            trials: 2,
            metrics: vec![Metric::CwSlots],
            // Linear so the work-weighted metrics are distinguishable from
            // plain trial counts: n=20 trials weigh twice n=10 trials.
            cost: contention_sim::sched::CostSpec::LinearN,
        }
    }

    fn cell(n: u32, samples: Vec<f64>) -> StatsCell {
        StatsCell {
            algorithm: AlgorithmKind::Beb,
            n,
            acc: MetricStats::from_parts(
                vec![Metric::CwSlots],
                vec![StreamingSample::from_raw(samples)],
            ),
        }
    }

    fn snap(cells: Vec<StatsCell>, done: usize, finished: bool) -> SweepSnapshot<MetricStats> {
        SweepSnapshot {
            cells,
            completed_trials: done,
            total_trials: 4,
            elapsed: Duration::from_secs(2),
            workers: 2,
            finished,
        }
    }

    #[test]
    fn metrics_doc_round_trips_including_null_eta() {
        let doc = MetricsDoc {
            experiment: "fig5".into(),
            cells_done: 3,
            cells_total: 8,
            trials_done: 7,
            trials_total: 16,
            work_done: 120.5,
            work_total: 480.0,
            elapsed_secs: 1.25,
            trials_per_sec: 5.6,
            trials_per_sec_per_worker: 2.8,
            workers: 2,
            eta_secs: f64::NAN,
            checkpoint_seq: 4,
            finished: false,
        };
        let back = MetricsDoc::parse(&doc.to_json()).unwrap();
        assert!(back.eta_secs.is_nan(), "null must read back as NaN");
        assert_eq!(back.trials_per_sec.to_bits(), doc.trials_per_sec.to_bits());
        assert_eq!(
            MetricsDoc {
                eta_secs: 0.0,
                ..back
            },
            MetricsDoc {
                eta_secs: 0.0,
                ..doc
            }
        );
    }

    #[test]
    fn metrics_parse_rejects_wrong_schema() {
        let text = r#"{"schema": "bench/v1"}"#;
        let err = MetricsDoc::parse(text).unwrap_err();
        assert!(err.contains("unsupported metrics schema"), "{err}");
    }

    #[test]
    fn missing_work_lists_holes_and_rejects_partial_metric_trials() {
        let grid = tiny_grid();
        // Cell n=10 complete, n=20 missing trial 1.
        let state = ShardState::from_cells(
            "t",
            false,
            (0, 1),
            &grid,
            &[cell(10, vec![1.0, 2.0]), cell(20, vec![3.0, f64::NAN])],
        );
        assert_eq!(missing_work(&state).unwrap(), vec![(1, vec![1])]);

        // A whole cell absent → all its trials missing.
        let state = ShardState::from_cells("t", false, (0, 1), &grid, &[cell(10, vec![1.0, 2.0])]);
        assert_eq!(missing_work(&state).unwrap(), vec![(1, vec![0, 1])]);

        // Complete state → empty plan.
        let state = ShardState::from_cells(
            "t",
            false,
            (0, 1),
            &grid,
            &[cell(10, vec![1.0, 2.0]), cell(20, vec![3.0, 4.0])],
        );
        assert!(missing_work(&state).unwrap().is_empty());

        // Two metrics, trial recorded for only one → corrupt.
        let grid2 = GridMeta {
            metrics: vec![Metric::CwSlots, Metric::Collisions],
            ns: vec![10],
            ..tiny_grid()
        };
        let torn = StatsCell {
            algorithm: AlgorithmKind::Beb,
            n: 10,
            acc: MetricStats::from_parts(
                grid2.metrics.clone(),
                vec![
                    StreamingSample::from_raw(vec![1.0, f64::NAN]),
                    StreamingSample::from_raw(vec![1.0, 2.0]),
                ],
            ),
        };
        let state = ShardState::from_cells("t", false, (0, 1), &grid2, &[torn]);
        let err = missing_work(&state).unwrap_err();
        assert!(err.contains("only some"), "{err}");
    }

    #[test]
    fn writer_sequences_checkpoints_updates_latest_and_prunes() {
        let dir = scratch_dir("writer");
        let writer = CheckpointWriter::new(&dir, "t", false, tiny_grid()).unwrap();
        assert_eq!(writer.next_seq(), 0);
        for i in 0..5usize {
            writer.snapshot(snap(
                vec![cell(10, vec![1.0, 2.0]), cell(20, vec![3.0, f64::NAN])],
                2 + i,
                i == 4,
            ));
        }
        let ckpt_dir = dir.join(CHECKPOINT_DIR);
        let pointer = fs::read_to_string(ckpt_dir.join(LATEST_FILE)).unwrap();
        assert_eq!(pointer.trim(), checkpoint_file_name("t", 4));
        // Retention keeps the RETAIN newest.
        assert!(!ckpt_dir.join(checkpoint_file_name("t", 0)).exists());
        assert!(!ckpt_dir.join(checkpoint_file_name("t", 1)).exists());
        assert!(ckpt_dir.join(checkpoint_file_name("t", 2)).exists());
        assert!(ckpt_dir.join(checkpoint_file_name("t", 4)).exists());
        // The sidecar reflects the last snapshot.
        let doc = MetricsDoc::parse(&fs::read_to_string(dir.join(METRICS_FILE)).unwrap()).unwrap();
        assert!(doc.finished);
        assert_eq!(doc.checkpoint_seq, 4);
        assert_eq!((doc.cells_done, doc.cells_total), (1, 2));
        assert_eq!((doc.trials_done, doc.trials_total), (6, 4));
        // Work is cost-weighted: both recorded n=10 trials (cost 10 each)
        // plus one of two n=20 trials (cost 20) out of a 60-unit grid.
        assert_eq!((doc.work_done, doc.work_total), (40.0, 60.0));
        // The remaining trial is an n=20 heavyweight: the work-based ETA
        // must price it at 20 units, not at the 13.3-unit mean trial.
        let work_rate = doc.work_done / doc.elapsed_secs;
        assert!((doc.eta_secs - 20.0 / work_rate).abs() < 1e-9, "{doc:?}");
        // A new writer in the same dir continues the sequence.
        let writer2 = CheckpointWriter::new(&dir, "t", false, tiny_grid()).unwrap();
        assert_eq!(writer2.next_seq(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn with_base_merges_prior_state_into_checkpoints() {
        let dir = scratch_dir("base");
        let base = ShardState::from_cells(
            "t",
            false,
            (0, 1),
            &tiny_grid(),
            &[cell(10, vec![1.0, 2.0]), cell(20, vec![3.0, f64::NAN])],
        );
        let writer = CheckpointWriter::new(&dir, "t", false, tiny_grid())
            .unwrap()
            .with_base(base);
        // The resume run records only the missing trial of n=20.
        writer.snapshot(SweepSnapshot {
            cells: vec![cell(20, vec![f64::NAN, 9.0])],
            completed_trials: 1,
            total_trials: 1,
            elapsed: Duration::from_secs(1),
            workers: 1,
            finished: true,
        });
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 0);
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert!(loaded.state.is_complete(), "base + resume must be complete");
        let cells = loaded.state.into_cells();
        assert_eq!(cells[1].acc.sample(Metric::CwSlots), &[3.0, 9.0]);
        let doc = MetricsDoc::parse(&fs::read_to_string(dir.join(METRICS_FILE)).unwrap()).unwrap();
        assert_eq!((doc.trials_done, doc.trials_total), (4, 4));
        assert_eq!((doc.work_done, doc.work_total), (60.0, 60.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_survives_torn_pointer_and_torn_artifact() {
        let dir = scratch_dir("torn");
        let writer = CheckpointWriter::new(&dir, "t", false, tiny_grid()).unwrap();
        writer.snapshot(snap(vec![cell(10, vec![1.0, 2.0])], 2, false));
        writer.snapshot(snap(vec![cell(10, vec![1.0, 2.0])], 2, false));
        let ckpt_dir = dir.join(CHECKPOINT_DIR);

        // Pointer names a checkpoint that no longer exists → scan fallback,
        // reported (not silent), with the dangling name in the warning.
        fs::write(ckpt_dir.join(LATEST_FILE), "t.ckpt000099.shardstate.json").unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(
            loaded.seq, 1,
            "fallback must pick the newest valid checkpoint"
        );
        assert!(
            loaded
                .warnings
                .iter()
                .any(|w| w.contains("t.ckpt000099.shardstate.json")),
            "{:?}",
            loaded.warnings
        );

        // Newest artifact truncated mid-write → next-newest wins.
        fs::write(ckpt_dir.join(checkpoint_file_name("t", 1)), "{\"schema\": ").unwrap();
        // A stray staged temp file from a killed write is ignored outright.
        fs::write(
            ckpt_dir.join(format!("{}.tmp", checkpoint_file_name("t", 2))),
            "garbage",
        )
        .unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 0);
        assert_eq!(loaded.state.cells.len(), 1);
        assert!(
            loaded.warnings.iter().any(|w| w.contains("torn")),
            "{:?}",
            loaded.warnings
        );

        // Nothing valid at all → an error naming the failures.
        fs::write(ckpt_dir.join(checkpoint_file_name("t", 0)), "also torn").unwrap();
        let err = load_latest(&dir).unwrap_err();
        assert!(err.contains("no valid checkpoint"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_pointer_target_is_reported_and_highest_surviving_seq_recovers() {
        // Regression: `repro resume` silently fell back when the `latest`
        // pointer named a pruned/missing checkpoint. Deleting the pointed-at
        // file must (a) still recover — from the highest surviving sequence
        // number — and (b) surface a warning naming the missing file.
        let dir = scratch_dir("dangling");
        let writer = CheckpointWriter::new(&dir, "t", false, tiny_grid()).unwrap();
        for i in 0..3usize {
            writer.snapshot(snap(vec![cell(10, vec![1.0, 2.0])], 2, i == 2));
        }
        let ckpt_dir = dir.join(CHECKPOINT_DIR);
        let pointed = checkpoint_file_name("t", 2);
        assert_eq!(
            fs::read_to_string(ckpt_dir.join(LATEST_FILE))
                .unwrap()
                .trim(),
            pointed
        );
        fs::remove_file(ckpt_dir.join(&pointed)).unwrap();

        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 1, "highest surviving checkpoint must win");
        assert_eq!(loaded.state.cells.len(), 1);
        assert!(
            loaded.warnings.iter().any(|w| w.contains(&pointed)),
            "warning must name the dangling file: {:?}",
            loaded.warnings
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_sidecar_never_emits_nan_or_inf_on_zero_elapsed_time() {
        // A snapshot can land within the clock's resolution of the start:
        // every rate is unknowable, so the sidecar must say `null` — never
        // the JSON-invalid `NaN`/`inf` tokens, because the work-server
        // re-serves these bytes verbatim to arbitrary clients.
        let dir = scratch_dir("degen-elapsed");
        let writer = CheckpointWriter::new(&dir, "t", false, tiny_grid()).unwrap();
        writer.snapshot(SweepSnapshot {
            cells: vec![cell(10, vec![1.0, f64::NAN])],
            completed_trials: 1,
            total_trials: 4,
            elapsed: Duration::ZERO,
            workers: 1,
            finished: false,
        });
        let text = fs::read_to_string(dir.join(METRICS_FILE)).unwrap();
        assert!(
            !text.contains("NaN") && !text.contains("inf"),
            "degenerate rates leaked into the sidecar:\n{text}"
        );
        let doc = MetricsDoc::parse(&text).unwrap();
        assert!(doc.trials_per_sec.is_nan());
        assert!(doc.trials_per_sec_per_worker.is_nan());
        assert!(
            doc.eta_secs.is_nan(),
            "work remains but the rate is unknown"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_sidecar_never_emits_nan_or_inf_on_zero_total_work() {
        // A zero-trial grid has work_total == 0: nothing may divide by it,
        // and with no work left the ETA is zero, not NaN or infinity.
        let dir = scratch_dir("degen-zerowork");
        let grid = GridMeta {
            trials: 0,
            ..tiny_grid()
        };
        let writer = CheckpointWriter::new(&dir, "t", false, grid).unwrap();
        writer.snapshot(SweepSnapshot {
            cells: Vec::new(),
            completed_trials: 0,
            total_trials: 0,
            elapsed: Duration::from_secs(1),
            workers: 1,
            finished: true,
        });
        let text = fs::read_to_string(dir.join(METRICS_FILE)).unwrap();
        assert!(
            !text.contains("NaN") && !text.contains("inf"),
            "degenerate rates leaked into the sidecar:\n{text}"
        );
        let doc = MetricsDoc::parse(&text).unwrap();
        assert_eq!(doc.work_total, 0.0);
        assert_eq!(doc.eta_secs, 0.0, "no work left means ETA zero");
        assert_eq!(doc.trials_per_sec, 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_io_failure_warns_but_does_not_panic() {
        let dir = scratch_dir("fail");
        let writer = CheckpointWriter::new(&dir, "t", false, tiny_grid()).unwrap();
        // Make the checkpoint directory vanish out from under the writer.
        fs::remove_dir_all(dir.join(CHECKPOINT_DIR)).unwrap();
        writer.snapshot(snap(vec![cell(10, vec![1.0, 2.0])], 2, true));
        assert!(writer.warned.load(Ordering::Relaxed));
        let _ = fs::remove_dir_all(&dir);
    }
}
