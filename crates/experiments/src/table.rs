//! Plain-text table rendering for the terminal.

use crate::aggregate::Series;

/// Renders aligned columns with a header row. Every row must have the same
/// arity as the header.
pub fn render(header: &[String], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), header.len(), "row {i} has wrong arity");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    let mut out = fmt_row(header);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Renders a figure's series side by side: one row per x, one column block
/// (`median [lo, hi]`) per series.
pub fn render_series(x_label: &str, series: &[Series]) -> String {
    assert!(!series.is_empty());
    let xs: Vec<f64> = series[0].points.iter().map(|p| p.x).collect();
    for s in series {
        let sx: Vec<f64> = s.points.iter().map(|p| p.x).collect();
        assert_eq!(sx, xs, "series {} is on a different grid", s.name);
    }
    let mut header = vec![x_label.to_string()];
    for s in series {
        header.push(s.name.clone());
        header.push("95% CI".to_string());
    }
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![trim_float(x)];
            for s in series {
                let p = s.points[i];
                row.push(trim_float(p.median));
                row.push(format!(
                    "[{}, {}]",
                    trim_float(p.ci_low),
                    trim_float(p.ci_high)
                ));
            }
            row
        })
        .collect();
    render(&header, &rows)
}

/// Formats a float without trailing noise: integers as integers, otherwise
/// one decimal.
pub fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SeriesPoint;

    #[test]
    fn columns_align() {
        let out = render(
            &["n".into(), "value".into()],
            &[
                vec!["10".into(), "3".into()],
                vec!["100".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("    3"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn series_table_includes_cis() {
        let series = vec![Series {
            name: "BEB".into(),
            points: vec![SeriesPoint {
                x: 10.0,
                median: 100.0,
                ci_low: 90.0,
                ci_high: 110.0,
                kept: 30,
                dropped: 0,
            }],
        }];
        let out = render_series("n", &series);
        assert!(out.contains("BEB"));
        assert!(out.contains("[90, 110]"));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(10.0), "10");
        assert_eq!(trim_float(10.25), "10.2");
        assert_eq!(trim_float(-3.0), "-3");
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn arity_mismatch_panics() {
        let _ = render(&["a".into(), "b".into()], &[vec!["1".into()]]);
    }
}
