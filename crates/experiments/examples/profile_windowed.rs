//! Wall-clock decomposition aids for the windowed hot path, for perf work on
//! machines without `perf`: times the real arena-reusing trials next to the
//! irreducible floor (raw generator throughput for the same draw count), so
//! a perf session can see at a glance how much headroom the loop still has.
//! Run with
//! `cargo run --release -p contention-experiments --example profile_windowed`.

use contention_core::algorithm::AlgorithmKind;
use contention_core::channel::ChannelModel;
use contention_core::rng::{experiment_tag, trial_rng};
use contention_sim::engine::{run_trial_with, Simulator};
use contention_slotted::noisy::NoisyConfig;
use contention_slotted::windowed::{WindowedConfig, WindowedSim};
use contention_slotted::NoisySim;
use rand::RngCore;
use std::hint::black_box;
use std::time::Instant;

fn time_trials<S: Simulator>(label: &str, config: &S::Config, n: u32, reps: u32, cycle: u32)
where
    S::Output: std::fmt::Debug,
{
    let mut scratch = S::Scratch::default();
    for i in 0..cycle {
        black_box(run_trial_with::<S>(
            "bench-windowed",
            config,
            n,
            i,
            &mut scratch,
        ));
    }
    let t = Instant::now();
    for i in 0..reps {
        black_box(run_trial_with::<S>(
            "bench-windowed",
            config,
            n,
            i % cycle,
            &mut scratch,
        ));
    }
    let per_trial = t.elapsed().as_nanos() as f64 / reps as f64;
    println!("{label:<28} {per_trial:>12.0} ns/trial");
}

fn main() {
    // The real trials, arena-reused, same shape as `repro bench`.
    time_trials::<WindowedSim>(
        "windowed BEB n=1e4",
        &WindowedConfig::abstract_model(AlgorithmKind::Beb),
        10_000,
        40,
        8,
    );
    time_trials::<WindowedSim>(
        "windowed BEB n=1e5",
        &WindowedConfig::abstract_model(AlgorithmKind::Beb),
        100_000,
        8,
        4,
    );
    time_trials::<NoisySim>(
        "noisy soften(0.5) n=1e4",
        &NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::softened(0.5)),
        10_000,
        16,
        8,
    );

    // The irreducible floor: a BEB batch of n stations draws roughly
    // 2n − (successes spread over ~log n windows) ≈ 1.47n·10 words for
    // n = 1e4 empirically; measure the raw generator at that volume so the
    // trial numbers above can be read as "floor + everything else".
    let mut rng = trial_rng(experiment_tag("bench-windowed"), AlgorithmKind::Beb, 1, 0);
    const WORDS: u64 = 147_000;
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..40 {
        for _ in 0..WORDS {
            acc = acc.wrapping_add(rng.next_u64());
        }
    }
    black_box(acc);
    let per_batch = t.elapsed().as_nanos() as f64 / 40.0;
    println!(
        "raw xoshiro, {WORDS} words    {per_batch:>12.0} ns  ({:.2} ns/word)",
        per_batch / WORDS as f64
    );
}
