//! Simulated time with nanosecond resolution.
//!
//! The paper reports everything in microseconds, but transmission times at
//! 54 Mbit/s are not µs-integral (128 bytes take 18 962.96… ns), so the
//! simulators keep a `u64` nanosecond clock. `u64` nanoseconds cover ~584
//! years of simulated time — far beyond any experiment here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant / zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The greatest representable instant; used as an "unscheduled" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// A duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds, truncated.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds as a float (the unit the paper's figures use).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction; convenient for "time remaining" computations.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The number of *whole* periods of `period` that fit in `self`.
    ///
    /// Used to convert an elapsed idle interval into a number of completed
    /// backoff slots.
    pub fn div_floor(self, period: Nanos) -> u64 {
        assert!(period.0 > 0, "division by zero-length period");
        self.0 / period.0
    }

    /// `self` scaled by an integer factor.
    pub fn times(self, factor: u64) -> Nanos {
        Nanos(self.0 * factor)
    }

    /// Midpoint between two instants (used by trace rendering).
    pub fn midpoint(self, other: Nanos) -> Nanos {
        Nanos(self.0 / 2 + other.0 / 2 + (self.0 & other.0 & 1))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Nanos {
    /// Renders in microseconds with up to three decimals, e.g. `18962.963µs`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{whole}µs")
        } else {
            let s = format!("{frac:03}");
            write!(f, "{whole}.{}µs", s.trim_end_matches('0'))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(9).as_nanos(), 9_000);
        assert_eq!(Nanos::from_millis(2).as_micros(), 2_000);
        assert_eq!(Nanos(18_962).as_micros(), 18);
        assert!((Nanos(18_962).as_micros_f64() - 18.962).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(3);
        assert_eq!(a + b, Nanos::from_micros(13));
        assert_eq!(a - b, Nanos::from_micros(7));
        assert_eq!(a * 4, Nanos::from_micros(40));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
    }

    #[test]
    fn div_floor_counts_whole_slots() {
        let slot = Nanos::from_micros(9);
        assert_eq!(Nanos::from_micros(0).div_floor(slot), 0);
        assert_eq!(Nanos::from_micros(8).div_floor(slot), 0);
        assert_eq!(Nanos::from_micros(9).div_floor(slot), 1);
        assert_eq!(Nanos::from_micros(26).div_floor(slot), 2);
    }

    #[test]
    #[should_panic(expected = "zero-length period")]
    fn div_floor_rejects_zero_period() {
        let _ = Nanos::from_micros(1).div_floor(Nanos::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [1u64, 2, 3].into_iter().map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(6));
    }

    #[test]
    fn display_is_microseconds() {
        assert_eq!(Nanos::from_micros(75).to_string(), "75µs");
        assert_eq!(Nanos(18_962).to_string(), "18.962µs");
        assert_eq!(Nanos(18_900).to_string(), "18.9µs");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Nanos::from_micros(1) < Nanos::from_micros(2));
        assert!(Nanos::MAX > Nanos::from_millis(1_000_000));
    }
}
