//! Metric types shared by the abstract and MAC simulators.
//!
//! The paper's two headline metrics (§III, "Our Metrics"):
//!
//! * **Contention-window slots (CW slots)** — slots belonging to contention
//!   windows consumed until every packet succeeds; what the theory calls
//!   makespan.
//! * **Total time** — wall-clock from batch arrival to last success,
//!   including transmissions, SIFS/DIFS, ACKs and ACK timeouts. Only the MAC
//!   simulator can measure it.
//!
//! Plus the diagnostics of §III-B: disjoint collisions, per-station ACK
//! timeouts (Figure 11) and time spent waiting in ACK timeouts (Figure 12).

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Per-station accounting (one packet per station in the single-batch case).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StationMetrics {
    /// Transmission attempts, including the final successful one.
    pub attempts: u32,
    /// ACK timeouts suffered ≡ collisions this station was part of
    /// (the paper's "ACK timeout ≈ collision" identification).
    pub ack_timeouts: u32,
    /// Total time spent waiting out ACK timeouts.
    pub ack_timeout_time: Nanos,
    /// Instant the station's packet was acknowledged, if it finished.
    pub success_time: Option<Nanos>,
    /// Backoff slots this station personally counted down.
    pub backoff_slots: u64,
}

/// Result of simulating one single-batch trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BatchMetrics {
    /// Number of stations/packets in the batch.
    pub n: u32,
    /// Packets that completed (equals `n` unless the run was truncated).
    pub successes: u32,
    /// Total time: batch arrival → last ACK received. Zero for the abstract
    /// simulator, which has no notion of wall-clock time.
    pub total_time: Nanos,
    /// Time until ⌈n/2⌉ packets had succeeded (Figures 9–10).
    pub half_time: Nanos,
    /// Global contention-window slots elapsed until the last success
    /// (Figures 3–5).
    pub cw_slots: u64,
    /// CW slots elapsed until ⌈n/2⌉ packets had succeeded (Figure 6).
    pub half_cw_slots: u64,
    /// Disjoint collisions: maximal groups of temporally overlapping failed
    /// transmissions (§III-B "Disjoint Collisions").
    pub collisions: u64,
    /// Total stations involved across all collisions (≥ 2 × `collisions`);
    /// `colliding_stations / collisions` is the mean collision multiplicity
    /// the §III-B discussion attributes slow-backoff's cost to.
    pub colliding_stations: u64,
    /// Per-station detail.
    pub stations: Vec<StationMetrics>,
}

impl BatchMetrics {
    /// Figure 11's statistic: the maximum number of ACK timeouts suffered by
    /// any single station.
    pub fn max_ack_timeouts(&self) -> u32 {
        self.stations
            .iter()
            .map(|s| s.ack_timeouts)
            .max()
            .unwrap_or(0)
    }

    /// Figure 12's statistic: ACK-timeout waiting time of the station with
    /// the most ACK timeouts.
    pub fn max_ack_timeout_time(&self) -> Nanos {
        self.stations
            .iter()
            .max_by_key(|s| (s.ack_timeouts, s.ack_timeout_time))
            .map(|s| s.ack_timeout_time)
            .unwrap_or(Nanos::ZERO)
    }

    /// Mean number of stations per disjoint collision (≥ 2 when any
    /// collision occurred).
    pub fn mean_collision_multiplicity(&self) -> f64 {
        if self.collisions == 0 {
            0.0
        } else {
            self.colliding_stations as f64 / self.collisions as f64
        }
    }

    /// Total transmission attempts across stations.
    pub fn total_attempts(&self) -> u64 {
        self.stations.iter().map(|s| s.attempts as u64).sum()
    }

    /// Sum of per-station ACK timeouts — the total number of station-level
    /// collision events (each disjoint collision contributes its
    /// multiplicity).
    pub fn total_ack_timeouts(&self) -> u64 {
        self.stations.iter().map(|s| s.ack_timeouts as u64).sum()
    }

    /// Sanity relation: every attempt either succeeded or timed out.
    /// (Only meaningful for MAC runs that completed all packets.)
    pub fn attempts_balance(&self) -> bool {
        self.total_attempts() == self.successes as u64 + self.total_ack_timeouts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchMetrics {
        BatchMetrics {
            n: 3,
            successes: 3,
            total_time: Nanos::from_micros(1_000),
            half_time: Nanos::from_micros(400),
            cw_slots: 50,
            half_cw_slots: 20,
            collisions: 2,
            colliding_stations: 5,
            stations: vec![
                StationMetrics {
                    attempts: 2,
                    ack_timeouts: 1,
                    ack_timeout_time: Nanos::from_micros(75),
                    success_time: Some(Nanos::from_micros(500)),
                    backoff_slots: 10,
                },
                StationMetrics {
                    attempts: 3,
                    ack_timeouts: 2,
                    ack_timeout_time: Nanos::from_micros(150),
                    success_time: Some(Nanos::from_micros(900)),
                    backoff_slots: 12,
                },
                StationMetrics {
                    attempts: 3,
                    ack_timeouts: 2,
                    ack_timeout_time: Nanos::from_micros(150),
                    success_time: Some(Nanos::from_micros(1_000)),
                    backoff_slots: 9,
                },
            ],
        }
    }

    #[test]
    fn max_ack_timeouts_and_time() {
        let m = sample();
        assert_eq!(m.max_ack_timeouts(), 2);
        assert_eq!(m.max_ack_timeout_time(), Nanos::from_micros(150));
    }

    #[test]
    fn collision_multiplicity() {
        let m = sample();
        assert!((m.mean_collision_multiplicity() - 2.5).abs() < 1e-12);
        let empty = BatchMetrics {
            collisions: 0,
            ..sample()
        };
        assert_eq!(empty.mean_collision_multiplicity(), 0.0);
    }

    #[test]
    fn attempts_balance_holds_for_consistent_run() {
        let m = sample();
        // 8 attempts = 3 successes + 5 ACK timeouts.
        assert_eq!(m.total_attempts(), 8);
        assert_eq!(m.total_ack_timeouts(), 5);
        assert!(m.attempts_balance());
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = BatchMetrics::default();
        assert_eq!(m.max_ack_timeouts(), 0);
        assert_eq!(m.max_ack_timeout_time(), Nanos::ZERO);
        assert_eq!(m.mean_collision_multiplicity(), 0.0);
        assert!(m.attempts_balance());
    }
}
