//! The merge side of the process-sharding seam.
//!
//! Lives here — the leaf crate — so that accumulator implementors
//! (`contention-stats` collectors, the engine's slots, the experiment
//! harness's per-metric buffers) can share one trait without the stats
//! layer depending on the execution engine. `contention_sim::engine`
//! re-exports it next to [`Accumulator`](../sim) as part of the fold seam.

/// Per-cell accumulator state that can be combined across processes.
///
/// `merge` folds `other`'s recorded state into `self`. Implementations must
/// be **associative and commutative** (any grouping and order of shard
/// merges yields bit-identical state) and must **agree with sequential
/// folding**: recording trials {A ∪ B} into one accumulator equals recording
/// A and B into two accumulators and merging them, provided A and B are
/// disjoint. Each trial must arrive exactly once across all merge operands;
/// position-addressed implementations panic on a double delivery (the same
/// exactly-once guarantee the in-process engine enjoys). Use the fallible
/// variants (e.g. `try_merge`) where a clean error is needed instead of a
/// panic — merging untrusted on-disk artifacts, say.
pub trait MergeableAccumulator: Sized {
    /// Folds `other` into `self`; panics if the operands overlap or are
    /// incompatibly shaped.
    fn merge(&mut self, other: Self);
}
