//! The merge side of the process-sharding seam.
//!
//! Lives here — the leaf crate — so that accumulator implementors
//! (`contention-stats` collectors, the engine's slots, the experiment
//! harness's per-metric buffers) can share one trait without the stats
//! layer depending on the execution engine. `contention_sim::engine`
//! re-exports it next to [`Accumulator`](../sim) as part of the fold seam.

/// Per-cell accumulator state that can be combined across processes.
///
/// `merge` folds `other`'s recorded state into `self`. Implementations must
/// be **associative and commutative** (any grouping and order of shard
/// merges yields bit-identical state) and must **agree with sequential
/// folding**: recording trials {A ∪ B} into one accumulator equals recording
/// A and B into two accumulators and merging them, provided A and B are
/// disjoint. Each trial must arrive exactly once across all merge operands;
/// position-addressed implementations panic on a double delivery (the same
/// exactly-once guarantee the in-process engine enjoys). Use the fallible
/// variants (e.g. `try_merge`) where a clean error is needed instead of a
/// panic — merging untrusted on-disk artifacts, say.
pub trait MergeableAccumulator: Sized {
    /// Folds `other` into `self`; panics if the operands overlap or are
    /// incompatibly shaped.
    fn merge(&mut self, other: Self);
}

/// Tally of a duplicate-tolerant merge: how many recorded slots were new to
/// the receiver and how many it already held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Slots the operand contributed that the receiver did not yet hold.
    pub fresh: usize,
    /// Slots both sides held with bit-identical values, discarded.
    pub duplicates: usize,
}

impl MergeStats {
    /// Accumulates another tally into this one (e.g. across the metrics of
    /// a multi-metric accumulator, or across the cells of an artifact).
    pub fn absorb(&mut self, other: MergeStats) {
        self.fresh += other.fresh;
        self.duplicates += other.duplicates;
    }
}

/// [`MergeableAccumulator`] relaxed from exactly-once to **at-least-once**
/// delivery — the work-distribution seam, where a lease that expired and was
/// re-issued can legitimately arrive twice.
///
/// `try_merge_dedup` unions `other` into `self`: slots only one side holds
/// are folded in as fresh; a slot both sides hold is fine *iff* the two
/// values are bit-identical (honest re-execution reproduces the bits exactly
/// because trial results are position-addressed functions of the trial
/// coordinates alone) and is discarded as a duplicate. Conflicting
/// duplicates mean the operands did not run the same code on the same
/// coordinates, and are an error — never silently resolved.
pub trait DedupMergeableAccumulator: MergeableAccumulator {
    /// Folds `other` into `self`, discarding bit-identical duplicate slots;
    /// errors on incompatible shapes or conflicting duplicate values,
    /// leaving `self` unspecified-but-valid.
    fn try_merge_dedup(&mut self, other: Self) -> Result<MergeStats, String>;
}
