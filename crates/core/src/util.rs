//! Small numeric helpers shared across the workspace.

/// Base-2 logarithm clamped from below at 1.0.
///
/// The paper's growth rates `r = 1/lg W` and `r = 1/lg lg W` and its
/// asymptotic bounds divide by iterated logarithms that vanish (or go
/// negative) for small arguments. Clamping at 1 matches the convention used
/// throughout the paper's analysis ("for a sufficiently large constant") and
/// keeps every formula well-defined for all `n ≥ 1`.
pub fn lg(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    x.log2().max(1.0)
}

/// `lg lg x`, clamped at 1.0.
pub fn lglg(x: f64) -> f64 {
    lg(lg(x))
}

/// `lg lg lg x`, clamped at 1.0.
pub fn lglglg(x: f64) -> f64 {
    lg(lglg(x))
}

/// The paper's percentage convention (§III-A): `100 × (A − B) / B`, where `B`
/// is always the BEB ("old") value and `A` the challenger ("new") value.
///
/// Positive values mean the challenger is *worse* (larger) on the metric.
pub fn percent_change(new_value: f64, beb_baseline: f64) -> f64 {
    assert!(
        beb_baseline != 0.0,
        "percent change is undefined against a zero baseline"
    );
    100.0 * (new_value - beb_baseline) / beb_baseline
}

/// Integer ceiling division.
pub fn div_ceil_u64(a: u64, b: u64) -> u64 {
    assert!(b > 0);
    a / b + u64::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_clamps_small_arguments() {
        assert_eq!(lg(1.0), 1.0);
        assert_eq!(lg(2.0), 1.0);
        assert_eq!(lg(8.0), 3.0);
        assert_eq!(lg(0.5), 1.0);
    }

    #[test]
    fn iterated_logs() {
        assert_eq!(lglg(16.0), 2.0); // lg 16 = 4, lg 4 = 2
        assert_eq!(lglg(4.0), 1.0);
        assert_eq!(lglglg(65536.0), 2.0); // lg = 16, lglg = 4, lglglg = 2
        assert!((lglglg(100.0) - 1.45).abs() < 0.01); // lg ≈ 6.64, lglg ≈ 2.73
        assert_eq!(lglglg(4.0), 1.0); // fully clamped
    }

    #[test]
    fn percent_change_matches_paper_convention() {
        // Paper §III-A1: STB at 151 slots vs BEB at 886 slots ⇒ −83 %.
        let pc = percent_change(151.0, 886.0);
        assert!((pc - -82.957).abs() < 0.01, "{pc}");
        assert_eq!(percent_change(150.0, 100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn percent_change_rejects_zero_baseline() {
        let _ = percent_change(1.0, 0.0);
    }

    #[test]
    fn ceiling_division() {
        assert_eq!(div_ceil_u64(10, 3), 4);
        assert_eq!(div_ceil_u64(9, 3), 3);
        assert_eq!(div_ceil_u64(0, 3), 0);
    }
}
