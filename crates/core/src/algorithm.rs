//! Identification of the contention-resolution algorithms under study.

use crate::schedule::{Schedule, Truncation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every algorithm evaluated by the paper, plus the ablation baselines this
/// reproduction adds.
///
/// The first four are the windowed backoff algorithms of §III (Figure 2 and
/// Table II). `Fixed` is the backoff stage of the size-estimation approach
/// (§VI). `BestOfK` is the full §VI algorithm — estimation *then* fixed
/// backoff — and therefore has no pure window schedule of its own.
/// `Polynomial` is an extra baseline motivated by the related work on
/// polynomial backoff (paper's reference [53]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Binary exponential backoff: `W ← 2W`.
    Beb,
    /// LOG-BACKOFF: `W ← (1 + 1/lg W) W`.
    LogBackoff,
    /// LOGLOG-BACKOFF: `W ← (1 + 1/lg lg W) W`.
    LogLogBackoff,
    /// SAWTOOTH-BACKOFF: doubling outer windows, each followed by a "backon"
    /// run of halving windows `W, W/2, …, 2`.
    Sawtooth,
    /// Fixed backoff: every window has the same size.
    Fixed { window: u32 },
    /// BEST-OF-k size estimation followed by fixed backoff at the estimate.
    BestOfK { k: u32 },
    /// Polynomial backoff ablation: window `(attempt + 1)^degree`.
    Polynomial { degree: u32 },
}

impl AlgorithmKind {
    /// The four algorithms compared head-to-head throughout the paper's
    /// evaluation, in the order the figures list them.
    pub const PAPER_SET: [AlgorithmKind; 4] = [
        AlgorithmKind::Beb,
        AlgorithmKind::LogBackoff,
        AlgorithmKind::LogLogBackoff,
        AlgorithmKind::Sawtooth,
    ];

    /// Short label used in tables and figure legends (matches the paper).
    pub fn label(&self) -> String {
        match self {
            AlgorithmKind::Beb => "BEB".to_string(),
            AlgorithmKind::LogBackoff => "LB".to_string(),
            AlgorithmKind::LogLogBackoff => "LLB".to_string(),
            AlgorithmKind::Sawtooth => "STB".to_string(),
            AlgorithmKind::Fixed { window } => format!("FIXED({window})"),
            AlgorithmKind::BestOfK { k } => format!("Best-of-{k}"),
            AlgorithmKind::Polynomial { degree } => format!("POLY({degree})"),
        }
    }

    /// Stable machine-readable identifier, round-trippable through
    /// [`AlgorithmKind::from_key`] — what serialized artifacts (e.g. the
    /// `shard_state/v1` files) store instead of the display label.
    pub fn key(&self) -> String {
        match self {
            AlgorithmKind::Beb => "beb".to_string(),
            AlgorithmKind::LogBackoff => "lb".to_string(),
            AlgorithmKind::LogLogBackoff => "llb".to_string(),
            AlgorithmKind::Sawtooth => "stb".to_string(),
            AlgorithmKind::Fixed { window } => format!("fixed:{window}"),
            AlgorithmKind::BestOfK { k } => format!("bestof:{k}"),
            AlgorithmKind::Polynomial { degree } => format!("poly:{degree}"),
        }
    }

    /// Parses a [`AlgorithmKind::key`] string back into the algorithm.
    pub fn from_key(key: &str) -> Option<AlgorithmKind> {
        match key {
            "beb" => return Some(AlgorithmKind::Beb),
            "lb" => return Some(AlgorithmKind::LogBackoff),
            "llb" => return Some(AlgorithmKind::LogLogBackoff),
            "stb" => return Some(AlgorithmKind::Sawtooth),
            _ => {}
        }
        let (kind, arg) = key.split_once(':')?;
        let arg: u32 = arg.parse().ok()?;
        match kind {
            "fixed" => Some(AlgorithmKind::Fixed { window: arg }),
            "bestof" => Some(AlgorithmKind::BestOfK { k: arg }),
            "poly" => Some(AlgorithmKind::Polynomial { degree: arg }),
            _ => None,
        }
    }

    /// Builds the window schedule for this algorithm, or `None` for
    /// `BestOfK`, whose window size is only known after the estimation phase
    /// has run (the MAC simulator handles it specially).
    pub fn schedule(&self, trunc: Truncation) -> Option<Schedule> {
        Some(match self {
            AlgorithmKind::Beb => Schedule::beb(trunc),
            AlgorithmKind::LogBackoff => Schedule::log_backoff(trunc),
            AlgorithmKind::LogLogBackoff => Schedule::loglog_backoff(trunc),
            AlgorithmKind::Sawtooth => Schedule::sawtooth(trunc),
            AlgorithmKind::Fixed { window } => Schedule::fixed(*window, trunc),
            AlgorithmKind::Polynomial { degree } => Schedule::polynomial(*degree, trunc),
            AlgorithmKind::BestOfK { .. } => return None,
        })
    }

    /// True for the algorithms whose window sizes never shrink.
    ///
    /// The paper contrasts the monotone algorithms (BEB, LB, LLB) with STB's
    /// non-monotone "backon" component (§III).
    pub fn is_monotone(&self) -> bool {
        !matches!(self, AlgorithmKind::Sawtooth)
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(AlgorithmKind::Beb.label(), "BEB");
        assert_eq!(AlgorithmKind::LogBackoff.label(), "LB");
        assert_eq!(AlgorithmKind::LogLogBackoff.label(), "LLB");
        assert_eq!(AlgorithmKind::Sawtooth.label(), "STB");
        assert_eq!(AlgorithmKind::BestOfK { k: 3 }.label(), "Best-of-3");
    }

    #[test]
    fn keys_round_trip_every_variant() {
        let all = [
            AlgorithmKind::Beb,
            AlgorithmKind::LogBackoff,
            AlgorithmKind::LogLogBackoff,
            AlgorithmKind::Sawtooth,
            AlgorithmKind::Fixed { window: 512 },
            AlgorithmKind::BestOfK { k: 5 },
            AlgorithmKind::Polynomial { degree: 2 },
        ];
        for kind in all {
            assert_eq!(AlgorithmKind::from_key(&kind.key()), Some(kind), "{kind}");
        }
        assert_eq!(AlgorithmKind::from_key("nope"), None);
        assert_eq!(AlgorithmKind::from_key("fixed:abc"), None);
        assert_eq!(AlgorithmKind::from_key("warp:3"), None);
    }

    #[test]
    fn paper_set_has_schedules() {
        for kind in AlgorithmKind::PAPER_SET {
            assert!(kind.schedule(Truncation::paper()).is_some(), "{kind}");
        }
    }

    #[test]
    fn best_of_k_has_no_static_schedule() {
        assert!(AlgorithmKind::BestOfK { k: 5 }
            .schedule(Truncation::paper())
            .is_none());
    }

    #[test]
    fn monotonicity_classification() {
        assert!(AlgorithmKind::Beb.is_monotone());
        assert!(AlgorithmKind::LogBackoff.is_monotone());
        assert!(!AlgorithmKind::Sawtooth.is_monotone());
    }
}
