//! The IEEE 802.11g parameter set (Table I of the paper) and frame timing.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// All PHY/MAC constants the experiments depend on.
///
/// Defaults ([`Phy80211g::paper_defaults`]) reproduce Table I:
///
/// | Parameter | Value |
/// |---|---|
/// | Data rate | 54 Mbit/s |
/// | Slot | 9 µs |
/// | SIFS | 16 µs |
/// | DIFS | 34 µs |
/// | ACK timeout | 75 µs |
/// | Preamble | 20 µs |
/// | Packet overhead | 64 B |
/// | CWmin / CWmax | 1 / 1024 |
/// | RTS/CTS | off |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phy80211g {
    /// Payload+header bit rate, bits per second.
    pub data_rate_bps: u64,
    /// Backoff slot duration.
    pub slot: Nanos,
    /// Short inter-frame space (before an ACK / CTS).
    pub sifs: Nanos,
    /// Distributed inter-frame space (idle sensing before backoff resumes).
    pub difs: Nanos,
    /// How long a sender waits for an ACK, measured from the end of its own
    /// transmission, before diagnosing a collision. NS3's default (75 µs) per
    /// the paper's §II; the standard's formula gives ≈45 µs but values below
    /// ≈55 µs truncate the ACK and perform "markedly poorly".
    pub ack_timeout: Nanos,
    /// PLCP preamble + header time prepended to every frame.
    pub preamble: Nanos,
    /// Upper-layer overhead added to every data payload:
    /// 8 B UDP + 20 B IP + 8 B LLC/SNAP + 28 B MAC = 64 B (§II).
    pub header_overhead_bytes: u32,
    /// ACK frame body (14 B control frame).
    pub ack_bytes: u32,
    /// RTS frame body (20 B, §III-B "RTS/CTS").
    pub rts_bytes: u32,
    /// CTS frame body (14 B).
    pub cts_bytes: u32,
    /// Smallest contention window.
    pub cw_min: u32,
    /// Largest contention window (802.11g truncation).
    pub cw_max: u32,
}

impl Phy80211g {
    /// Table I values.
    pub fn paper_defaults() -> Phy80211g {
        Phy80211g {
            data_rate_bps: 54_000_000,
            slot: Nanos::from_micros(9),
            sifs: Nanos::from_micros(16),
            difs: Nanos::from_micros(34),
            ack_timeout: Nanos::from_micros(75),
            preamble: Nanos::from_micros(20),
            header_overhead_bytes: 64,
            ack_bytes: 14,
            rts_bytes: 20,
            cts_bytes: 14,
            cw_min: 1,
            cw_max: 1024,
        }
    }

    /// Airtime of `bytes` at the data rate, **excluding** the preamble.
    pub fn bytes_airtime(&self, bytes: u32) -> Nanos {
        let bits = bytes as u128 * 8;
        Nanos((bits * 1_000_000_000 / self.data_rate_bps as u128) as u64)
    }

    /// Full on-air duration of a frame with `bytes` of content:
    /// preamble + serialization time.
    pub fn frame_time(&self, bytes: u32) -> Nanos {
        self.preamble + self.bytes_airtime(bytes)
    }

    /// On-air duration of a data packet with the given UDP payload, including
    /// the 64 B header overhead and the preamble.
    ///
    /// §III-B's example: a 64 B payload becomes a 128 B packet taking
    /// "roughly 19 µs plus the associated 20 µs preamble".
    pub fn data_frame_time(&self, payload_bytes: u32) -> Nanos {
        self.frame_time(payload_bytes + self.header_overhead_bytes)
    }

    /// On-air duration of an ACK frame.
    pub fn ack_time(&self) -> Nanos {
        self.frame_time(self.ack_bytes)
    }

    /// On-air duration of an RTS frame.
    pub fn rts_time(&self) -> Nanos {
        self.frame_time(self.rts_bytes)
    }

    /// On-air duration of a CTS frame.
    pub fn cts_time(&self) -> Nanos {
        self.frame_time(self.cts_bytes)
    }

    /// Extended inter-frame space: what a station must wait after sensing a
    /// frame it could not decode (e.g. collision garbage) before it may treat
    /// the medium as contendable again. 802.11 defines
    /// `EIFS = SIFS + ACK transmission time + DIFS`.
    pub fn eifs(&self) -> Nanos {
        self.sifs + self.ack_time() + self.difs
    }

    /// Time consumed by one *successful* data exchange once the medium is
    /// seized: DATA + SIFS + ACK (no RTS/CTS).
    pub fn success_exchange_time(&self, payload_bytes: u32) -> Nanos {
        self.data_frame_time(payload_bytes) + self.sifs + self.ack_time()
    }

    /// Time consumed by one *collided* data attempt once the medium is
    /// seized: DATA + ACK-timeout wait.
    pub fn collision_exchange_time(&self, payload_bytes: u32) -> Nanos {
        self.data_frame_time(payload_bytes) + self.ack_timeout
    }
}

impl Default for Phy80211g {
    fn default() -> Self {
        Phy80211g::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values() {
        let p = Phy80211g::paper_defaults();
        assert_eq!(p.data_rate_bps, 54_000_000);
        assert_eq!(p.slot, Nanos::from_micros(9));
        assert_eq!(p.sifs, Nanos::from_micros(16));
        assert_eq!(p.difs, Nanos::from_micros(34));
        assert_eq!(p.ack_timeout, Nanos::from_micros(75));
        assert_eq!(p.preamble, Nanos::from_micros(20));
        assert_eq!(p.header_overhead_bytes, 64);
        assert_eq!((p.cw_min, p.cw_max), (1, 1024));
    }

    #[test]
    fn paper_small_packet_airtime() {
        // §III-B: 128 B (64 B payload + 64 B overhead) ≈ 19 µs + 20 µs preamble.
        let p = Phy80211g::paper_defaults();
        let air = p.bytes_airtime(128);
        assert!((air.as_micros_f64() - 18.963).abs() < 0.01, "{air}");
        let full = p.data_frame_time(64);
        assert!((full.as_micros_f64() - 38.963).abs() < 0.01, "{full}");
    }

    #[test]
    fn paper_large_packet_airtime() {
        // §III-B: 1024 B payload → 1088 B ≈ 161 µs (+ 20 µs preamble).
        let p = Phy80211g::paper_defaults();
        let air = p.bytes_airtime(1024 + 64);
        assert!((air.as_micros_f64() - 161.2).abs() < 0.1, "{air}");
    }

    #[test]
    fn ack_fits_inside_ack_timeout() {
        // The §V-B discussion: the ACK must arrive before the timeout fires,
        // i.e. SIFS + ACK airtime < ACK-timeout.
        let p = Phy80211g::paper_defaults();
        assert!(p.sifs + p.ack_time() < p.ack_timeout);
    }

    #[test]
    fn exchange_times_are_consistent() {
        let p = Phy80211g::paper_defaults();
        let s = p.success_exchange_time(64);
        let c = p.collision_exchange_time(64);
        assert_eq!(s, p.data_frame_time(64) + p.sifs + p.ack_time());
        assert_eq!(c, p.data_frame_time(64) + p.ack_timeout);
        // A collision wastes more channel time than a success spends on
        // ACKing — the heart of the paper's argument.
        assert!(c > p.data_frame_time(64) + p.sifs + p.ack_time() - p.preamble);
    }

    #[test]
    fn rts_smaller_than_data() {
        let p = Phy80211g::paper_defaults();
        assert!(p.rts_time() < p.data_frame_time(64));
    }

    #[test]
    fn eifs_is_sifs_ack_difs() {
        let p = Phy80211g::paper_defaults();
        assert_eq!(p.eifs(), p.sifs + p.ack_time() + p.difs);
        assert!(p.eifs() > p.difs);
    }
}
