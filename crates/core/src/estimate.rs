//! The BEST-OF-k size-estimation specification (§VI, Figure 17).
//!
//! ```text
//! BEST-OF-k
//!   for i = 0 to 10:
//!     for each of k consecutive slots:
//!       with probability 1/2^i, send a dummy packet; otherwise sense.
//!     if the channel was clear for more than k/2 slots:
//!       W ← 2^i; terminate and run fixed backoff with window W.
//! ```
//!
//! A slot in which the station itself transmitted counts as busy. For
//! `k = Θ(1)` significant *over*estimates may occur but the underestimate is
//! bounded: w.h.p. the estimate is `Ω(n / log n)` — and the experiments
//! (Figure 18) observe only overestimates, which is what makes fixed backoff
//! collision-frugal (Figure 19).

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Parameters of the estimation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestOfKSpec {
    /// Probe slots per phase (the `k` in Best-of-k; the paper runs 3 and 5).
    pub k: u32,
    /// Largest exponent probed; `i = 0..=max_exponent`, so the estimate is
    /// capped at `2^max_exponent` (= CWmax = 1024 with the paper's 10).
    pub max_exponent: u32,
    /// Duration of one probe round (the paper uses 35 µs — enough for a
    /// 28 B dummy frame plus preamble plus turnaround).
    pub round: Nanos,
    /// Dummy-packet size: 28 B, headerless (§VI).
    pub dummy_bytes: u32,
}

impl BestOfKSpec {
    /// The paper's configuration for a given `k`.
    pub fn paper(k: u32) -> BestOfKSpec {
        assert!(k >= 1, "k must be positive");
        BestOfKSpec {
            k,
            max_exponent: 10,
            round: Nanos::from_micros(35),
            dummy_bytes: 28,
        }
    }

    /// The estimate a station adopts when it terminates at phase `i`.
    pub fn estimate_for_phase(&self, i: u32) -> u32 {
        1u32 << i.min(self.max_exponent)
    }

    /// Termination test: did strictly more than `k/2` of the phase's rounds
    /// sense a clear channel?
    pub fn majority_clear(&self, clear_rounds: u32) -> bool {
        2 * clear_rounds > self.k
    }

    /// Worst-case duration of the whole estimation phase:
    /// `(max_exponent + 1) · k` rounds.
    pub fn max_duration(&self) -> Nanos {
        self.round * ((self.max_exponent as u64 + 1) * self.k as u64)
    }

    /// Probability that one probe round is *sensed clear by a given station*:
    /// the station itself sensed (didn't send) and none of the other `n − 1`
    /// undecided stations sent. Used by tests and by the analytical sanity
    /// checks of Figure 18.
    pub fn p_clear(&self, phase: u32, n: u32) -> f64 {
        let p = 0.5f64.powi(phase as i32);
        (1.0 - p).powi(n as i32)
    }

    /// Probability a station terminates at `phase` given all `n` stations are
    /// still probing: P[Binomial(k, p_clear) > k/2].
    pub fn p_terminate(&self, phase: u32, n: u32) -> f64 {
        let p = self.p_clear(phase, n);
        let k = self.k;
        let mut total = 0.0;
        for c in 0..=k {
            if 2 * c > k {
                total += binomial_pmf(k, c, p);
            }
        }
        total
    }

    /// The smallest phase whose termination probability exceeds one half —
    /// a deterministic proxy for the typical estimate, used to check that
    /// estimates overestimate `n` (Figure 18's "True Size" line is always
    /// below the estimates).
    pub fn typical_phase(&self, n: u32) -> u32 {
        (0..=self.max_exponent)
            .find(|&i| self.p_terminate(i, n) > 0.5)
            .unwrap_or(self.max_exponent)
    }
}

fn binomial_pmf(k: u32, c: u32, p: f64) -> f64 {
    let mut coeff = 1.0;
    for j in 0..c {
        coeff *= (k - j) as f64 / (j + 1) as f64;
    }
    coeff * p.powi(c as i32) * (1.0 - p).powi((k - c) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_values() {
        let s = BestOfKSpec::paper(3);
        assert_eq!(s.k, 3);
        assert_eq!(s.max_exponent, 10);
        assert_eq!(s.round, Nanos::from_micros(35));
        assert_eq!(s.dummy_bytes, 28);
    }

    #[test]
    fn majority_rule() {
        let s3 = BestOfKSpec::paper(3);
        assert!(!s3.majority_clear(0));
        assert!(!s3.majority_clear(1));
        assert!(s3.majority_clear(2));
        let s5 = BestOfKSpec::paper(5);
        assert!(!s5.majority_clear(2));
        assert!(s5.majority_clear(3));
    }

    #[test]
    fn estimates_are_powers_of_two_capped_at_1024() {
        let s = BestOfKSpec::paper(5);
        assert_eq!(s.estimate_for_phase(0), 1);
        assert_eq!(s.estimate_for_phase(8), 256);
        assert_eq!(s.estimate_for_phase(10), 1024);
        assert_eq!(s.estimate_for_phase(31), 1024);
    }

    #[test]
    fn estimation_time_is_negligible() {
        // §VI: estimation takes < 5 % of total time; worst case here is
        // 11 phases × 5 rounds × 35 µs = 1 925 µs, versus ≥ tens of
        // milliseconds of total time at n = 150.
        let s = BestOfKSpec::paper(5);
        assert_eq!(s.max_duration(), Nanos::from_micros(1_925));
    }

    #[test]
    fn clear_probability_monotone_in_phase() {
        let s = BestOfKSpec::paper(3);
        for n in [10u32, 50, 150] {
            for i in 0..10 {
                assert!(s.p_clear(i + 1, n) >= s.p_clear(i, n));
            }
        }
    }

    #[test]
    fn typical_estimate_overestimates_n() {
        // Figure 18: only overestimates occur, as predicted.
        let s = BestOfKSpec::paper(5);
        for n in [10u32, 30, 70, 150] {
            let w = s.estimate_for_phase(s.typical_phase(n));
            assert!(w as f64 >= n as f64, "estimate {w} underestimates n = {n}");
        }
    }

    #[test]
    fn phase_zero_never_terminates_with_contenders() {
        // With i = 0 every station sends in every round, so no round is
        // sensed clear for n ≥ 1 (own transmission counts busy).
        let s = BestOfKSpec::paper(3);
        assert_eq!(s.p_clear(0, 5), 0.0);
        assert_eq!(s.p_terminate(0, 5), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=5).map(|c| binomial_pmf(5, c, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
