//! # contention-core
//!
//! The primary contribution of *"Is Our Model for Contention Resolution
//! Wrong? Confronting the Cost of Collisions"* (Anderton & Young, SPAA 2017),
//! as a library:
//!
//! * [`schedule`] — the contention-window growth schedules under study:
//!   binary exponential backoff ([`schedule::Beb`]), LOG-BACKOFF
//!   ([`schedule::LogBackoff`]), LOGLOG-BACKOFF ([`schedule::LogLogBackoff`]),
//!   SAWTOOTH-BACKOFF ([`schedule::Sawtooth`]), fixed backoff
//!   ([`schedule::FixedWindow`]) and a polynomial ablation
//!   ([`schedule::Polynomial`]).
//! * [`model`] — the paper's collision-cost model
//!   `T_A = C_A · (P + ρ) + W_A · s` (§III-B) and the total-time
//!   decomposition used in the back-of-the-envelope argument.
//! * [`bounds`] — closed-form asymptotic guarantees from Tables II and III.
//! * [`params`] — the IEEE 802.11g parameter set of Table I.
//! * [`estimate`] — the BEST-OF-k size-estimation specification (§VI).
//! * [`channel`] — channel models: the paper's fatal-collision channel and
//!   the softened-collision / noisy channel of arXiv:2408.11275
//!   (`p_recover(k)` + per-slot erasures), sampled identically by every
//!   simulator.
//! * [`metrics`] — metric types shared by both simulators (CW slots, total
//!   time, disjoint collisions, per-station ACK-timeout accounting).
//! * [`time`] — nanosecond-resolution simulated time.
//! * [`rng`] — deterministic per-trial random-number-generator derivation.
//!
//! The two simulators that consume these types live in sibling crates:
//! `contention-slotted` (the abstract model, assumptions A0–A2 only) and
//! `contention-mac` (a from-scratch event-driven 802.11g DCF simulator that
//! plays the role NS3 plays in the paper).

pub mod algorithm;
pub mod bounds;
pub mod channel;
pub mod estimate;
pub mod merge;
pub mod metrics;
pub mod model;
pub mod params;
pub mod rng;
pub mod schedule;
pub mod time;
pub mod util;

pub use algorithm::AlgorithmKind;
pub use channel::{ChannelModel, Recovery, SlotFate};
pub use estimate::BestOfKSpec;
pub use metrics::{BatchMetrics, StationMetrics};
pub use model::{CostModel, Decomposition};
pub use params::Phy80211g;
pub use schedule::{Schedule, Truncation, WindowSchedule};
pub use time::Nanos;
