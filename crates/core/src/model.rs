//! The paper's collision-cost model (§III-B) and total-time decomposition.
//!
//! The central quantitative claim is that total time is approximated by
//!
//! ```text
//! T_A = C_A · (P + ρ) + W_A · s
//! ```
//!
//! where `C_A` is the number of *disjoint collisions*, `P` the packet
//! transmission time, `ρ` the preamble, `W_A` the number of contention-window
//! slots and `s` the slot duration. Abstracting `ρ` and `s` as constants
//! gives `T_A = Θ(C_A · P + W_A)` — total time is driven by collisions
//! (weighted by packet size) at least as much as by CW slots, which is the
//! quantity the newer algorithms optimize.
//!
//! ```
//! use contention_core::model::CostModel;
//! use contention_core::params::Phy80211g;
//!
//! let phy = Phy80211g::paper_defaults();
//! let model = CostModel::for_payload(&phy, 64);
//! // One disjoint collision costs about 4.3 contention-window slots...
//! assert!((model.collision_cost_in_slots() - 4.33).abs() < 0.05);
//! // ...so 100 collisions + 900 slots ≈ 12 ms of wasted channel time.
//! let t = model.total_time(100, 900);
//! assert!((t.as_micros_f64() - 11_996.0).abs() < 10.0);
//! ```

use crate::params::Phy80211g;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// The `T_A = C_A · (P + ρ) + W_A · s` estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// `P`: serialization time of one data packet (headers included,
    /// preamble excluded).
    pub packet_time: Nanos,
    /// `ρ`: preamble duration.
    pub preamble: Nanos,
    /// `s`: slot duration.
    pub slot: Nanos,
}

impl CostModel {
    /// Model for a given payload under a PHY parameter set.
    pub fn for_payload(phy: &Phy80211g, payload_bytes: u32) -> CostModel {
        CostModel {
            packet_time: phy.bytes_airtime(payload_bytes + phy.header_overhead_bytes),
            preamble: phy.preamble,
            slot: phy.slot,
        }
    }

    /// Predicted total time for an algorithm that suffered `collisions`
    /// disjoint collisions and consumed `cw_slots` contention-window slots.
    pub fn total_time(&self, collisions: u64, cw_slots: u64) -> Nanos {
        (self.packet_time + self.preamble) * collisions + self.slot * cw_slots
    }

    /// The collision-to-slot cost ratio `(P + ρ)/s`: how many CW slots one
    /// disjoint collision is worth. For the paper's 64 B payload this is ≈4.3
    /// and for 1024 B ≈20 — the quantitative reason "backing off slowly is
    /// bad" (Result 4).
    pub fn collision_cost_in_slots(&self) -> f64 {
        (self.packet_time + self.preamble).as_nanos() as f64 / self.slot.as_nanos() as f64
    }
}

/// §III-B's three-way decomposition of where total time goes, used for the
/// back-of-the-envelope lower bound on BEB at `n = 150`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    /// (I) Transmission time attributable to collisions: disjoint collisions
    /// × (packet + preamble).
    pub transmission: Nanos,
    /// (II) Time stations spend waiting out ACK timeouts.
    pub ack_timeouts: Nanos,
    /// (III) Time spent in contention-window slots.
    pub cw_slots: Nanos,
}

impl Decomposition {
    /// Builds the decomposition from measured quantities.
    ///
    /// * `disjoint_collisions` — number of maximal overlapping-transmission
    ///   groups observed.
    /// * `max_ack_timeout_time` — ACK-timeout waiting time of the worst
    ///   station (what Figure 12 plots).
    /// * `cw_slots` — global contention-window slots consumed.
    pub fn from_measurements(
        phy: &Phy80211g,
        payload_bytes: u32,
        disjoint_collisions: u64,
        max_ack_timeout_time: Nanos,
        cw_slots: u64,
    ) -> Decomposition {
        Decomposition {
            transmission: phy.data_frame_time(payload_bytes) * disjoint_collisions,
            ack_timeouts: max_ack_timeout_time,
            cw_slots: phy.slot * cw_slots,
        }
    }

    /// The conservative lower bound on total time: the three components are
    /// (to first order) non-overlapping channel/station time, and the bound
    /// ignores SIFS/DIFS and all successful transmissions.
    pub fn lower_bound(&self) -> Nanos {
        self.transmission + self.ack_timeouts + self.cw_slots
    }

    /// The paper's worked example (§III-B): BEB at `n = 150`, 64 B payload.
    ///
    /// 75·(9/2) disjoint two-station collisions of (19 µs + 20 µs) each
    /// ≈ 13 163 µs of transmission; ≈1 100 µs of ACK timeouts; 886 CW slots
    /// × 9 µs = 7 974 µs; total ≥ 22 237 µs.
    pub fn paper_example_beb_n150() -> Decomposition {
        Decomposition {
            transmission: Nanos::from_micros(13_163),
            ack_timeouts: Nanos::from_micros(1_100),
            cw_slots: Nanos::from_micros(7_974),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_total_time_formula() {
        let m = CostModel {
            packet_time: Nanos::from_micros(19),
            preamble: Nanos::from_micros(20),
            slot: Nanos::from_micros(9),
        };
        // 10 collisions × 39 µs + 100 slots × 9 µs = 390 + 900 = 1290 µs.
        assert_eq!(m.total_time(10, 100), Nanos::from_micros(1_290));
    }

    #[test]
    fn collision_cost_in_slots_64b_vs_1024b() {
        let phy = Phy80211g::paper_defaults();
        let small = CostModel::for_payload(&phy, 64);
        let large = CostModel::for_payload(&phy, 1024);
        // 64 B: (18.96 + 20)/9 ≈ 4.33; 1024 B: (161.2 + 20)/9 ≈ 20.1.
        assert!((small.collision_cost_in_slots() - 4.33).abs() < 0.05);
        assert!((large.collision_cost_in_slots() - 20.13).abs() < 0.1);
        // Larger packets make collisions relatively more expensive — the
        // §III-A2 observation that bigger payloads favour BEB.
        assert!(large.collision_cost_in_slots() > small.collision_cost_in_slots());
    }

    #[test]
    fn paper_example_reproduces_lower_bound() {
        let d = Decomposition::paper_example_beb_n150();
        assert_eq!(d.lower_bound(), Nanos::from_micros(22_237));
    }

    #[test]
    fn paper_example_from_first_principles() {
        // Recompute §III-B's numbers from the PHY parameters rather than the
        // quoted constants: 337 disjoint collisions (75 pairs × 9/2) at
        // data_frame_time(64) ≈ 38.96 µs ≈ 13 149 µs (paper rounds P to 19 µs
        // giving 13 163 µs), plus 886 slots × 9 µs.
        let phy = Phy80211g::paper_defaults();
        let collisions = (150 / 2) * 9 / 2; // = 337
        let d =
            Decomposition::from_measurements(&phy, 64, collisions, Nanos::from_micros(1_100), 886);
        let lb = d.lower_bound().as_micros_f64();
        assert!((lb - 22_237.0).abs() < 120.0, "lower bound {lb} µs");
    }

    #[test]
    fn transmission_dominates_ack_timeouts() {
        // Result 3: the collision-detection impact is primarily transmission
        // time and CW slots, "with the former dominating" over ACK timeouts.
        let d = Decomposition::paper_example_beb_n150();
        assert!(d.transmission > d.ack_timeouts * 10);
        assert!(d.cw_slots > d.ack_timeouts);
    }
}
