//! Channel models: what happens to the transmissions sharing a slot.
//!
//! The paper's assumption A1 — and every simulator in this repository up to
//! now — makes collisions *fatal*: a slot with two or more senders delivers
//! nothing. *Softening the Impact of Collisions in Contention Resolution*
//! (arXiv:2408.11275) studies the complementary regime where a collision is
//! partially recoverable (capture effect, coding, rateless erasure codes):
//! with some probability `p_recover(k)` one of the `k` colliding senders is
//! decoded anyway. This module captures that family of channels — plus an
//! independent per-slot noise/erasure rate — as data, so any simulator
//! (slotted or MAC-level) can sample slot outcomes through one abstraction.
//!
//! Two structural guarantees every [`Recovery`] rule upholds (property-tested
//! in this crate and at the workspace level):
//!
//! * `p_recover(1) == 1` — a lone sender is only ever lost to *noise*, never
//!   to "collision recovery" (there is no collision);
//! * `p_recover` is non-increasing in `k` — piling more senders onto a slot
//!   can only hurt.
//!
//! The ideal (paper) channel is [`ChannelModel::ideal`]: zero noise, zero
//! recovery. In that configuration [`ChannelModel::sample_slot`] draws
//! **nothing** from the RNG, so a simulator threading its slots through this
//! model is bit-identical to one hard-coding A1 — the degenerate-equality
//! regression tests rely on exactly this.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How (and whether) a collision of `k ≥ 2` senders can still deliver one
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Recovery {
    /// Collisions are fatal (assumption A1; the paper's model).
    None,
    /// Every collision is recovered with the same probability `p`,
    /// independent of its multiplicity.
    Constant { p: f64 },
    /// Recovery decays geometrically with multiplicity:
    /// `p_recover(k) = base^(k-1)` — each extra sender multiplies the odds
    /// of decoding anyone by `base`.
    Geometric { base: f64 },
    /// Capture effect with a hard threshold: collisions of up to `max_k`
    /// senders are recovered with probability `p`; anything denser is fatal.
    Capture { max_k: u32, p: f64 },
}

impl Recovery {
    /// Probability that a slot carrying `k` simultaneous transmissions still
    /// delivers one of them (before noise is applied). `k = 0` delivers
    /// nothing, `k = 1` always delivers.
    pub fn p_recover(&self, k: u32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k == 1 {
            return 1.0;
        }
        match *self {
            Recovery::None => 0.0,
            Recovery::Constant { p } => clamp01(p),
            Recovery::Geometric { base } => clamp01(base).powi((k - 1) as i32),
            Recovery::Capture { max_k, p } => {
                if k <= max_k {
                    clamp01(p)
                } else {
                    0.0
                }
            }
        }
    }

    /// True when no collision of any multiplicity can ever be recovered —
    /// the configuration under which sampling must consume zero randomness.
    pub fn is_fatal(&self) -> bool {
        match *self {
            Recovery::None => true,
            Recovery::Constant { p } => p <= 0.0,
            Recovery::Geometric { base } => base <= 0.0,
            Recovery::Capture { max_k, p } => max_k < 2 || p <= 0.0,
        }
    }
}

/// Outcome of one occupied slot, as decided by [`ChannelModel::sample_slot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotFate {
    /// Nothing was decoded: every sender in the slot fails.
    Lost,
    /// Exactly one transmission was decoded: the `winner`-th sender of the
    /// slot (0-based, in the caller's deterministic sender order) succeeds;
    /// the remaining `k − 1` fail.
    Delivered { winner: u32 },
}

/// A noisy channel with softened collisions: the pair of a [`Recovery`] rule
/// and an independent per-slot erasure rate.
///
/// Sampling order is fixed (noise first, then recovery, then winner
/// selection) so every consumer draws the same RNG stream for the same
/// channel state — thread-count-invariant sweeps depend on this being
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Collision-softening rule.
    pub recovery: Recovery,
    /// Probability that a slot is erased outright (deep fade, external
    /// interference) regardless of how many senders it carries.
    pub noise: f64,
}

impl ChannelModel {
    /// The paper's channel: fatal collisions, no noise. Samples draw nothing
    /// from the RNG.
    pub fn ideal() -> ChannelModel {
        ChannelModel {
            recovery: Recovery::None,
            noise: 0.0,
        }
    }

    /// Multiplicity-independent softening: every collision survives with
    /// probability `p`.
    pub fn softened(p: f64) -> ChannelModel {
        ChannelModel {
            recovery: Recovery::Constant { p },
            noise: 0.0,
        }
    }

    /// A noisy but collision-fatal channel.
    pub fn noisy(noise: f64) -> ChannelModel {
        ChannelModel {
            recovery: Recovery::None,
            noise,
        }
    }

    /// Shorthand for `recovery.p_recover(k)`.
    pub fn p_recover(&self, k: u32) -> f64 {
        self.recovery.p_recover(k)
    }

    /// True iff this channel is exactly assumption A1: sampling is then a
    /// pure function (no RNG draws) and simulators may take their fast path.
    pub fn is_ideal(&self) -> bool {
        self.noise <= 0.0 && self.recovery.is_fatal()
    }

    /// Decides the fate of one slot carrying `k` transmissions.
    ///
    /// RNG usage contract (load-bearing for determinism regressions):
    /// * no draw for `k == 0`;
    /// * no draw at all when the channel [`is_ideal`](Self::is_ideal);
    /// * one `gen_bool` per active noise rate, one `gen_bool` per non-zero
    ///   recovery chance, one `gen_range` to pick a winner among `k ≥ 2`.
    pub fn sample_slot<R: Rng>(&self, k: u32, rng: &mut R) -> SlotFate {
        if k == 0 {
            return SlotFate::Lost;
        }
        if self.noise > 0.0 && rng.gen_bool(clamp01(self.noise)) {
            return SlotFate::Lost;
        }
        if k == 1 {
            return SlotFate::Delivered { winner: 0 };
        }
        let p = self.p_recover(k);
        if p > 0.0 && rng.gen_bool(p) {
            SlotFate::Delivered {
                winner: rng.gen_range(0..k),
            }
        } else {
            SlotFate::Lost
        }
    }
}

impl Default for ChannelModel {
    fn default() -> ChannelModel {
        ChannelModel::ideal()
    }
}

fn clamp01(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{experiment_tag, trial_rng};
    use crate::AlgorithmKind;
    use rand::rngs::SmallRng;
    use rand::RngCore;

    fn rng(trial: u32) -> SmallRng {
        trial_rng(experiment_tag("channel-test"), AlgorithmKind::Beb, 1, trial)
    }

    const ALL_RULES: [Recovery; 5] = [
        Recovery::None,
        Recovery::Constant { p: 0.4 },
        Recovery::Geometric { base: 0.7 },
        Recovery::Capture { max_k: 3, p: 0.9 },
        Recovery::Constant { p: 1.0 },
    ];

    #[test]
    fn lone_sender_always_recoverable() {
        for rule in ALL_RULES {
            assert_eq!(rule.p_recover(1), 1.0, "{rule:?}");
        }
    }

    #[test]
    fn empty_slot_delivers_nothing() {
        for rule in ALL_RULES {
            assert_eq!(rule.p_recover(0), 0.0, "{rule:?}");
        }
        let mut r = rng(0);
        assert_eq!(
            ChannelModel::softened(1.0).sample_slot(0, &mut r),
            SlotFate::Lost
        );
    }

    #[test]
    fn geometric_decays_and_capture_cuts_off() {
        let geo = Recovery::Geometric { base: 0.5 };
        assert_eq!(geo.p_recover(2), 0.5);
        assert_eq!(geo.p_recover(3), 0.25);
        let cap = Recovery::Capture { max_k: 3, p: 0.9 };
        assert_eq!(cap.p_recover(3), 0.9);
        assert_eq!(cap.p_recover(4), 0.0);
    }

    #[test]
    fn ideal_channel_draws_nothing() {
        // Identical generators: sampling through the ideal channel must
        // leave the stream untouched for any k.
        let mut a = rng(1);
        let mut b = rng(1);
        let ideal = ChannelModel::ideal();
        for k in 0..6 {
            let fate = ideal.sample_slot(k, &mut a);
            if k == 1 {
                assert_eq!(fate, SlotFate::Delivered { winner: 0 });
            } else {
                assert_eq!(fate, SlotFate::Lost);
            }
        }
        assert_eq!(a.next_u64(), b.next_u64(), "ideal channel consumed RNG");
    }

    #[test]
    fn is_ideal_matches_structure() {
        assert!(ChannelModel::ideal().is_ideal());
        assert!(ChannelModel::softened(0.0).is_ideal());
        assert!(ChannelModel {
            recovery: Recovery::Capture { max_k: 1, p: 0.9 },
            noise: 0.0
        }
        .is_ideal());
        assert!(!ChannelModel::softened(0.1).is_ideal());
        assert!(!ChannelModel::noisy(0.1).is_ideal());
    }

    #[test]
    fn certain_recovery_always_delivers_a_winner() {
        let model = ChannelModel::softened(1.0);
        let mut r = rng(2);
        for _ in 0..200 {
            match model.sample_slot(5, &mut r) {
                SlotFate::Delivered { winner } => assert!(winner < 5),
                SlotFate::Lost => panic!("p = 1 channel lost a slot"),
            }
        }
    }

    #[test]
    fn full_noise_loses_everything() {
        let model = ChannelModel {
            recovery: Recovery::Constant { p: 1.0 },
            noise: 1.0,
        };
        let mut r = rng(3);
        for k in 1..5 {
            assert_eq!(model.sample_slot(k, &mut r), SlotFate::Lost);
        }
    }

    #[test]
    fn sampled_recovery_rate_matches_p() {
        let model = ChannelModel::softened(0.3);
        let mut r = rng(4);
        let trials = 20_000;
        let delivered = (0..trials)
            .filter(|_| matches!(model.sample_slot(2, &mut r), SlotFate::Delivered { .. }))
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "recovery rate {rate} ≠ 0.3");
    }

    #[test]
    fn out_of_range_probabilities_clamp() {
        assert_eq!(Recovery::Constant { p: 7.0 }.p_recover(2), 1.0);
        assert_eq!(Recovery::Constant { p: -1.0 }.p_recover(2), 0.0);
        assert!(Recovery::Constant { p: -1.0 }.is_fatal());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Any recovery rule the workspace can express.
    fn arb_recovery() -> impl Strategy<Value = Recovery> {
        prop_oneof![
            Just(Recovery::None),
            (0.0..=1.0f64).prop_map(|p| Recovery::Constant { p }),
            (0.0..=1.0f64).prop_map(|base| Recovery::Geometric { base }),
            ((2u32..=8), (0.0..=1.0f64)).prop_map(|(max_k, p)| Recovery::Capture { max_k, p }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// A lone sender is never lost to the recovery rule.
        #[test]
        fn p_recover_of_one_is_one(rule in arb_recovery()) {
            prop_assert_eq!(rule.p_recover(1), 1.0);
        }

        /// Probabilities are valid and non-increasing in the multiplicity.
        #[test]
        fn p_recover_is_monotone_in_k(rule in arb_recovery(), k in 1u32..=16) {
            let here = rule.p_recover(k);
            let denser = rule.p_recover(k + 1);
            prop_assert!((0.0..=1.0).contains(&here), "p_recover({k}) = {here}");
            prop_assert!(denser <= here, "{rule:?}: p({}) = {denser} > p({k}) = {here}", k + 1);
        }

        /// The winner index is always a valid sender index.
        #[test]
        fn winners_are_in_range(
            k in 1u32..=12,
            p in 0.0..=1.0f64,
            noise in 0.0..=1.0f64,
            trial in 0u32..1000,
        ) {
            let model = ChannelModel { recovery: Recovery::Constant { p }, noise };
            let mut rng = crate::rng::trial_rng(
                crate::rng::experiment_tag("channel-prop"),
                crate::AlgorithmKind::Beb,
                k,
                trial,
            );
            if let SlotFate::Delivered { winner } = model.sample_slot(k, &mut rng) {
                prop_assert!(winner < k);
            }
        }
    }
}
