//! Contention-window growth schedules (Figure 2 of the paper).
//!
//! A *window schedule* is the deterministic part of a windowed backoff
//! algorithm: the sequence `W_0, W_1, W_2, …` of contention-window sizes a
//! station walks through as its transmissions keep failing. The random part —
//! picking a slot (or residual timer) uniformly inside each window — belongs
//! to the simulators.
//!
//! All schedules honour a [`Truncation`] (CWmin/CWmax); the paper's Table I
//! uses `CWmin = 1`, `CWmax = 1024`, the values IEEE 802.11g runs with in the
//! authors' NS3 setup.
//!
//! ```
//! use contention_core::schedule::{Schedule, Truncation, WindowSchedule};
//!
//! let mut beb = Schedule::beb(Truncation::paper());
//! assert_eq!(beb.take_windows(5), vec![1, 2, 4, 8, 16]);
//!
//! // SAWTOOTH's "backon" runs each doubled window back down to 2:
//! let mut stb = Schedule::sawtooth(Truncation::paper());
//! assert_eq!(stb.take_windows(6), vec![2, 4, 2, 8, 4, 2]);
//! ```

use serde::{Deserialize, Serialize};

/// CWmin/CWmax clamping applied to every schedule (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Truncation {
    /// Smallest window a schedule may emit (also the starting window).
    pub cw_min: u32,
    /// Largest window a schedule may emit; growth saturates here.
    pub cw_max: u32,
}

impl Truncation {
    /// The paper's values: CWmin = 1, CWmax = 1024 (Table I).
    pub fn paper() -> Truncation {
        Truncation {
            cw_min: 1,
            cw_max: 1024,
        }
    }

    /// No practical truncation — the abstract model of §I-A, where windows
    /// may grow without bound. (`u32::MAX` is unreachable in any experiment.)
    pub fn unbounded() -> Truncation {
        Truncation {
            cw_min: 1,
            cw_max: u32::MAX,
        }
    }

    /// Clamp a window size into `[cw_min, cw_max]`.
    pub fn clamp(&self, w: u32) -> u32 {
        w.clamp(self.cw_min, self.cw_max)
    }

    fn clamp_f64(&self, w: f64) -> u32 {
        if w >= self.cw_max as f64 {
            self.cw_max
        } else {
            (w.ceil() as u32).clamp(self.cw_min, self.cw_max)
        }
    }
}

impl Default for Truncation {
    fn default() -> Self {
        Truncation::paper()
    }
}

/// A (re)playable sequence of contention-window sizes.
///
/// Implementations are cheap to clone; every simulated station owns one.
pub trait WindowSchedule {
    /// The size, in slots, of the next contention window. Never returns 0.
    fn next_window(&mut self) -> u32;

    /// Rewind to the first window.
    fn reset(&mut self);

    /// Convenience: the next `count` windows (consumes schedule state).
    fn take_windows(&mut self, count: usize) -> Vec<u32> {
        (0..count).map(|_| self.next_window()).collect()
    }
}

/// Binary exponential backoff: `1, 2, 4, 8, …` up to CWmax (then flat).
#[derive(Debug, Clone)]
pub struct Beb {
    trunc: Truncation,
    current: u32,
}

impl Beb {
    pub fn new(trunc: Truncation) -> Beb {
        Beb {
            trunc,
            current: trunc.cw_min,
        }
    }
}

impl WindowSchedule for Beb {
    fn next_window(&mut self) -> u32 {
        let w = self.trunc.clamp(self.current);
        self.current = self.current.saturating_mul(2).min(self.trunc.cw_max);
        w
    }

    fn reset(&mut self) {
        self.current = self.trunc.cw_min;
    }
}

/// LOG-BACKOFF: `W ← (1 + 1/lg W) W` (Figure 2 with `r = 1/lg W`).
///
/// The width is tracked as a real number so the sub-doubling growth rate is
/// not destroyed by repeated rounding; the emitted window is the ceiling.
/// For `W ≤ 2` (where `lg W ≤ 1`) the rate clamps to `r = 1`, i.e. the
/// schedule doubles exactly like BEB until the logarithm is meaningful.
#[derive(Debug, Clone)]
pub struct LogBackoff {
    trunc: Truncation,
    width: f64,
}

impl LogBackoff {
    pub fn new(trunc: Truncation) -> LogBackoff {
        LogBackoff {
            trunc,
            width: trunc.cw_min as f64,
        }
    }
}

impl WindowSchedule for LogBackoff {
    fn next_window(&mut self) -> u32 {
        let w = self.trunc.clamp_f64(self.width);
        let r = 1.0 / crate::util::lg(self.width);
        self.width = (self.width * (1.0 + r)).min(self.trunc.cw_max as f64 * 2.0);
        w
    }

    fn reset(&mut self) {
        self.width = self.trunc.cw_min as f64;
    }
}

/// LOGLOG-BACKOFF: `W ← (1 + 1/lg lg W) W` (Figure 2 with `r = 1/lg lg W`).
///
/// Backs off *faster* than LOG-BACKOFF but slower than BEB — the paper's
/// §III-B1 calls it the "closest competitor" to BEB for exactly this reason.
#[derive(Debug, Clone)]
pub struct LogLogBackoff {
    trunc: Truncation,
    width: f64,
}

impl LogLogBackoff {
    pub fn new(trunc: Truncation) -> LogLogBackoff {
        LogLogBackoff {
            trunc,
            width: trunc.cw_min as f64,
        }
    }
}

impl WindowSchedule for LogLogBackoff {
    fn next_window(&mut self) -> u32 {
        let w = self.trunc.clamp_f64(self.width);
        let r = 1.0 / crate::util::lglg(self.width);
        self.width = (self.width * (1.0 + r)).min(self.trunc.cw_max as f64 * 2.0);
        w
    }

    fn reset(&mut self) {
        self.width = self.trunc.cw_min as f64;
    }
}

/// SAWTOOTH-BACKOFF (Geréb-Graus & Tsantilas; Greenberg & Leiserson).
///
/// Doubly-nested loop: the outer loop doubles `W`; for each outer `W` the
/// inner "backon" loop runs windows of size `W, W/2, W/4, …, 2`. Once the
/// outer window saturates at CWmax the sawtooth keeps cycling
/// `CWmax, CWmax/2, …, 2` — the truncated analogue of the unbounded
/// algorithm.
#[derive(Debug, Clone)]
pub struct Sawtooth {
    trunc: Truncation,
    outer: u32,
    inner: u32,
}

impl Sawtooth {
    pub fn new(trunc: Truncation) -> Sawtooth {
        // The first outer window is the first power of two > CWmin so the
        // backon run (down to 2) is non-empty; with the paper's CWmin = 1
        // this makes the window sequence 2, 4, 2, 8, 4, 2, 16, 8, 4, 2, …
        let outer = trunc.cw_min.next_power_of_two().max(2).min(trunc.cw_max);
        Sawtooth {
            trunc,
            outer,
            inner: outer,
        }
    }
}

impl WindowSchedule for Sawtooth {
    fn next_window(&mut self) -> u32 {
        let w = self.trunc.clamp(self.inner);
        if self.inner > 2 {
            self.inner /= 2;
        } else {
            self.outer = self.outer.saturating_mul(2).min(self.trunc.cw_max);
            self.inner = self.outer;
        }
        w
    }

    fn reset(&mut self) {
        *self = Sawtooth::new(self.trunc);
    }
}

/// Fixed backoff: the same window every time.
///
/// This is the transmission stage of the §VI size-estimation approach: once a
/// station has a (one-time) estimate `Ŵ ≈ n`, it repeats windows of size `Ŵ`
/// until it succeeds.
#[derive(Debug, Clone)]
pub struct FixedWindow {
    window: u32,
}

impl FixedWindow {
    pub fn new(window: u32, trunc: Truncation) -> FixedWindow {
        FixedWindow {
            window: trunc.clamp(window.max(1)),
        }
    }
}

impl WindowSchedule for FixedWindow {
    fn next_window(&mut self) -> u32 {
        self.window
    }

    fn reset(&mut self) {}
}

/// Polynomial backoff ablation: window `(attempt + 1)^degree`, clamped.
///
/// Not in the paper's evaluation; included because the related work the paper
/// cites ([53], Sun & Dai) argues quadratic backoff is a strong candidate
/// under non-bursty traffic, making it a natural extra baseline for the
/// single-batch experiments.
#[derive(Debug, Clone)]
pub struct Polynomial {
    trunc: Truncation,
    degree: u32,
    attempt: u32,
}

impl Polynomial {
    pub fn new(degree: u32, trunc: Truncation) -> Polynomial {
        Polynomial {
            trunc,
            degree: degree.max(1),
            attempt: 0,
        }
    }
}

impl WindowSchedule for Polynomial {
    fn next_window(&mut self) -> u32 {
        let base = (self.attempt as u64 + 1).saturating_pow(self.degree);
        self.attempt = self.attempt.saturating_add(1);
        self.trunc.clamp(base.min(u32::MAX as u64) as u32)
    }

    fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Enum dispatch over every schedule, so simulators can hold stations of
/// mixed algorithms without boxing.
#[derive(Debug, Clone)]
pub enum Schedule {
    Beb(Beb),
    Log(LogBackoff),
    LogLog(LogLogBackoff),
    Sawtooth(Sawtooth),
    Fixed(FixedWindow),
    Polynomial(Polynomial),
}

impl Schedule {
    pub fn beb(trunc: Truncation) -> Schedule {
        Schedule::Beb(Beb::new(trunc))
    }
    pub fn log_backoff(trunc: Truncation) -> Schedule {
        Schedule::Log(LogBackoff::new(trunc))
    }
    pub fn loglog_backoff(trunc: Truncation) -> Schedule {
        Schedule::LogLog(LogLogBackoff::new(trunc))
    }
    pub fn sawtooth(trunc: Truncation) -> Schedule {
        Schedule::Sawtooth(Sawtooth::new(trunc))
    }
    pub fn fixed(window: u32, trunc: Truncation) -> Schedule {
        Schedule::Fixed(FixedWindow::new(window, trunc))
    }
    pub fn polynomial(degree: u32, trunc: Truncation) -> Schedule {
        Schedule::Polynomial(Polynomial::new(degree, trunc))
    }
}

impl WindowSchedule for Schedule {
    fn next_window(&mut self) -> u32 {
        match self {
            Schedule::Beb(s) => s.next_window(),
            Schedule::Log(s) => s.next_window(),
            Schedule::LogLog(s) => s.next_window(),
            Schedule::Sawtooth(s) => s.next_window(),
            Schedule::Fixed(s) => s.next_window(),
            Schedule::Polynomial(s) => s.next_window(),
        }
    }

    fn reset(&mut self) {
        match self {
            Schedule::Beb(s) => s.reset(),
            Schedule::Log(s) => s.reset(),
            Schedule::LogLog(s) => s.reset(),
            Schedule::Sawtooth(s) => s.reset(),
            Schedule::Fixed(s) => s.reset(),
            Schedule::Polynomial(s) => s.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(mut s: Schedule, count: usize) -> Vec<u32> {
        s.take_windows(count)
    }

    #[test]
    fn beb_doubles_and_saturates() {
        let t = Truncation {
            cw_min: 1,
            cw_max: 16,
        };
        assert_eq!(windows(Schedule::beb(t), 7), vec![1, 2, 4, 8, 16, 16, 16]);
    }

    #[test]
    fn beb_paper_truncation() {
        let w = windows(Schedule::beb(Truncation::paper()), 12);
        assert_eq!(w[..11], [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]);
        assert_eq!(w[11], 1024);
    }

    #[test]
    fn log_backoff_grows_slower_than_beb_but_monotonically() {
        let mut s = Schedule::log_backoff(Truncation::unbounded());
        let w = s.take_windows(40);
        for pair in w.windows(2) {
            assert!(pair[1] >= pair[0], "monotone: {w:?}");
        }
        // After the initial doubling region, growth must be sub-doubling.
        let idx = w.iter().position(|&x| x >= 16).unwrap();
        for pair in w[idx..].windows(2) {
            assert!(
                pair[1] < pair[0] * 2,
                "sub-doubling after W=16: {pair:?} in {w:?}"
            );
        }
        // And slower than BEB overall: BEB reaches 1024 in 11 windows.
        assert!(w[10] < 1024, "LB should lag BEB: {w:?}");
    }

    #[test]
    fn loglog_backs_off_faster_than_log() {
        // Result 4 discussion (§III-B1): LLB backs off faster than LB, i.e.
        // after the same number of failures its window is at least as large.
        let lb = windows(Schedule::log_backoff(Truncation::unbounded()), 30);
        let llb = windows(Schedule::loglog_backoff(Truncation::unbounded()), 30);
        for (i, (l, ll)) in lb.iter().zip(llb.iter()).enumerate() {
            assert!(ll >= l, "window {i}: LLB {ll} < LB {l}");
        }
        // Strictly ahead somewhere past the doubling prefix.
        assert!(llb[20] > lb[20], "LLB {llb:?} vs LB {lb:?}");
    }

    #[test]
    fn beb_dominates_both_log_variants() {
        let beb = windows(Schedule::beb(Truncation::unbounded()), 25);
        let lb = windows(Schedule::log_backoff(Truncation::unbounded()), 25);
        let llb = windows(Schedule::loglog_backoff(Truncation::unbounded()), 25);
        for i in 0..25 {
            assert!(beb[i] >= lb[i]);
            assert!(beb[i] >= llb[i]);
        }
    }

    #[test]
    fn sawtooth_shape() {
        let t = Truncation {
            cw_min: 1,
            cw_max: 64,
        };
        let w = windows(Schedule::sawtooth(t), 10);
        assert_eq!(w, vec![2, 4, 2, 8, 4, 2, 16, 8, 4, 2]);
    }

    #[test]
    fn sawtooth_saturated_cycle() {
        let t = Truncation {
            cw_min: 1,
            cw_max: 8,
        };
        let w = windows(Schedule::sawtooth(t), 12);
        // 2 | 4,2 | 8,4,2 | then cycles 8,4,2 forever.
        assert_eq!(w, vec![2, 4, 2, 8, 4, 2, 8, 4, 2, 8, 4, 2]);
    }

    #[test]
    fn fixed_window_is_constant_and_clamped() {
        let t = Truncation {
            cw_min: 2,
            cw_max: 100,
        };
        assert_eq!(windows(Schedule::fixed(37, t), 3), vec![37, 37, 37]);
        assert_eq!(windows(Schedule::fixed(1000, t), 2), vec![100, 100]);
        assert_eq!(windows(Schedule::fixed(0, t), 1), vec![2]);
    }

    #[test]
    fn polynomial_quadratic() {
        let w = windows(Schedule::polynomial(2, Truncation::unbounded()), 6);
        assert_eq!(w, vec![1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn reset_replays_identically() {
        for kind in [
            Schedule::beb(Truncation::paper()),
            Schedule::log_backoff(Truncation::paper()),
            Schedule::loglog_backoff(Truncation::paper()),
            Schedule::sawtooth(Truncation::paper()),
            Schedule::polynomial(3, Truncation::paper()),
        ] {
            let mut s = kind;
            let first = s.take_windows(20);
            s.reset();
            let second = s.take_windows(20);
            assert_eq!(first, second);
        }
    }

    #[test]
    fn no_schedule_emits_zero_or_exceeds_cap() {
        let t = Truncation::paper();
        for sched in [
            Schedule::beb(t),
            Schedule::log_backoff(t),
            Schedule::loglog_backoff(t),
            Schedule::sawtooth(t),
            Schedule::fixed(64, t),
            Schedule::polynomial(2, t),
        ] {
            let mut s = sched;
            for (i, w) in s.take_windows(200).into_iter().enumerate() {
                assert!(w >= 1, "window {i} is zero");
                assert!(w <= t.cw_max, "window {i} = {w} exceeds CWmax");
            }
        }
    }
}
