//! Closed-form asymptotic guarantees from the paper's Tables II and III.
//!
//! These are Θ/Ω shapes with the hidden constant set to 1; they are used to
//! *compare growth rates* against measured data (ratio flatness), never as
//! absolute predictions. All iterated logarithms clamp at 1 (see
//! [`crate::util::lg`]) so every formula is finite for `n ≥ 1`.

use crate::algorithm::AlgorithmKind;
use crate::util::{lg, lglg, lglglg};

/// Table II: with-high-probability contention-window-slot guarantees for a
/// single batch of `n` packets.
///
/// | Algorithm | CW slots |
/// |---|---|
/// | BEB | Θ(n lg n) |
/// | LB  | Θ(n lg n / lg lg n) |
/// | LLB | Θ(n lg lg n / lg lg lg n) |
/// | STB | Θ(n) |
pub fn cw_slots_bound(kind: AlgorithmKind, n: u64) -> f64 {
    let nf = n as f64;
    match kind {
        AlgorithmKind::Beb => nf * lg(nf),
        AlgorithmKind::LogBackoff => nf * lg(nf) / lglg(nf),
        AlgorithmKind::LogLogBackoff => nf * lglg(nf) / lglglg(nf),
        AlgorithmKind::Sawtooth => nf,
        // Fixed backoff at W = Θ(n) completes in Θ(n log n) slots in
        // expectation (coupon-collector-style tail), but with a good
        // overestimate most packets finish in O(n); we report the
        // conservative bound.
        AlgorithmKind::Fixed { .. } | AlgorithmKind::BestOfK { .. } => nf * lg(nf),
        // Polynomial backoff: windows (i+1)^d; reaching width n takes
        // n^{1/d} windows whose total size is Θ(n^{1+1/d}).
        AlgorithmKind::Polynomial { degree } => nf.powf(1.0 + 1.0 / degree as f64),
    }
}

/// Table III, second column: asymptotic bounds on disjoint collisions `C_A`
/// (Claims 1–4 of §IV).
///
/// | Algorithm | Collisions |
/// |---|---|
/// | BEB | O(n) |
/// | LB  | Θ(n lg n / lg lg n) |
/// | LLB | Θ(n lg lg n / lg lg lg n) |
/// | STB | Θ(n) |
pub fn collisions_bound(kind: AlgorithmKind, n: u64) -> f64 {
    let nf = n as f64;
    match kind {
        AlgorithmKind::Beb => nf,
        AlgorithmKind::LogBackoff => nf * lg(nf) / lglg(nf),
        AlgorithmKind::LogLogBackoff => nf * lglg(nf) / lglglg(nf),
        AlgorithmKind::Sawtooth => nf,
        // A good one-time overestimate yields O(n) collisions (constant
        // per-slot collision probability never recurs); see §VI.
        AlgorithmKind::Fixed { .. } | AlgorithmKind::BestOfK { .. } => nf,
        AlgorithmKind::Polynomial { .. } => nf * lg(nf),
    }
}

/// Table III, third column: total time `T_A = Θ(C_A · P + W_A)` with packet
/// time `P` expressed in slot units.
pub fn total_time_bound(kind: AlgorithmKind, n: u64, packet_time_slots: f64) -> f64 {
    collisions_bound(kind, n) * packet_time_slots + cw_slots_bound(kind, n)
}

/// Result 5 / §IV-D: the packet-size growth threshold above which LLB's total
/// time asymptotically exceeds BEB's: `P = ω(lg n · lg lg lg n / lg lg n)`.
pub fn llb_vs_beb_packet_threshold(n: u64) -> f64 {
    let nf = n as f64;
    lg(nf) * lglglg(nf) / lglg(nf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlgorithmKind::*;

    #[test]
    fn table2_ordering_at_large_n() {
        // Asymptotically (CW slots): STB < LLB < LB < BEB.
        let n = 1u64 << 40;
        let stb = cw_slots_bound(Sawtooth, n);
        let llb = cw_slots_bound(LogLogBackoff, n);
        let lb = cw_slots_bound(LogBackoff, n);
        let beb = cw_slots_bound(Beb, n);
        assert!(stb < llb && llb < lb && lb < beb, "{stb} {llb} {lb} {beb}");
    }

    #[test]
    fn table3_collision_ordering_at_large_n() {
        // Asymptotically (collisions): {BEB, STB} = Θ(n) < LLB < LB.
        let n = 1u64 << 40;
        let beb = collisions_bound(Beb, n);
        let stb = collisions_bound(Sawtooth, n);
        let llb = collisions_bound(LogLogBackoff, n);
        let lb = collisions_bound(LogBackoff, n);
        assert_eq!(beb, stb);
        assert!(stb < llb && llb < lb);
    }

    #[test]
    fn llb_collision_growth_is_sluggish() {
        // §V-A(ii): LLB's collision excess over STB grows very slowly —
        // the ratio at n = 2^20 is still small.
        let n = 1u64 << 20;
        let ratio = collisions_bound(LogLogBackoff, n) / collisions_bound(Sawtooth, n);
        assert!(ratio > 1.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn total_time_reversal_for_large_packets() {
        // Result 5: for P growing like lg n, LLB and LB exceed BEB and STB.
        let n = 1u64 << 30;
        let p = lg(n as f64); // P = Θ(lg n) slots
        let beb = total_time_bound(Beb, n, p);
        let stb = total_time_bound(Sawtooth, n, p);
        let llb = total_time_bound(LogLogBackoff, n, p);
        let lb = total_time_bound(LogBackoff, n, p);
        assert!(beb < llb, "BEB {beb} vs LLB {llb}");
        assert!(stb < llb);
        assert!(llb < lb);
    }

    #[test]
    fn constant_packet_time_preserves_cw_ordering() {
        // With P = Θ(1), Table III gives BEB = O(n·1 + n lg n) = Θ(n lg n)
        // while LLB = Θ(n lg lg n / lg lg lg n): the theory ordering.
        let n = 1u64 << 30;
        assert!(total_time_bound(LogLogBackoff, n, 1.0) < total_time_bound(Beb, n, 1.0));
    }

    #[test]
    fn threshold_is_sublogarithmic() {
        let n = 1u64 << 30;
        assert!(llb_vs_beb_packet_threshold(n) < lg(n as f64));
        assert!(llb_vs_beb_packet_threshold(n) >= 1.0);
    }

    #[test]
    fn bounds_are_finite_and_positive_for_all_small_n() {
        for n in 1..=2_000u64 {
            for kind in [
                Beb,
                LogBackoff,
                LogLogBackoff,
                Sawtooth,
                Polynomial { degree: 2 },
            ] {
                let w = cw_slots_bound(kind, n);
                let c = collisions_bound(kind, n);
                assert!(w.is_finite() && w > 0.0, "{kind:?} n={n} w={w}");
                assert!(c.is_finite() && c > 0.0, "{kind:?} n={n} c={c}");
            }
        }
    }
}
