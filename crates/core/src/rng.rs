//! Deterministic per-trial RNG derivation.
//!
//! Every experiment derives an independent generator from
//! `(experiment tag, algorithm, n, trial index)` via SplitMix64 mixing, so
//! results are bit-reproducible regardless of how trials are scheduled across
//! threads, and different experiments never share streams.

use crate::algorithm::AlgorithmKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a well-distributed 64-bit mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine components into one seed, order-sensitively.
pub fn mix_seed(components: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // π fractional bits — arbitrary non-zero start
    for &c in components {
        acc = splitmix64(acc ^ c);
    }
    acc
}

/// A stable small tag per algorithm so seeds differ across algorithms even at
/// identical `(n, trial)`.
pub fn algorithm_tag(kind: AlgorithmKind) -> u64 {
    match kind {
        AlgorithmKind::Beb => 1,
        AlgorithmKind::LogBackoff => 2,
        AlgorithmKind::LogLogBackoff => 3,
        AlgorithmKind::Sawtooth => 4,
        AlgorithmKind::Fixed { window } => 5 ^ ((window as u64) << 8),
        AlgorithmKind::BestOfK { k } => 6 ^ ((k as u64) << 8),
        AlgorithmKind::Polynomial { degree } => 7 ^ ((degree as u64) << 8),
    }
}

/// The generator for one trial of one experiment.
///
/// `experiment` is a free-form tag (e.g. a FNV hash of `"fig7"`); use
/// [`experiment_tag`] for strings.
pub fn trial_rng(experiment: u64, kind: AlgorithmKind, n: u32, trial: u32) -> SmallRng {
    let seed = mix_seed(&[experiment, algorithm_tag(kind), n as u64, trial as u64]);
    SmallRng::seed_from_u64(seed)
}

/// FNV-1a hash of an experiment name.
pub fn experiment_tag(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_not_identity_and_spreads() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: single-bit input change flips many output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "weak avalanche: {d} bits");
    }

    #[test]
    fn mix_seed_is_order_sensitive() {
        assert_ne!(mix_seed(&[1, 2]), mix_seed(&[2, 1]));
        assert_ne!(mix_seed(&[1]), mix_seed(&[1, 0]));
    }

    #[test]
    fn trial_rngs_reproduce() {
        let tag = experiment_tag("fig7");
        let mut a = trial_rng(tag, AlgorithmKind::Beb, 100, 3);
        let mut b = trial_rng(tag, AlgorithmKind::Beb, 100, 3);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn trial_rngs_differ_across_dimensions() {
        let tag = experiment_tag("fig7");
        let base: u64 = trial_rng(tag, AlgorithmKind::Beb, 100, 3).gen();
        let by_trial: u64 = trial_rng(tag, AlgorithmKind::Beb, 100, 4).gen();
        let by_n: u64 = trial_rng(tag, AlgorithmKind::Beb, 101, 3).gen();
        let by_alg: u64 = trial_rng(tag, AlgorithmKind::Sawtooth, 100, 3).gen();
        let by_exp: u64 = trial_rng(experiment_tag("fig8"), AlgorithmKind::Beb, 100, 3).gen();
        assert_ne!(base, by_trial);
        assert_ne!(base, by_n);
        assert_ne!(base, by_alg);
        assert_ne!(base, by_exp);
    }

    #[test]
    fn algorithm_tags_distinguish_parameters() {
        assert_ne!(
            algorithm_tag(AlgorithmKind::BestOfK { k: 3 }),
            algorithm_tag(AlgorithmKind::BestOfK { k: 5 })
        );
        assert_ne!(
            algorithm_tag(AlgorithmKind::Fixed { window: 64 }),
            algorithm_tag(AlgorithmKind::Fixed { window: 128 })
        );
    }

    #[test]
    fn experiment_tag_is_stable_fnv() {
        // FNV-1a of "a" is a published constant.
        assert_eq!(experiment_tag("a"), 0xaf63dc4c8601ec8c);
        assert_ne!(experiment_tag("fig7"), experiment_tag("fig8"));
    }
}
