//! Deterministic per-trial RNG derivation.
//!
//! Every experiment derives an independent generator from
//! `(experiment tag, algorithm, n, trial index)` via SplitMix64 mixing, so
//! results are bit-reproducible regardless of how trials are scheduled across
//! threads, and different experiments never share streams.

use crate::algorithm::AlgorithmKind;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// SplitMix64 finalizer — a well-distributed 64-bit mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine components into one seed, order-sensitively.
pub fn mix_seed(components: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // π fractional bits — arbitrary non-zero start
    for &c in components {
        acc = splitmix64(acc ^ c);
    }
    acc
}

/// A stable small tag per algorithm so seeds differ across algorithms even at
/// identical `(n, trial)`.
pub fn algorithm_tag(kind: AlgorithmKind) -> u64 {
    match kind {
        AlgorithmKind::Beb => 1,
        AlgorithmKind::LogBackoff => 2,
        AlgorithmKind::LogLogBackoff => 3,
        AlgorithmKind::Sawtooth => 4,
        AlgorithmKind::Fixed { window } => 5 ^ ((window as u64) << 8),
        AlgorithmKind::BestOfK { k } => 6 ^ ((k as u64) << 8),
        AlgorithmKind::Polynomial { degree } => 7 ^ ((degree as u64) << 8),
    }
}

/// The generator for one trial of one experiment.
///
/// `experiment` is a free-form tag (e.g. a FNV hash of `"fig7"`); use
/// [`experiment_tag`] for strings.
pub fn trial_rng(experiment: u64, kind: AlgorithmKind, n: u32, trial: u32) -> SmallRng {
    let seed = mix_seed(&[experiment, algorithm_tag(kind), n as u64, trial as u64]);
    SmallRng::seed_from_u64(seed)
}

/// A reusable buffer of raw RNG output for hot loops that draw many values
/// per step (e.g. one backoff slot per alive station per window).
///
/// Prefetching `next_u64` words in a tight loop and consuming them through
/// [`DrawBuffer::uniform_below`] keeps the generator state out of the
/// draw-consuming loop's dependency chain, while producing **bit-identical
/// values in bit-identical order** to calling `rng.gen_range(0..span)` once
/// per draw: `uniform_below` replicates the vendored `rand`'s zone-based
/// rejection exactly, and a rejected word's replacement is pulled straight
/// from the generator (the buffer merely *relocates* where words are
/// produced, never reorders them). The caller contract that makes this true:
/// [`prefill`](DrawBuffer::prefill) exactly the number of draws about to be
/// consumed, then consume them all — the buffer never holds words across
/// prefills, so interleaved direct use of the same generator (noise flips,
/// slot resolution) sees exactly the stream it would have unbatched.
#[derive(Default)]
pub struct DrawBuffer {
    words: Vec<u64>,
    cursor: usize,
}

impl DrawBuffer {
    /// Discards any unconsumed words and refills with exactly `count` fresh
    /// words of `rng` output.
    #[inline]
    pub fn prefill<R: RngCore>(&mut self, rng: &mut R, count: usize) {
        debug_assert_eq!(self.cursor, self.words.len(), "unconsumed draws");
        self.words.clear();
        self.words.resize(count, 0);
        for w in self.words.iter_mut() {
            *w = rng.next_u64();
        }
        self.cursor = 0;
    }

    /// The next raw word: buffered if available, fresh from `rng` otherwise
    /// (rejection replacements after the prefetched budget is spent).
    #[inline]
    fn next_word<R: RngCore>(&mut self, rng: &mut R) -> u64 {
        if self.cursor < self.words.len() {
            let w = self.words[self.cursor];
            self.cursor += 1;
            w
        } else {
            rng.next_u64()
        }
    }

    /// Uniform draw in `[0, span)` — bit-identical to the vendored
    /// `rng.gen_range(0..span)` (same zone-based rejection), consuming zero
    /// words when `span == 1` and otherwise one word per accepted draw plus
    /// one per (astronomically rare) rejection.
    #[inline]
    pub fn uniform_below<R: RngCore>(&mut self, rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        if span.is_power_of_two() {
            // The zone is then u64::MAX (no rejection possible) and the
            // modulo reduces to a mask; same value, cheaper arithmetic.
            return self.next_word(rng) & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_word(rng);
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Caps the retained capacity (sharded sweeps park workers for long
    /// stretches; a pathological window should not pin its high-water mark).
    pub fn shrink_to(&mut self, cap: usize) {
        self.words.shrink_to(cap);
    }
}

/// FNV-1a hash of an experiment name.
pub fn experiment_tag(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_not_identity_and_spreads() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: single-bit input change flips many output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "weak avalanche: {d} bits");
    }

    #[test]
    fn mix_seed_is_order_sensitive() {
        assert_ne!(mix_seed(&[1, 2]), mix_seed(&[2, 1]));
        assert_ne!(mix_seed(&[1]), mix_seed(&[1, 0]));
    }

    #[test]
    fn trial_rngs_reproduce() {
        let tag = experiment_tag("fig7");
        let mut a = trial_rng(tag, AlgorithmKind::Beb, 100, 3);
        let mut b = trial_rng(tag, AlgorithmKind::Beb, 100, 3);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn trial_rngs_differ_across_dimensions() {
        let tag = experiment_tag("fig7");
        let base: u64 = trial_rng(tag, AlgorithmKind::Beb, 100, 3).gen();
        let by_trial: u64 = trial_rng(tag, AlgorithmKind::Beb, 100, 4).gen();
        let by_n: u64 = trial_rng(tag, AlgorithmKind::Beb, 101, 3).gen();
        let by_alg: u64 = trial_rng(tag, AlgorithmKind::Sawtooth, 100, 3).gen();
        let by_exp: u64 = trial_rng(experiment_tag("fig8"), AlgorithmKind::Beb, 100, 3).gen();
        assert_ne!(base, by_trial);
        assert_ne!(base, by_n);
        assert_ne!(base, by_alg);
        assert_ne!(base, by_exp);
    }

    #[test]
    fn algorithm_tags_distinguish_parameters() {
        assert_ne!(
            algorithm_tag(AlgorithmKind::BestOfK { k: 3 }),
            algorithm_tag(AlgorithmKind::BestOfK { k: 5 })
        );
        assert_ne!(
            algorithm_tag(AlgorithmKind::Fixed { window: 64 }),
            algorithm_tag(AlgorithmKind::Fixed { window: 128 })
        );
    }

    #[test]
    fn experiment_tag_is_stable_fnv() {
        // FNV-1a of "a" is a published constant.
        assert_eq!(experiment_tag("a"), 0xaf63dc4c8601ec8c);
        assert_ne!(experiment_tag("fig7"), experiment_tag("fig8"));
    }

    #[test]
    fn draw_buffer_matches_gen_range_bit_for_bit() {
        // Batched draws must replay the exact unbatched stream, across
        // power-of-two spans (mask path), non-power-of-two spans (zone
        // rejection) and span 1 (no word consumed).
        for span in [1u64, 2, 3, 7, 8, 1024, 1 << 17, (1 << 17) - 5, u64::MAX] {
            let mut direct = trial_rng(experiment_tag("buf"), AlgorithmKind::Beb, 9, 0);
            let mut batched = direct.clone();
            let mut buf = DrawBuffer::default();
            for round in 0..32usize {
                let count = round % 5;
                buf.prefill(&mut batched, if span == 1 { 0 } else { count });
                for _ in 0..count {
                    assert_eq!(
                        buf.uniform_below(&mut batched, span),
                        direct.gen_range(0..span),
                        "span {span} round {round}"
                    );
                }
                // Interleaved direct use between prefills (the sampled
                // path's channel draws) must see the same stream too.
                assert_eq!(batched.gen::<f64>(), direct.gen::<f64>());
            }
        }
    }

    #[test]
    fn draw_buffer_overflow_draws_continue_the_stream() {
        // Rejection replacements past the prefetched budget fall through to
        // the generator; the merged sequence is position-for-position the
        // raw word stream.
        let mut a = trial_rng(experiment_tag("buf-ovf"), AlgorithmKind::Beb, 1, 1);
        let raw: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut b = trial_rng(experiment_tag("buf-ovf"), AlgorithmKind::Beb, 1, 1);
        let mut buf = DrawBuffer::default();
        buf.prefill(&mut b, 16);
        let spans = [8u64, 1 << 20, 3, 9, 1 << 33];
        let mut got = Vec::new();
        for i in 0..40usize {
            let span = spans[i % spans.len()];
            got.push(buf.uniform_below(&mut b, span));
        }
        // Replay by hand over the raw words (zone rejection inlined).
        let mut it = raw.iter().copied();
        for (i, &g) in got.iter().enumerate() {
            let span = spans[i % spans.len()];
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            let v = loop {
                let v = it.next().expect("enough raw words");
                if v <= zone {
                    break v;
                }
            };
            assert_eq!(g, v % span, "draw {i}");
        }
    }
}
