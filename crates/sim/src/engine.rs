//! The generic sweep engine: one [`Simulator`] trait, one [`Sweep`].
//!
//! Before this module existed, every execution backend (the abstract
//! windowed simulator, the 802.11g MAC simulator) carried its own
//! near-identical sweep struct, and many figures hand-rolled their own trial
//! loops on top. The engine collapses all of that into:
//!
//! * [`Simulator`] — how to run one trial of a backend: an associated
//!   `Config`, an associated raw `Output`, and a pure
//!   `run(config, n, rng) -> Output` function.
//! * [`run_trial`] — one trial with the canonical
//!   `(experiment tag, algorithm, n, trial)` RNG derivation. Every trial in
//!   the repository — sweeps, figures, benches — goes through this
//!   derivation, so any number anywhere is reproducible in isolation.
//! * [`Sweep`] — the Cartesian `(algorithm × n × trial)` grid, executed on
//!   the deterministic parallel runner. Results are keyed by input index,
//!   so the output (ordering *and* every number) is independent of the
//!   worker-thread count.
//!
//! A backend plugs in by implementing `Simulator`; nothing else in the
//! experiment layer changes. This is the seam where additional channel
//! models (e.g. the noisy/corrupted-slot model of arXiv:2408.11275) slot in.

use crate::parallel::parallel_map_threads;
use crate::summary::TrialSummary;
use contention_core::algorithm::AlgorithmKind;
use contention_core::rng::{experiment_tag, trial_rng};
use rand::rngs::SmallRng;

/// One execution backend: everything [`Sweep`] needs to run trials of it.
///
/// Implementations are zero-sized entry points (trial state lives inside
/// `run`), so a `Sweep<S>` is fully described by its config and grid.
pub trait Simulator {
    /// Full per-trial configuration, including the algorithm under test.
    type Config: Clone + Send + Sync;
    /// Raw per-trial output. Backends with a [`TrialSummary`] conversion get
    /// [`Sweep::run`]; the rest use [`Sweep::run_raw`].
    type Output: Send;

    /// Short name used in diagnostics.
    const NAME: &'static str;

    /// The algorithm a config runs — used to derive the per-trial RNG.
    fn algorithm(config: &Self::Config) -> AlgorithmKind;

    /// A copy of `config` running `algorithm` instead; how [`Sweep`] builds
    /// each cell's config from its base config.
    fn with_algorithm(config: &Self::Config, algorithm: AlgorithmKind) -> Self::Config;

    /// One trial of `n` stations. Must be a pure function of
    /// `(config, n, rng)` — determinism of every sweep rests on this.
    fn run(config: &Self::Config, n: u32, rng: &mut SmallRng) -> Self::Output;
}

/// Runs a single trial with the canonical RNG derivation.
///
/// This is the one place where `(experiment, algorithm, n, trial)` turns
/// into a generator; figures, sweeps and benches all share it.
pub fn run_trial<S: Simulator>(
    experiment: &str,
    config: &S::Config,
    n: u32,
    trial: u32,
) -> S::Output {
    let algorithm = S::algorithm(config);
    let mut rng = trial_rng(experiment_tag(experiment), algorithm, n, trial);
    S::run(config, n, &mut rng)
}

/// One aggregate cell: all trials of one `(algorithm, n)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell<T> {
    pub algorithm: AlgorithmKind,
    pub n: u32,
    pub trials: Vec<T>,
}

/// The summarized cell type every figure consumes.
pub type SweepCell = Cell<TrialSummary>;

/// A Cartesian `(algorithm × n × trial)` sweep over one simulator.
///
/// Every trial derives its RNG from `(experiment tag, algorithm, n, trial)`,
/// so the sweep's numbers are independent of thread count and scheduling.
pub struct Sweep<S: Simulator> {
    /// RNG namespace; also names the experiment in outputs.
    pub experiment: &'static str,
    /// Base configuration; the sweep overrides the algorithm per cell.
    pub config: S::Config,
    pub algorithms: Vec<AlgorithmKind>,
    pub ns: Vec<u32>,
    pub trials: u32,
    /// Worker threads (`None` = all available).
    pub threads: Option<usize>,
}

impl<S: Simulator> Clone for Sweep<S> {
    fn clone(&self) -> Sweep<S> {
        Sweep {
            experiment: self.experiment,
            config: self.config.clone(),
            algorithms: self.algorithms.clone(),
            ns: self.ns.clone(),
            trials: self.trials,
            threads: self.threads,
        }
    }
}

impl<S: Simulator> std::fmt::Debug for Sweep<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("simulator", &S::NAME)
            .field("experiment", &self.experiment)
            .field("algorithms", &self.algorithms)
            .field("ns", &self.ns)
            .field("trials", &self.trials)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<S: Simulator> Sweep<S> {
    /// Runs the grid, mapping each raw output inside the worker thread
    /// (large outputs are reduced before being collected).
    pub fn run_mapped<T, F>(&self, map: F) -> Vec<Cell<T>>
    where
        T: Send,
        F: Fn(S::Output) -> T + Sync,
    {
        // Cells are keyed by (algorithm, n) position; a duplicate grid entry
        // would silently funnel every trial into the first occurrence.
        for (i, a) in self.algorithms.iter().enumerate() {
            assert!(
                !self.algorithms[..i].contains(a),
                "duplicate algorithm {a} in sweep grid"
            );
        }
        for (i, n) in self.ns.iter().enumerate() {
            assert!(!self.ns[..i].contains(n), "duplicate n={n} in sweep grid");
        }
        let tag = experiment_tag(self.experiment);
        let items: Vec<(AlgorithmKind, u32, u32)> = self
            .algorithms
            .iter()
            .flat_map(|&alg| {
                self.ns
                    .iter()
                    .flat_map(move |&n| (0..self.trials).map(move |t| (alg, n, t)))
            })
            .collect();
        let base = self.config.clone();
        let threads = self.threads.unwrap_or_else(default_threads);
        let results = parallel_map_threads(items.clone(), threads, move |(alg, n, t)| {
            let config = S::with_algorithm(&base, alg);
            let mut rng = trial_rng(tag, alg, n, t);
            map(S::run(&config, n, &mut rng))
        });
        collect_cells(&self.algorithms, &self.ns, self.trials, items, results)
    }

    /// Runs the grid, keeping each backend's raw output.
    pub fn run_raw(&self) -> Vec<Cell<S::Output>> {
        self.run_mapped(|output| output)
    }
}

impl<S: Simulator> Sweep<S>
where
    TrialSummary: From<S::Output>,
{
    /// Runs the grid and summarizes every trial.
    pub fn run(&self) -> Vec<SweepCell> {
        self.run_mapped(TrialSummary::from)
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn collect_cells<T>(
    algorithms: &[AlgorithmKind],
    ns: &[u32],
    trials: u32,
    items: Vec<(AlgorithmKind, u32, u32)>,
    results: Vec<T>,
) -> Vec<Cell<T>> {
    let mut cells: Vec<Cell<T>> = algorithms
        .iter()
        .flat_map(|&alg| {
            ns.iter().map(move |&n| Cell {
                algorithm: alg,
                n,
                trials: Vec::with_capacity(trials as usize),
            })
        })
        .collect();
    let index = |alg: AlgorithmKind, n: u32| -> usize {
        let ai = algorithms
            .iter()
            .position(|&a| a == alg)
            .expect("known algorithm");
        let ni = ns.iter().position(|&m| m == n).expect("known n");
        ai * ns.len() + ni
    };
    for ((alg, n, _), result) in items.into_iter().zip(results) {
        cells[index(alg, n)].trials.push(result);
    }
    cells
}

/// Looks up one cell in a sweep result.
pub fn cell<T>(cells: &[Cell<T>], alg: AlgorithmKind, n: u32) -> &Cell<T> {
    cells
        .iter()
        .find(|c| c.algorithm == alg && c.n == n)
        .unwrap_or_else(|| panic!("no cell for {alg} at n={n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::metrics::BatchMetrics;
    use rand::Rng;

    /// A deterministic toy backend: "runs" a trial by hashing its inputs.
    struct ToySim;

    #[derive(Debug, Clone, Copy)]
    struct ToyConfig {
        algorithm: AlgorithmKind,
        scale: u64,
    }

    impl Simulator for ToySim {
        type Config = ToyConfig;
        type Output = BatchMetrics;
        const NAME: &'static str = "toy";

        fn algorithm(config: &ToyConfig) -> AlgorithmKind {
            config.algorithm
        }

        fn with_algorithm(config: &ToyConfig, algorithm: AlgorithmKind) -> ToyConfig {
            ToyConfig {
                algorithm,
                ..*config
            }
        }

        fn run(config: &ToyConfig, n: u32, rng: &mut SmallRng) -> BatchMetrics {
            BatchMetrics {
                n,
                successes: n,
                cw_slots: config.scale * rng.gen_range(1u64..100),
                ..BatchMetrics::default()
            }
        }
    }

    fn toy_sweep(threads: Option<usize>) -> Sweep<ToySim> {
        Sweep::<ToySim> {
            experiment: "engine-test",
            config: ToyConfig {
                algorithm: AlgorithmKind::Beb,
                scale: 3,
            },
            algorithms: vec![AlgorithmKind::Beb, AlgorithmKind::Sawtooth],
            ns: vec![5, 10, 20],
            trials: 4,
            threads,
        }
    }

    #[test]
    fn grid_is_complete_and_cell_lookup_works() {
        let cells = toy_sweep(Some(2)).run();
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| c.trials.len() == 4));
        assert_eq!(cell(&cells, AlgorithmKind::Sawtooth, 20).n, 20);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let one = toy_sweep(Some(1)).run();
        let many = toy_sweep(Some(7)).run();
        assert_eq!(one, many, "thread count changed results");
    }

    #[test]
    fn run_raw_and_run_agree() {
        let raw = toy_sweep(Some(2)).run_raw();
        let summarized = toy_sweep(Some(2)).run();
        for (r, s) in raw.iter().zip(&summarized) {
            for (m, t) in r.trials.iter().zip(&s.trials) {
                assert_eq!(TrialSummary::from_metrics(m), *t);
            }
        }
    }

    #[test]
    fn run_trial_matches_the_sweep_stream() {
        // The single-trial entry point must hit the same RNG stream the
        // sweep derives, so bench trials and sweep trials are interchangeable.
        let sweep = toy_sweep(Some(1));
        let cells = sweep.run_raw();
        let config = ToyConfig {
            algorithm: AlgorithmKind::Beb,
            scale: 3,
        };
        let lone = run_trial::<ToySim>("engine-test", &config, 10, 2);
        assert_eq!(cell(&cells, AlgorithmKind::Beb, 10).trials[2], lone);
    }

    #[test]
    #[should_panic(expected = "no cell")]
    fn missing_cell_panics() {
        let cells: Vec<SweepCell> = Vec::new();
        let _ = cell(&cells, AlgorithmKind::Beb, 10);
    }

    #[test]
    #[should_panic(expected = "duplicate n=10")]
    fn duplicate_grid_entries_are_rejected() {
        let mut sweep = toy_sweep(Some(1));
        sweep.ns = vec![10, 10];
        let _ = sweep.run();
    }

    #[test]
    #[should_panic(expected = "duplicate algorithm")]
    fn duplicate_algorithms_are_rejected() {
        let mut sweep = toy_sweep(Some(1));
        sweep.algorithms = vec![AlgorithmKind::Beb, AlgorithmKind::Beb];
        let _ = sweep.run();
    }

    #[test]
    fn zero_threads_is_clamped_to_sequential() {
        let cells = toy_sweep(Some(0)).run();
        assert_eq!(cells, toy_sweep(Some(1)).run());
    }
}
