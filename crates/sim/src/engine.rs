//! The generic sweep engine: one [`Simulator`] trait, one [`Sweep`].
//!
//! Before this module existed, every execution backend (the abstract
//! windowed simulator, the 802.11g MAC simulator) carried its own
//! near-identical sweep struct, and many figures hand-rolled their own trial
//! loops on top. The engine collapses all of that into:
//!
//! * [`Simulator`] — how to run one trial of a backend: an associated
//!   `Config`, an associated raw `Output`, and a pure
//!   `run(config, n, rng) -> Output` function.
//! * [`run_trial`] — one trial with the canonical
//!   `(experiment tag, algorithm, n, trial)` RNG derivation. Every trial in
//!   the repository — sweeps, figures, benches — goes through this
//!   derivation, so any number anywhere is reproducible in isolation.
//! * [`Sweep`] — the Cartesian `(algorithm × n × trial)` grid, executed on
//!   the batched deterministic runner under an [`ExecPolicy`].
//!
//! The engine *streams*: work items are generated on the fly from a single
//! cursor (never materialized as a grid `Vec`), workers claim trials in
//! batches, and each trial's result is **folded into a per-cell
//! [`Accumulator`] inside the worker**. A figure that only needs two metrics
//! of a million-trial sweep retains two `f64`s per trial — not a
//! `TrialSummary` — which is what lets the abstract sweeps reach the paper's
//! full n = 10⁵ grid (and 10⁶) in one process. The collect-style API
//! ([`Sweep::run`], [`Sweep::run_mapped`]) still exists and is itself a fold
//! into position-addressed slots, so both paths are bit-identical by
//! construction across thread counts *and* batch sizes.
//!
//! A backend plugs in by implementing `Simulator`; nothing else in the
//! experiment layer changes. This is the seam where additional channel
//! models (e.g. the noisy/corrupted-slot model of arXiv:2408.11275) slot in.

use crate::monitor::{SnapshotCadence, SweepMonitor, SweepSnapshot};
use crate::parallel::{parallel_for_batches, parallel_for_tapered, TaperSchedule};
use crate::progress::Progress;
use crate::summary::TrialSummary;
use contention_core::algorithm::AlgorithmKind;
use contention_core::rng::{experiment_tag, trial_rng};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How long the snapshot thread sleeps between cadence checks. Snapshots
/// themselves are taken at the requested cadence; this only bounds how stale
/// the "is one due?" decision can be.
const SNAPSHOT_POLL: Duration = Duration::from_millis(20);

/// The internals a monitored run threads to its snapshot thread. The
/// accumulator clone is a stored `fn` so the common (unmonitored) paths do
/// not pick up an `A: Clone` bound.
struct MonitorHook<'a, A> {
    cadence: SnapshotCadence,
    sink: &'a dyn SweepMonitor<A>,
    clone_acc: fn(&A) -> A,
}

/// One execution backend: everything [`Sweep`] needs to run trials of it.
///
/// Implementations are zero-sized entry points (trial state lives inside
/// `run_with`'s scratch arena), so a `Sweep<S>` is fully described by its
/// config and grid.
pub trait Simulator {
    /// Full per-trial configuration, including the algorithm under test.
    type Config: Clone + Send + Sync;
    /// Raw per-trial output. Backends with a [`TrialSummary`] conversion get
    /// [`Sweep::run`] and [`Sweep::run_fold`]; the rest use
    /// [`Sweep::run_raw`] / [`Sweep::run_fold_raw`].
    type Output: Send;
    /// Reusable per-worker scratch arena: event queues, station tables,
    /// occupancy buffers — everything a trial needs that is not part of its
    /// output. The engine builds one per worker thread and threads it
    /// through every trial that worker claims, so steady-state trials don't
    /// touch the allocator. Backends without reusable state use `()`.
    type Scratch: Default + Send;

    /// Short name used in diagnostics.
    const NAME: &'static str;

    /// The algorithm a config runs — used to derive the per-trial RNG.
    fn algorithm(config: &Self::Config) -> AlgorithmKind;

    /// A copy of `config` running `algorithm` instead; how [`Sweep`] builds
    /// each cell's config from its base config.
    fn with_algorithm(config: &Self::Config, algorithm: AlgorithmKind) -> Self::Config;

    /// One trial of `n` stations, using (and resetting) `scratch`. Must be
    /// a pure function of `(config, n, rng)` — the scratch arena may only
    /// affect *where* intermediate state lives, never a single output bit;
    /// determinism of every sweep rests on this.
    fn run_with(
        config: &Self::Config,
        n: u32,
        rng: &mut SmallRng,
        scratch: &mut Self::Scratch,
    ) -> Self::Output;

    /// One trial on a fresh scratch arena (single-shot callers).
    fn run(config: &Self::Config, n: u32, rng: &mut SmallRng) -> Self::Output {
        Self::run_with(config, n, rng, &mut Self::Scratch::default())
    }
}

/// Runs a single trial with the canonical RNG derivation.
///
/// This is the one place where `(experiment, algorithm, n, trial)` turns
/// into a generator; figures, sweeps and benches all share it.
pub fn run_trial<S: Simulator>(
    experiment: &str,
    config: &S::Config,
    n: u32,
    trial: u32,
) -> S::Output {
    run_trial_with::<S>(experiment, config, n, trial, &mut S::Scratch::default())
}

/// [`run_trial`] on a caller-owned scratch arena — what a caller measuring
/// or running many trials should use, mirroring the engine's per-worker
/// arena reuse. Bit-identical to `run_trial`.
pub fn run_trial_with<S: Simulator>(
    experiment: &str,
    config: &S::Config,
    n: u32,
    trial: u32,
    scratch: &mut S::Scratch,
) -> S::Output {
    let algorithm = S::algorithm(config);
    let mut rng = trial_rng(experiment_tag(experiment), algorithm, n, trial);
    S::run_with(config, n, &mut rng, scratch)
}

/// A per-cell streaming reducer: the engine folds each trial's result into
/// it inside the worker thread, instead of collecting results into a `Vec`.
///
/// Trials of a cell arrive **exactly once each but in arbitrary order**
/// (workers race). For the sweep to stay bit-identical across thread counts
/// and batch sizes, the final state must not depend on arrival order: either
/// address by position (write trial `t` into slot `t` — what the built-in
/// collectors do) or fold with an exactly order-independent operation
/// (counts, integer sums, min/max). Order-*sensitive* floating-point folds
/// (e.g. running means) would silently break determinism — keep them out of
/// accumulators.
pub trait Accumulator<T> {
    /// Folds the result of trial `trial` (0-based within the cell) in.
    fn record(&mut self, trial: u32, value: T);
}

/// The merge side of the process-sharding seam, re-exported next to
/// [`Accumulator`]. Defined in `contention-core` so collector crates can
/// implement it without depending on the engine.
pub use contention_core::merge::MergeableAccumulator;

/// A half-open range `[lo, hi)` of grid-cell indices — the unit of
/// process-level sharding.
///
/// Cells are indexed in grid order (algorithms outer, `ns` inner), the same
/// order [`Sweep`] returns them in. Restricting a sweep to a cell range
/// changes *which* cells run, never what any cell computes: per-trial RNG
/// streams depend only on `(experiment, algorithm, n, trial)`, so the cells
/// of a ranged run are bit-identical to the same cells of a full run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRange {
    /// First cell index covered.
    pub lo: usize,
    /// One past the last cell index covered.
    pub hi: usize,
}

impl CellRange {
    /// The contiguous range shard `index` of `of` covers in a grid of
    /// `cells` cells — the balanced partition `[i·C/N, (i+1)·C/N)`. Every
    /// shard is within one cell of the same size, and the `of` ranges tile
    /// `[0, cells)` exactly.
    pub fn shard(cells: usize, index: usize, of: usize) -> CellRange {
        assert!(of >= 1, "shard count must be at least 1");
        assert!(
            index < of,
            "shard index {index} out of range for {of} shards"
        );
        CellRange {
            lo: index * cells / of,
            hi: (index + 1) * cells / of,
        }
    }

    /// The contiguous range shard `index` of `of` covers in a grid whose
    /// cells carry the given estimated `weights` — the cost-balanced
    /// partition: shard boundaries land where the weight prefix crosses
    /// `i/of` of the total, so every shard gets (as nearly as contiguity
    /// allows) the same estimated *work*, not the same cell count. The `of`
    /// ranges tile `[0, weights.len())` exactly, like [`shard`]; with
    /// uniform weights the two partitions coincide. Non-finite,
    /// non-positive or all-zero weights degrade safely (junk entries count
    /// as zero; a zero total falls back to the count-balanced partition).
    pub fn shard_weighted(weights: &[f64], index: usize, of: usize) -> CellRange {
        assert!(of >= 1, "shard count must be at least 1");
        assert!(
            index < of,
            "shard index {index} out of range for {of} shards"
        );
        let cells = weights.len();
        let mut prefix = Vec::with_capacity(cells + 1);
        let mut acc = 0.0f64;
        prefix.push(0.0);
        for &w in weights {
            if w.is_finite() && w > 0.0 {
                acc += w;
            }
            prefix.push(acc);
        }
        let total = prefix[cells];
        if total <= 0.0 {
            return CellRange::shard(cells, index, of);
        }
        // Boundary i sits at the first prefix ≥ total·i/of; boundaries are
        // monotone because the goals are, and the final one is pinned to
        // `cells` so trailing zero-weight cells (and float slop) always
        // land in the last shard.
        let bound = |i: usize| -> usize {
            if i == of {
                return cells;
            }
            let goal = total * i as f64 / of as f64;
            prefix.partition_point(|&p| p < goal).min(cells)
        };
        CellRange {
            lo: bound(index),
            hi: bound(index + 1),
        }
    }

    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// A contiguous run `[lo, hi)` of trial indices inside one grid cell — the
/// unit of *trial*-granular work distribution (a work-server lease is a list
/// of these).
///
/// Where [`CellRange`] splits a grid between processes a whole cell at a
/// time, a `TrialRange` splits *inside* a cell, so a single giant-`n` cell
/// can be spread across a fleet of workers. Like cell ranges, trial ranges
/// change only *which* trials run: per-trial RNG streams depend on
/// `(experiment, algorithm, n, trial)` alone, so the trials of any tiling
/// are bit-identical to the same trials of a full run — which is what lets
/// partial cells merge back losslessly through the accumulator seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRange {
    /// Full-grid cell index (algorithms outer, `ns` inner).
    pub cell: usize,
    /// First trial index covered.
    pub lo: u32,
    /// One past the last trial index covered.
    pub hi: u32,
}

impl TrialRange {
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Partitions a sparse work plan — `(cell index, trial list)` pairs, the
    /// same shape sweeps take as a missing-work plan — into at most `target`
    /// leases of roughly equal estimated cost, each lease a list of trial
    /// ranges.
    ///
    /// `trial_costs[cell]` is the estimated cost of one trial of that cell
    /// (the [`CostSpec`](crate::cost::CostSpec) per-trial table); lease
    /// boundaries land where the cost prefix crosses `k/target` of the
    /// total, so a heavy cell splits across as many leases as its weight
    /// demands while light neighbours coalesce into one. Junk cost entries
    /// (non-finite or non-positive, or a missing table entry) count as one
    /// unit, so a degenerate table degrades to trial-count balancing rather
    /// than collapsing the partition. The returned leases tile the plan
    /// exactly, in plan order, with consecutive trials of one cell fused
    /// into single ranges; empty leases are never emitted, so fewer than
    /// `target` leases come back when the plan is small.
    pub fn partition(
        plan: &[(usize, Vec<u32>)],
        trial_costs: &[f64],
        target: usize,
    ) -> Vec<Vec<TrialRange>> {
        assert!(target >= 1, "lease target must be at least 1");
        let sane = |cell: usize| -> f64 {
            let c = trial_costs.get(cell).copied().unwrap_or(1.0);
            if c.is_finite() && c > 0.0 {
                c
            } else {
                1.0
            }
        };
        let total: f64 = plan
            .iter()
            .map(|(cell, trials)| sane(*cell) * trials.len() as f64)
            .sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let goal = total / target as f64;
        let mut leases: Vec<Vec<TrialRange>> = Vec::new();
        let mut current: Vec<TrialRange> = Vec::new();
        let mut cum = 0.0f64;
        let fuse = |lease: &mut Vec<TrialRange>, cell: usize, trial: u32| {
            if let Some(last) = lease.last_mut() {
                if last.cell == cell && last.hi == trial {
                    last.hi = trial + 1;
                    return;
                }
            }
            lease.push(TrialRange {
                cell,
                lo: trial,
                hi: trial + 1,
            });
        };
        for (cell, trials) in plan {
            let w = sane(*cell);
            for &t in trials {
                fuse(&mut current, *cell, t);
                cum += w;
                // Close the lease once the global prefix crosses its share
                // of the total; the last lease absorbs whatever remains so
                // the tiling is exact.
                if leases.len() + 1 < target && cum >= goal * (leases.len() + 1) as f64 {
                    leases.push(std::mem::take(&mut current));
                }
            }
        }
        if !current.is_empty() {
            leases.push(current);
        }
        leases
    }
}

/// How a sweep executes: worker threads, trials per work-item claim, cell
/// range, and whether to report progress. Orthogonal to *what* the sweep
/// computes — results are identical for every policy (a cell range selects a
/// subset of the cells; it never changes their contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecPolicy {
    /// Worker threads (`None` = all available, `Some(0|1)` = sequential).
    /// The engine caps the effective count at the machine's available
    /// parallelism — oversubscribed workers cost context switches without
    /// buying wall-clock, and results never depend on the worker count.
    pub threads: Option<usize>,
    /// Trials claimed per scheduling step. `None` (the default) uses
    /// tapered (guided self-scheduling) claims — sized off remaining
    /// estimated work, shrinking toward one trial at the tail — with
    /// heaviest cells claimed first when the run carries a cost table.
    /// `Some(b)` pins fixed `b`-trial batches in grid order. Purely a
    /// performance knob either way: results are bit-identical for every
    /// setting.
    pub batch: Option<usize>,
    /// Run only the grid cells in `[lo, hi)` (`None` = the whole grid) —
    /// the process-sharding seam: each shard folds its cell range, and the
    /// per-cell accumulator states merge back losslessly.
    pub cells: Option<CellRange>,
    /// Report trials-completed / ETA on stderr (only when stderr is a TTY).
    pub progress: bool,
}

impl ExecPolicy {
    /// Policy with an explicit worker count.
    pub fn threads(threads: usize) -> ExecPolicy {
        ExecPolicy {
            threads: Some(threads),
            ..ExecPolicy::default()
        }
    }

    /// Same policy with an explicit batch size.
    pub fn with_batch(mut self, batch: usize) -> ExecPolicy {
        self.batch = Some(batch);
        self
    }

    /// Same policy restricted to the grid cells in `range`.
    pub fn with_cells(mut self, range: CellRange) -> ExecPolicy {
        self.cells = Some(range);
        self
    }
}

/// One aggregate cell: all trials of one `(algorithm, n)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell<T> {
    pub algorithm: AlgorithmKind,
    pub n: u32,
    pub trials: Vec<T>,
}

/// The summarized cell type every collect-style consumer uses.
pub type SweepCell = Cell<TrialSummary>;

/// One cell of a folded sweep: the accumulator state after every trial of
/// one `(algorithm, n)` pair has been folded in.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedCell<A> {
    pub algorithm: AlgorithmKind,
    pub n: u32,
    pub acc: A,
}

/// A Cartesian `(algorithm × n × trial)` sweep over one simulator.
///
/// Every trial derives its RNG from `(experiment tag, algorithm, n, trial)`,
/// so the sweep's numbers are independent of thread count, batch size and
/// scheduling.
pub struct Sweep<S: Simulator> {
    /// RNG namespace; also names the experiment in outputs.
    pub experiment: &'static str,
    /// Base configuration; the sweep overrides the algorithm per cell.
    pub config: S::Config,
    pub algorithms: Vec<AlgorithmKind>,
    pub ns: Vec<u32>,
    pub trials: u32,
    /// Execution policy (threads / batch size / progress).
    pub exec: ExecPolicy,
}

impl<S: Simulator> Clone for Sweep<S> {
    fn clone(&self) -> Sweep<S> {
        Sweep {
            experiment: self.experiment,
            config: self.config.clone(),
            algorithms: self.algorithms.clone(),
            ns: self.ns.clone(),
            trials: self.trials,
            exec: self.exec,
        }
    }
}

impl<S: Simulator> std::fmt::Debug for Sweep<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("simulator", &S::NAME)
            .field("experiment", &self.experiment)
            .field("algorithms", &self.algorithms)
            .field("ns", &self.ns)
            .field("trials", &self.trials)
            .field("exec", &self.exec)
            .finish()
    }
}

impl<S: Simulator> Sweep<S> {
    /// Number of `(algorithm, n)` cells in the full grid — what
    /// [`CellRange::shard`] partitions.
    pub fn cell_count(&self) -> usize {
        self.algorithms.len() * self.ns.len()
    }

    /// Cells are keyed by `(algorithm, n)` grid position; a duplicate grid
    /// entry would silently split a cell's trials across two cells.
    fn validate_grid(&self) {
        for (i, a) in self.algorithms.iter().enumerate() {
            assert!(
                !self.algorithms[..i].contains(a),
                "duplicate algorithm {a} in sweep grid"
            );
        }
        for (i, n) in self.ns.iter().enumerate() {
            assert!(!self.ns[..i].contains(n), "duplicate n={n} in sweep grid");
        }
    }

    /// The streaming core: runs the grid with batched work claiming, maps
    /// each raw output inside the worker, and folds it into its cell's
    /// accumulator — still inside the worker. Nothing per-trial survives
    /// beyond what the accumulator retains.
    fn run_streamed<T, A, M, I>(&self, map: M, init: I) -> Vec<FoldedCell<A>>
    where
        A: Accumulator<T> + Send,
        M: Fn(S::Output) -> T + Sync,
        I: FnMut(AlgorithmKind, u32, u32) -> A,
    {
        self.run_streamed_core(map, init, None, None, None)
    }

    /// [`run_streamed`](Self::run_streamed), generalized along the two
    /// seams checkpoint/resume needs:
    ///
    /// * `missing` — a sparse work plan: only the listed
    ///   `(grid cell index, trials)` execute (the resume path). `None` runs
    ///   the dense grid, restricted by `ExecPolicy::cells` as before.
    ///   Per-trial RNG derivation is untouched either way, so a sparse run's
    ///   values are bit-identical to the same trials of a full run.
    /// * `monitor` — a snapshot thread that periodically clones the in-flight
    ///   accumulators (each under its own cell lock — workers keep claiming
    ///   batches) and hands them to the sink; one final snapshot is
    ///   guaranteed after the workers join.
    /// * `costs` — estimated per-*trial* cost of every cell of the **full**
    ///   grid (`algorithms × ns`, same order). Feeds scheduling only: claim
    ///   tapering and heaviest-cell-first ordering. Results are routed by
    ///   grid position and trial RNG streams derive from grid coordinates,
    ///   so any cost table — including a wrong one — leaves every output
    ///   bit unchanged.
    fn run_streamed_core<T, A, M, I>(
        &self,
        map: M,
        mut init: I,
        missing: Option<&[(usize, Vec<u32>)]>,
        monitor: Option<MonitorHook<'_, A>>,
        costs: Option<&[f64]>,
    ) -> Vec<FoldedCell<A>>
    where
        A: Accumulator<T> + Send,
        M: Fn(S::Output) -> T + Sync,
        I: FnMut(AlgorithmKind, u32, u32) -> A,
    {
        self.validate_grid();
        let tag = experiment_tag(self.experiment);
        let trials = self.trials as usize;
        let full_grid: Vec<(AlgorithmKind, u32)> = self
            .algorithms
            .iter()
            .flat_map(|&alg| self.ns.iter().map(move |&n| (alg, n)))
            .collect();
        if let Some(costs) = costs {
            assert!(
                costs.len() == full_grid.len(),
                "cost table has {} entries for a {}-cell grid",
                costs.len(),
                full_grid.len()
            );
        }
        // Junk estimates (NaN, ±∞, negatives) count as zero weight so the
        // heaviest-first comparator below stays a total order.
        let sane = |c: f64| if c.is_finite() && c > 0.0 { c } else { 0.0 };
        // Resolve the work plan: which cells exist, how a claimed work index
        // maps onto (cell, trial), and what each local cell's trials are
        // estimated to cost.
        type SparseItems = Option<Vec<(usize, u32)>>;
        let (grid, mut sparse, cell_costs): (
            Vec<(AlgorithmKind, u32)>,
            SparseItems,
            Option<Vec<f64>>,
        ) = match missing {
            None => {
                let mut grid = full_grid;
                let mut cell_costs =
                    costs.map(|c| c.iter().map(|&c| sane(c)).collect::<Vec<f64>>());
                if let Some(range) = self.exec.cells {
                    assert!(
                        range.lo <= range.hi && range.hi <= grid.len(),
                        "cell range [{}, {}) outside the {}-cell grid",
                        range.lo,
                        range.hi,
                        grid.len()
                    );
                    grid = grid[range.lo..range.hi].to_vec();
                    cell_costs = cell_costs.map(|c| c[range.lo..range.hi].to_vec());
                }
                (grid, None, cell_costs)
            }
            Some(missing) => {
                assert!(
                    self.exec.cells.is_none(),
                    "a sparse work plan already names its cells; drop ExecPolicy::cells"
                );
                let mut grid = Vec::with_capacity(missing.len());
                let mut items = Vec::new();
                for (local, (cell_index, cell_trials)) in missing.iter().enumerate() {
                    assert!(
                        *cell_index < full_grid.len(),
                        "missing-work cell {cell_index} outside the {}-cell grid",
                        full_grid.len()
                    );
                    grid.push(full_grid[*cell_index]);
                    for &trial in cell_trials {
                        assert!(
                            (trial as usize) < trials,
                            "missing-work trial {trial} outside 0..{trials}"
                        );
                        items.push((local, trial));
                    }
                }
                let cell_costs = costs.map(|c| {
                    missing
                        .iter()
                        .map(|(cell_index, _)| sane(c[*cell_index]))
                        .collect()
                });
                (grid, Some(items), cell_costs)
            }
        };
        // Execution order over local cells: identity under fixed batches
        // (`exec.batch` pinned) or without estimates; heaviest cells first
        // when tapering with a cost table, so the long-pole cells start
        // while plenty of light work remains to backfill the tail. Results
        // are index-routed, so the order is invisible in the output.
        let taper = self.exec.batch.is_none();
        let order: Vec<usize> = {
            let mut order: Vec<usize> = (0..grid.len()).collect();
            if taper {
                if let Some(cost) = &cell_costs {
                    let heaviest_first =
                        |a: f64, b: f64| b.partial_cmp(&a).unwrap_or(std::cmp::Ordering::Equal);
                    order.sort_by(|&a, &b| heaviest_first(cost[a], cost[b]));
                    if let Some(items) = &mut sparse {
                        items.sort_by(|a, b| heaviest_first(cost[a.0], cost[b.0]));
                    }
                }
            }
            order
        };
        let accumulators: Vec<Mutex<A>> = grid
            .iter()
            .map(|&(alg, n)| Mutex::new(init(alg, n, self.trials)))
            .collect();
        let total = match &sparse {
            None => grid.len() * trials,
            Some(items) => items.len(),
        };
        if total > 0 {
            // Cap the worker count at the machine's parallelism: results are
            // schedule-invariant, so workers beyond physical cores can only
            // add wakeup and context-switch overhead, never wall-clock.
            let threads = self
                .exec
                .threads
                .unwrap_or_else(default_threads)
                .min(default_threads());
            // Tapered claims need a per-work-item cost prefix in *execution*
            // order; without estimates every item weighs the same and the
            // taper degenerates to pure remaining/workers sizing.
            let schedule: Option<TaperSchedule> = taper.then(|| match (&sparse, &cell_costs) {
                (None, Some(cost)) => {
                    let mut item_costs = Vec::with_capacity(total);
                    for &cell in &order {
                        item_costs.extend(std::iter::repeat_n(cost[cell], trials));
                    }
                    TaperSchedule::new(&item_costs)
                }
                (Some(items), Some(cost)) => {
                    let item_costs: Vec<f64> = items.iter().map(|&(cell, _)| cost[cell]).collect();
                    TaperSchedule::new(&item_costs)
                }
                (_, None) => TaperSchedule::uniform(total),
            });
            let progress = Progress::new(total, self.exec.progress);
            let base = self.config.clone();
            // The dense work item for global index g is (order[g / trials],
            // trial g % trials) — computed, never stored; sparse plans look
            // the pair up. Each worker owns one scratch arena for its whole
            // share of the sweep.
            let work_item = |range: std::ops::Range<usize>, scratch: &mut S::Scratch| {
                for g in range {
                    let (cell_index, trial) = match &sparse {
                        None => (order[g / trials], (g % trials) as u32),
                        Some(items) => items[g],
                    };
                    let (alg, n) = grid[cell_index];
                    let config = S::with_algorithm(&base, alg);
                    let mut rng = trial_rng(tag, alg, n, trial);
                    let value = map(S::run_with(&config, n, &mut rng, scratch));
                    accumulators[cell_index].lock().record(trial, value);
                    progress.tick();
                }
            };
            let run_workers = || match &schedule {
                Some(sched) => parallel_for_tapered(sched, threads, S::Scratch::default, work_item),
                None => parallel_for_batches(
                    total,
                    threads,
                    self.exec
                        .batch
                        .expect("fixed-batch path requires exec.batch"),
                    S::Scratch::default,
                    work_item,
                ),
            };
            match &monitor {
                None => run_workers(),
                Some(hook) => {
                    let stop = AtomicBool::new(false);
                    let started = Instant::now();
                    std::thread::scope(|scope| {
                        scope.spawn(|| {
                            let mut last_snap = Instant::now();
                            let mut last_done = 0usize;
                            loop {
                                // Read the stop flag *before* the counter:
                                // if workers finish in between, the final
                                // pass still runs with stopping == false and
                                // the next iteration takes the guaranteed
                                // finished snapshot.
                                let stopping = stop.load(Ordering::Acquire);
                                let done = progress.completed();
                                if stopping
                                    || hook.cadence.due(last_snap.elapsed(), done - last_done)
                                {
                                    let cells = grid
                                        .iter()
                                        .zip(&accumulators)
                                        .map(|(&(algorithm, n), acc)| FoldedCell {
                                            algorithm,
                                            n,
                                            acc: (hook.clone_acc)(&acc.lock()),
                                        })
                                        .collect();
                                    hook.sink.snapshot(SweepSnapshot {
                                        cells,
                                        completed_trials: done,
                                        total_trials: total,
                                        elapsed: started.elapsed(),
                                        workers: threads,
                                        finished: stopping,
                                    });
                                    last_snap = Instant::now();
                                    last_done = done;
                                }
                                if stopping {
                                    break;
                                }
                                std::thread::sleep(SNAPSHOT_POLL);
                            }
                        });
                        run_workers();
                        stop.store(true, Ordering::Release);
                    });
                }
            }
            progress.finish();
        }
        grid.into_iter()
            .zip(accumulators)
            .map(|((algorithm, n), acc)| FoldedCell {
                algorithm,
                n,
                acc: acc.into_inner(),
            })
            .collect()
    }

    /// Runs the grid, folding each *raw* output into a per-cell accumulator
    /// built by `init(algorithm, n, trials)`.
    pub fn run_fold_raw<A, I>(&self, init: I) -> Vec<FoldedCell<A>>
    where
        A: Accumulator<S::Output> + Send,
        I: FnMut(AlgorithmKind, u32, u32) -> A,
    {
        self.run_streamed(|output| output, init)
    }

    /// Runs the grid, mapping each raw output inside the worker thread
    /// (large outputs are reduced before being collected).
    pub fn run_mapped<T, F>(&self, map: F) -> Vec<Cell<T>>
    where
        T: Send,
        F: Fn(S::Output) -> T + Sync,
    {
        self.run_streamed(map, |_, _, trials| Slots::new(trials))
            .into_iter()
            .map(|cell| Cell {
                algorithm: cell.algorithm,
                n: cell.n,
                trials: cell.acc.into_vec(),
            })
            .collect()
    }

    /// Runs the grid, keeping each backend's raw output.
    pub fn run_raw(&self) -> Vec<Cell<S::Output>> {
        self.run_mapped(|output| output)
    }
}

impl<S: Simulator> Sweep<S>
where
    TrialSummary: From<S::Output>,
{
    /// Runs the grid and summarizes every trial.
    pub fn run(&self) -> Vec<SweepCell> {
        self.run_mapped(TrialSummary::from)
    }

    /// Runs the grid, folding each trial's [`TrialSummary`] into a per-cell
    /// accumulator built by `init(algorithm, n, trials)` — the streaming
    /// path every figure-facing aggregate rides.
    pub fn run_fold<A, I>(&self, init: I) -> Vec<FoldedCell<A>>
    where
        A: Accumulator<TrialSummary> + Send,
        I: FnMut(AlgorithmKind, u32, u32) -> A,
    {
        self.run_streamed(TrialSummary::from, init)
    }

    /// [`run_fold`](Self::run_fold) with the crash-safety seams attached:
    ///
    /// * `missing` — run only the listed `(grid cell index, trials)` instead
    ///   of the dense grid (the resume path; indices address the full
    ///   `algorithms × ns` grid and must not be combined with
    ///   `ExecPolicy::cells`). Returned cells are in plan order. Per-trial
    ///   values are bit-identical to the same trials of a full run.
    /// * `monitor` — a snapshot sink called on `cadence` from a dedicated
    ///   thread with clones of the in-flight accumulators, plus once more
    ///   (with `finished: true`) after the workers join. Snapshots are
    ///   read-only: results are unaffected by the monitor's presence.
    /// * `costs` — estimated per-trial cost of every full-grid cell (same
    ///   order as `algorithms × ns`), from the experiment's
    ///   [`CostModel`](crate::sched::CostModel). Scheduling-only: drives
    ///   claim tapering and heaviest-cell-first ordering; any table yields
    ///   bit-identical results.
    pub fn run_fold_monitored<A, I>(
        &self,
        init: I,
        missing: Option<&[(usize, Vec<u32>)]>,
        monitor: Option<(SnapshotCadence, &dyn SweepMonitor<A>)>,
        costs: Option<&[f64]>,
    ) -> Vec<FoldedCell<A>>
    where
        A: Accumulator<TrialSummary> + Clone + Send,
        I: FnMut(AlgorithmKind, u32, u32) -> A,
    {
        let hook = monitor.map(|(cadence, sink)| MonitorHook {
            cadence,
            sink,
            clone_acc: A::clone,
        });
        self.run_streamed_core(TrialSummary::from, init, missing, hook, costs)
    }
}

/// Position-addressed slots: the accumulator behind the collect-style API.
/// Arrival order cannot matter because trial `t` lands in slot `t` — which
/// also makes two disjoint partial fills mergeable without ambiguity.
#[derive(Debug, Clone, PartialEq)]
pub struct Slots<T> {
    slots: Vec<Option<T>>,
}

impl<T> Slots<T> {
    /// Slots awaiting `trials` recordings.
    pub fn new(trials: u32) -> Slots<T> {
        Slots {
            slots: (0..trials).map(|_| None).collect(),
        }
    }

    /// Number of recorded trials.
    pub fn filled(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The complete trial-ordered values; panics if any trial is missing.
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|slot| slot.expect("missing trial"))
            .collect()
    }
}

impl<T> Accumulator<T> for Slots<T> {
    fn record(&mut self, trial: u32, value: T) {
        let slot = &mut self.slots[trial as usize];
        assert!(slot.is_none(), "trial {trial} recorded twice");
        *slot = Some(value);
    }
}

impl<T> MergeableAccumulator for Slots<T> {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "cannot merge slots of different trial counts"
        );
        for (trial, (slot, value)) in self.slots.iter_mut().zip(other.slots).enumerate() {
            if let Some(value) = value {
                assert!(slot.is_none(), "trial {trial} recorded in both operands");
                *slot = Some(value);
            }
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Looks up one cell in a collect-style sweep result.
pub fn cell<T>(cells: &[Cell<T>], alg: AlgorithmKind, n: u32) -> &Cell<T> {
    cells
        .iter()
        .find(|c| c.algorithm == alg && c.n == n)
        .unwrap_or_else(|| panic!("no cell for {alg} at n={n}"))
}

/// Looks up one cell in a folded sweep result.
pub fn folded<A>(cells: &[FoldedCell<A>], alg: AlgorithmKind, n: u32) -> &FoldedCell<A> {
    cells
        .iter()
        .find(|c| c.algorithm == alg && c.n == n)
        .unwrap_or_else(|| panic!("no cell for {alg} at n={n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::metrics::BatchMetrics;
    use rand::Rng;

    /// A deterministic toy backend: "runs" a trial by hashing its inputs.
    struct ToySim;

    #[derive(Debug, Clone, Copy)]
    struct ToyConfig {
        algorithm: AlgorithmKind,
        scale: u64,
    }

    impl Simulator for ToySim {
        type Config = ToyConfig;
        type Output = BatchMetrics;
        /// Trials-served counter: proves the engine hands one arena to each
        /// worker and reuses it across that worker's whole share.
        type Scratch = u64;
        const NAME: &'static str = "toy";

        fn algorithm(config: &ToyConfig) -> AlgorithmKind {
            config.algorithm
        }

        fn with_algorithm(config: &ToyConfig, algorithm: AlgorithmKind) -> ToyConfig {
            ToyConfig {
                algorithm,
                ..*config
            }
        }

        fn run_with(
            config: &ToyConfig,
            n: u32,
            rng: &mut SmallRng,
            scratch: &mut u64,
        ) -> BatchMetrics {
            *scratch += 1;
            BatchMetrics {
                n,
                successes: n,
                cw_slots: config.scale * rng.gen_range(1u64..100),
                ..BatchMetrics::default()
            }
        }
    }

    fn toy_sweep(exec: ExecPolicy) -> Sweep<ToySim> {
        Sweep::<ToySim> {
            experiment: "engine-test",
            config: ToyConfig {
                algorithm: AlgorithmKind::Beb,
                scale: 3,
            },
            algorithms: vec![AlgorithmKind::Beb, AlgorithmKind::Sawtooth],
            ns: vec![5, 10, 20],
            trials: 4,
            exec,
        }
    }

    /// Order-independent fold: exact count and integer sum of cw_slots.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    struct CwSum {
        count: u32,
        slots: u64,
    }

    impl Accumulator<TrialSummary> for CwSum {
        fn record(&mut self, _trial: u32, value: TrialSummary) {
            self.count += 1;
            self.slots += value.cw_slots as u64;
        }
    }

    #[test]
    fn grid_is_complete_and_cell_lookup_works() {
        let cells = toy_sweep(ExecPolicy::threads(2)).run();
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| c.trials.len() == 4));
        assert_eq!(cell(&cells, AlgorithmKind::Sawtooth, 20).n, 20);
    }

    #[test]
    fn results_are_independent_of_thread_count_and_batch_size() {
        let golden = toy_sweep(ExecPolicy::threads(1).with_batch(1)).run();
        for threads in [1usize, 7] {
            for batch in [1usize, 5, 1024] {
                let got = toy_sweep(ExecPolicy::threads(threads).with_batch(batch)).run();
                assert_eq!(
                    golden, got,
                    "threads={threads} batch={batch} changed results"
                );
            }
        }
    }

    #[test]
    fn run_fold_agrees_with_run() {
        let cells = toy_sweep(ExecPolicy::threads(2)).run();
        let folded_cells =
            toy_sweep(ExecPolicy::threads(7).with_batch(3)).run_fold(|_, _, _| CwSum::default());
        assert_eq!(cells.len(), folded_cells.len());
        for (c, f) in cells.iter().zip(&folded_cells) {
            assert_eq!((c.algorithm, c.n), (f.algorithm, f.n));
            let expect = CwSum {
                count: c.trials.len() as u32,
                slots: c.trials.iter().map(|t| t.cw_slots as u64).sum(),
            };
            assert_eq!(f.acc, expect, "fold diverged at {}/{}", c.algorithm, c.n);
        }
        assert_eq!(folded(&folded_cells, AlgorithmKind::Beb, 10).n, 10);
    }

    #[test]
    fn sparse_plan_reproduces_the_dense_trials() {
        // Split the toy grid's work into two disjoint sparse plans; together
        // they must reproduce the dense fold exactly (same per-trial RNG),
        // and each plan alone only touches its listed cells/trials.
        let dense = toy_sweep(ExecPolicy::threads(2)).run_fold(|_, _, _| CwSum::default());
        let first: Vec<(usize, Vec<u32>)> = vec![(0, vec![0, 2]), (3, vec![1])];
        let rest: Vec<(usize, Vec<u32>)> = (0..6)
            .map(|cell| {
                let done: &[u32] = match cell {
                    0 => &[0, 2],
                    3 => &[1],
                    _ => &[],
                };
                (cell, (0..4).filter(|t| !done.contains(t)).collect())
            })
            .collect();
        let mut merged = vec![CwSum::default(); 6];
        for plan in [&first, &rest] {
            let cells = toy_sweep(ExecPolicy::threads(3).with_batch(2)).run_fold_monitored(
                |_, _, _| CwSum::default(),
                Some(plan),
                None,
                None,
            );
            assert_eq!(cells.len(), plan.len());
            for ((cell_index, trials), cell) in plan.iter().zip(&cells) {
                assert_eq!(
                    (cell.algorithm, cell.n),
                    (dense[*cell_index].algorithm, dense[*cell_index].n)
                );
                assert_eq!(cell.acc.count as usize, trials.len());
                merged[*cell_index].count += cell.acc.count;
                merged[*cell_index].slots += cell.acc.slots;
            }
        }
        assert_eq!(
            merged,
            dense.iter().map(|c| c.acc).collect::<Vec<_>>(),
            "two disjoint sparse plans did not reassemble the dense fold"
        );
    }

    #[test]
    fn cost_tables_reorder_claims_but_never_results() {
        // Skewed estimates with junk entries mixed in: heaviest-first order
        // and tapered claim sizes change, the fold must not — across thread
        // counts, with and without the cost table.
        let golden =
            toy_sweep(ExecPolicy::threads(1).with_batch(1)).run_fold(|_, _, _| CwSum::default());
        let costs = [f64::NAN, 0.0, 5.0, 1e9, 1.0, -2.0];
        for threads in [1usize, 2, 8] {
            let costed = toy_sweep(ExecPolicy::threads(threads)).run_fold_monitored(
                |_, _, _| CwSum::default(),
                None,
                None,
                Some(&costs),
            );
            assert_eq!(golden, costed, "threads={threads} with costs");
            let uncosted = toy_sweep(ExecPolicy::threads(threads)).run_fold_monitored(
                |_, _, _| CwSum::default(),
                None,
                None,
                None,
            );
            assert_eq!(golden, uncosted, "threads={threads} without costs");
        }
    }

    #[test]
    fn cost_table_respects_cell_ranges_and_sparse_plans() {
        let dense = toy_sweep(ExecPolicy::threads(1)).run_fold(|_, _, _| CwSum::default());
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        // A cell-range run slices the full-grid cost table along with the
        // grid.
        let mut exec = ExecPolicy::threads(2);
        exec.cells = Some(CellRange { lo: 2, hi: 5 });
        let ranged = toy_sweep(exec).run_fold_monitored(
            |_, _, _| CwSum::default(),
            None,
            None,
            Some(&costs),
        );
        assert_eq!(ranged.len(), 3);
        for (got, want) in ranged.iter().zip(&dense[2..5]) {
            assert_eq!(got, want, "cell range + costs changed a cell");
        }
        // A sparse plan draws each item's weight from its full-grid cell.
        let plan: Vec<(usize, Vec<u32>)> = vec![(1, vec![0, 3]), (5, vec![2]), (0, vec![1])];
        let sparse = toy_sweep(ExecPolicy::threads(2)).run_fold_monitored(
            |_, _, _| CwSum::default(),
            Some(&plan),
            None,
            Some(&costs),
        );
        let plain = toy_sweep(ExecPolicy::threads(2)).run_fold_monitored(
            |_, _, _| CwSum::default(),
            Some(&plan),
            None,
            None,
        );
        assert_eq!(sparse, plain, "costs changed a sparse plan's results");
    }

    #[test]
    #[should_panic(expected = "cost table has 2 entries")]
    fn wrong_cost_table_length_panics() {
        let costs = [1.0, 2.0];
        let _ = toy_sweep(ExecPolicy::threads(1)).run_fold_monitored(
            |_, _, _| CwSum::default(),
            None,
            None,
            Some(&costs),
        );
    }

    #[test]
    fn weighted_shards_tile_the_grid() {
        let weights = [3.0, 0.5, f64::NAN, 8.0, 1.0, 0.0, 2.5, 4.0, -1.0, 6.0];
        for of in [1usize, 2, 3, 4, 7, 10, 13] {
            let mut next = 0;
            for index in 0..of {
                let shard = CellRange::shard_weighted(&weights, index, of);
                assert_eq!(shard.lo, next, "shard {index}/{of} left a gap");
                assert!(shard.hi >= shard.lo);
                next = shard.hi;
            }
            assert_eq!(next, weights.len(), "shards {of} did not cover the grid");
        }
    }

    #[test]
    fn weighted_shards_balance_work_better_than_counts() {
        // One heavy head cell: the count split hands shard 0 the head plus
        // half the light cells; the weighted split cuts right after it.
        let weights = [8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let cost = |r: CellRange| weights[r.lo..r.hi].iter().sum::<f64>();
        let weighted_max = (0..2)
            .map(|i| cost(CellRange::shard_weighted(&weights, i, 2)))
            .fold(0.0f64, f64::max);
        let count_max = (0..2)
            .map(|i| cost(CellRange::shard(weights.len(), i, 2)))
            .fold(0.0f64, f64::max);
        assert!(
            weighted_max < count_max,
            "weighted split ({weighted_max}) should beat count split ({count_max})"
        );
        // Trailing zero-weight cells still land in the last shard.
        let tail_zeros = [5.0, 5.0, 0.0, 0.0];
        let last = CellRange::shard_weighted(&tail_zeros, 1, 2);
        assert_eq!((last.lo, last.hi), (1, 4));
    }

    #[test]
    fn degenerate_weights_fall_back_to_count_shards() {
        for weights in [vec![0.0; 5], vec![f64::NAN; 5], vec![-3.0; 5], vec![]] {
            for of in [1usize, 2, 3] {
                for index in 0..of {
                    assert_eq!(
                        CellRange::shard_weighted(&weights, index, of),
                        CellRange::shard(weights.len(), index, of),
                        "weights {weights:?} shard {index}/{of}"
                    );
                }
            }
        }
        // Uniform weights coincide with the count-balanced partition too.
        for index in 0..3 {
            assert_eq!(
                CellRange::shard_weighted(&[2.0; 9], index, 3),
                CellRange::shard(9, index, 3)
            );
        }
    }

    /// A partition must tile its plan exactly: same cells, same trials,
    /// same order, no overlap. Flattens leases back into plan shape.
    fn flatten(leases: &[Vec<TrialRange>]) -> Vec<(usize, u32)> {
        leases
            .iter()
            .flatten()
            .flat_map(|r| (r.lo..r.hi).map(move |t| (r.cell, t)))
            .collect()
    }

    fn plan_trials(plan: &[(usize, Vec<u32>)]) -> Vec<(usize, u32)> {
        plan.iter()
            .flat_map(|(cell, ts)| ts.iter().map(move |&t| (*cell, t)))
            .collect()
    }

    #[test]
    fn trial_partition_tiles_the_plan_exactly() {
        let plan = vec![(0usize, vec![0u32, 1, 2]), (2, vec![1, 3]), (5, vec![0])];
        let costs = [1.0, 1.0, 4.0, 1.0, 1.0, 2.0];
        for target in 1..=8 {
            let leases = TrialRange::partition(&plan, &costs, target);
            assert!(leases.len() <= target, "target {target}");
            assert!(leases.iter().all(|l| !l.is_empty()));
            assert_eq!(flatten(&leases), plan_trials(&plan), "target {target}");
        }
        // target 1 is a single lease covering everything, with the
        // consecutive trials of cell 0 fused into one range.
        let one = TrialRange::partition(&plan, &costs, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(
            one[0][0],
            TrialRange {
                cell: 0,
                lo: 0,
                hi: 3
            }
        );
    }

    #[test]
    fn trial_partition_splits_heavy_cells_and_coalesces_light_ones() {
        // One cell carries ~94% of the work: it must spread over most of
        // the leases while the light cells share the remainder.
        let plan = vec![
            (0usize, (0..64).collect::<Vec<u32>>()),
            (1, vec![0, 1]),
            (2, vec![0, 1]),
        ];
        let costs = [16.0, 1.0, 1.0];
        let leases = TrialRange::partition(&plan, &costs, 4);
        assert_eq!(leases.len(), 4);
        let heavy_leases = leases
            .iter()
            .filter(|l| l.iter().any(|r| r.cell == 0))
            .count();
        assert!(
            heavy_leases >= 3,
            "heavy cell should span most leases, spanned {heavy_leases}"
        );
        // Estimated cost per lease stays near total/target.
        let cost_of =
            |l: &Vec<TrialRange>| -> f64 { l.iter().map(|r| costs[r.cell] * r.len() as f64).sum() };
        let total: f64 = leases.iter().map(cost_of).sum();
        let goal = total / 4.0;
        for l in &leases {
            assert!(
                cost_of(l) <= goal + costs[0],
                "lease cost {} exceeds goal {goal} by more than one heavy trial",
                cost_of(l)
            );
        }
        assert_eq!(flatten(&leases), plan_trials(&plan));
    }

    #[test]
    fn trial_partition_degrades_safely_on_junk_costs_and_empty_plans() {
        let plan = vec![(0usize, vec![0u32, 1]), (1, vec![0, 1])];
        // Junk costs count as one unit each: 4 trials over 2 leases = 2 + 2.
        for costs in [vec![f64::NAN, -1.0], vec![0.0, 0.0], vec![]] {
            let leases = TrialRange::partition(&plan, &costs, 2);
            assert_eq!(leases.len(), 2, "costs {costs:?}");
            assert_eq!(flatten(&leases).len(), 4);
            assert_eq!(leases[0].iter().map(TrialRange::len).sum::<usize>(), 2);
        }
        // An empty plan (or all-empty trial lists) yields no leases at all.
        assert!(TrialRange::partition(&[], &[1.0], 3).is_empty());
        assert!(TrialRange::partition(&[(0, vec![])], &[1.0], 3).is_empty());
        // More leases requested than trials available: every lease that
        // does come back holds at least one trial.
        let tiny = TrialRange::partition(&plan, &[1.0, 1.0], 16);
        assert!(tiny.len() <= 4);
        assert_eq!(flatten(&tiny), plan_trials(&plan));
    }

    /// Counts snapshots and checks the final one is complete and flagged.
    #[derive(Default)]
    struct RecordingMonitor {
        snaps: Mutex<Vec<(usize, usize, bool)>>,
    }

    impl SweepMonitor<CwSum> for RecordingMonitor {
        fn snapshot(&self, snap: SweepSnapshot<CwSum>) {
            let folded: u32 = snap.cells.iter().map(|c| c.acc.count).sum();
            assert!(
                folded as usize <= snap.completed_trials,
                "snapshot saw more folded trials than the counter reported"
            );
            self.snaps
                .lock()
                .push((snap.completed_trials, snap.total_trials, snap.finished));
        }
    }

    #[test]
    fn monitored_run_takes_a_final_snapshot_and_leaves_results_unchanged() {
        let plain = toy_sweep(ExecPolicy::threads(2)).run_fold(|_, _, _| CwSum::default());
        let monitor = RecordingMonitor::default();
        let monitored = toy_sweep(ExecPolicy::threads(2)).run_fold_monitored(
            |_, _, _| CwSum::default(),
            None,
            Some((SnapshotCadence::trials(1), &monitor)),
            None,
        );
        assert_eq!(plain, monitored, "attaching a monitor changed the fold");
        let snaps = monitor.snaps.into_inner();
        assert!(!snaps.is_empty());
        let &(done, total, finished) = snaps.last().unwrap();
        assert!(finished, "last snapshot must be flagged finished");
        assert_eq!((done, total), (24, 24));
        assert!(
            snaps[..snaps.len() - 1].iter().all(|&(_, _, f)| !f),
            "only the last snapshot may be flagged finished"
        );
    }

    #[test]
    fn fold_init_sees_cell_coordinates() {
        let folded_cells = toy_sweep(ExecPolicy::threads(1)).run_fold_raw(|alg, n, trials| {
            assert_eq!(trials, 4);
            assert!(n == 5 || n == 10 || n == 20);
            assert!(alg == AlgorithmKind::Beb || alg == AlgorithmKind::Sawtooth);
            CountRaw(0)
        });
        assert!(folded_cells.iter().all(|c| c.acc.0 == 4));
    }

    struct CountRaw(u32);
    impl Accumulator<BatchMetrics> for CountRaw {
        fn record(&mut self, _trial: u32, _value: BatchMetrics) {
            self.0 += 1;
        }
    }

    #[test]
    fn run_raw_and_run_agree() {
        let raw = toy_sweep(ExecPolicy::threads(2)).run_raw();
        let summarized = toy_sweep(ExecPolicy::threads(2)).run();
        for (r, s) in raw.iter().zip(&summarized) {
            for (m, t) in r.trials.iter().zip(&s.trials) {
                assert_eq!(TrialSummary::from_metrics(m), *t);
            }
        }
    }

    #[test]
    fn run_trial_matches_the_sweep_stream() {
        // The single-trial entry point must hit the same RNG stream the
        // sweep derives, so bench trials and sweep trials are interchangeable.
        let sweep = toy_sweep(ExecPolicy::threads(1));
        let cells = sweep.run_raw();
        let config = ToyConfig {
            algorithm: AlgorithmKind::Beb,
            scale: 3,
        };
        let lone = run_trial::<ToySim>("engine-test", &config, 10, 2);
        assert_eq!(cell(&cells, AlgorithmKind::Beb, 10).trials[2], lone);
    }

    #[test]
    fn zero_trials_yields_empty_cells() {
        let mut sweep = toy_sweep(ExecPolicy::threads(2));
        sweep.trials = 0;
        let cells = sweep.run();
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| c.trials.is_empty()));
    }

    #[test]
    #[should_panic(expected = "no cell")]
    fn missing_cell_panics() {
        let cells: Vec<SweepCell> = Vec::new();
        let _ = cell(&cells, AlgorithmKind::Beb, 10);
    }

    #[test]
    #[should_panic(expected = "duplicate n=10")]
    fn duplicate_grid_entries_are_rejected() {
        let mut sweep = toy_sweep(ExecPolicy::threads(1));
        sweep.ns = vec![10, 10];
        let _ = sweep.run();
    }

    #[test]
    #[should_panic(expected = "duplicate algorithm")]
    fn duplicate_algorithms_are_rejected() {
        let mut sweep = toy_sweep(ExecPolicy::threads(1));
        sweep.algorithms = vec![AlgorithmKind::Beb, AlgorithmKind::Beb];
        let _ = sweep.run();
    }

    /// `Default` bumps a global counter, so a test can count how many
    /// arenas the engine actually builds.
    struct CountedScratch;
    static SCRATCH_BUILDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    impl Default for CountedScratch {
        fn default() -> CountedScratch {
            SCRATCH_BUILDS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            CountedScratch
        }
    }

    struct ScratchySim;

    impl Simulator for ScratchySim {
        type Config = ToyConfig;
        type Output = BatchMetrics;
        type Scratch = CountedScratch;
        const NAME: &'static str = "scratchy";

        fn algorithm(config: &ToyConfig) -> AlgorithmKind {
            config.algorithm
        }

        fn with_algorithm(config: &ToyConfig, algorithm: AlgorithmKind) -> ToyConfig {
            ToyConfig {
                algorithm,
                ..*config
            }
        }

        fn run_with(
            config: &ToyConfig,
            n: u32,
            rng: &mut SmallRng,
            _scratch: &mut CountedScratch,
        ) -> BatchMetrics {
            ToySim::run(config, n, rng)
        }
    }

    #[test]
    fn sequential_sweep_builds_exactly_one_scratch_arena() {
        let sweep = Sweep::<ScratchySim> {
            experiment: "engine-scratch",
            config: ToyConfig {
                algorithm: AlgorithmKind::Beb,
                scale: 1,
            },
            algorithms: vec![AlgorithmKind::Beb],
            ns: vec![5, 10],
            trials: 16,
            exec: ExecPolicy::threads(1),
        };
        let before = SCRATCH_BUILDS.load(std::sync::atomic::Ordering::SeqCst);
        let cells = sweep.run();
        let built = SCRATCH_BUILDS.load(std::sync::atomic::Ordering::SeqCst) - before;
        assert_eq!(cells.len(), 2);
        assert_eq!(built, 1, "32 sequential trials must share one arena");
    }

    #[test]
    fn cell_range_runs_are_slices_of_the_full_grid() {
        let full = toy_sweep(ExecPolicy::threads(2)).run();
        let cells = full.len();
        for of in [1usize, 2, 3, 7] {
            let mut pieces: Vec<SweepCell> = Vec::new();
            for index in 0..of {
                let range = CellRange::shard(cells, index, of);
                let exec = ExecPolicy::threads(2).with_batch(3).with_cells(range);
                let part = toy_sweep(exec).run();
                assert_eq!(part.len(), range.len());
                pieces.extend(part);
            }
            assert_eq!(pieces, full, "sharding {of} ways changed results");
        }
    }

    #[test]
    fn shard_ranges_tile_the_grid_exactly() {
        for cells in [0usize, 1, 5, 6, 7, 100] {
            for of in [1usize, 2, 3, 7, 13] {
                let mut covered = 0;
                for index in 0..of {
                    let range = CellRange::shard(cells, index, of);
                    assert_eq!(range.lo, covered, "gap or overlap at shard {index}/{of}");
                    covered = range.hi;
                }
                assert_eq!(covered, cells, "shards of {cells} cells do not tile");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_bounds_cell_range_panics() {
        let exec = ExecPolicy::threads(1).with_cells(CellRange { lo: 0, hi: 99 });
        let _ = toy_sweep(exec).run();
    }

    #[test]
    fn slots_merge_disjoint_partial_fills() {
        let mut a: Slots<u32> = Slots::new(4);
        let mut b: Slots<u32> = Slots::new(4);
        a.record(0, 10);
        a.record(2, 30);
        b.record(1, 20);
        b.record(3, 40);
        assert_eq!(a.filled(), 2);
        a.merge(b);
        assert_eq!(a.filled(), 4);
        assert_eq!(a.into_vec(), vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "recorded in both")]
    fn slots_merge_rejects_overlap() {
        let mut a: Slots<u32> = Slots::new(2);
        let mut b: Slots<u32> = Slots::new(2);
        a.record(0, 1);
        b.record(0, 2);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "different trial counts")]
    fn slots_merge_rejects_shape_mismatch() {
        let mut a: Slots<u32> = Slots::new(2);
        a.merge(Slots::new(3));
    }

    #[test]
    fn zero_threads_is_clamped_to_sequential() {
        let cells = toy_sweep(ExecPolicy::threads(0)).run();
        assert_eq!(cells, toy_sweep(ExecPolicy::threads(1)).run());
    }
}
