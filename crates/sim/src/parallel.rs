//! Deterministic parallel execution of independent trials.
//!
//! The paper ran its sweeps on four 16-core Xeon nodes; here the same
//! embarrassing parallelism is captured with `std::thread::scope` (stable
//! since Rust 1.63, so no crossbeam dependency). Work items are claimed via
//! a single atomic counter (no chunking), which gives
//! near-perfect load balance when trial costs vary by orders of magnitude
//! across `n` — exactly the shape of these sweeps. Results land in a
//! pre-sized output vector at their input index, so output order (and,
//! because every trial derives its own RNG from its index, every number)
//! is independent of scheduling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel `map` preserving input order, using up to
/// `std::thread::available_parallelism()` worker threads.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parallel_map_threads(items, threads, f)
}

/// [`parallel_map`] with an explicit worker count (1 ⇒ fully sequential,
/// useful for debugging and for tests that assert determinism).
pub fn parallel_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Wrap each input in a Mutex<Option<T>> cell so workers can *take* items
    // by index without requiring T: Sync or cloning.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    // A worker panic propagates when the scope joins, matching the old
    // crossbeam behaviour of surfacing the panic to the caller.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = cells[i].lock().take().expect("item claimed twice");
                let r = f(item);
                *out[i].lock() = Some(r);
            });
        }
    });

    out.into_iter()
        .map(|cell| cell.into_inner().expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_preserving_order() {
        let out = parallel_map((0..1000).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |x: u64| {
            // Skewed cost to exercise load balancing.
            let mut acc = x;
            for _ in 0..(x % 97) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let input: Vec<u64> = (0..500).collect();
        let seq = parallel_map_threads(input.clone(), 1, work);
        let par = parallel_map_threads(input, 8, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_threads(vec![1, 2, 3], 64, |x: i32| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn non_clone_items_are_moved_through() {
        // Box<T> is Send but we never clone; this compiles only if items are
        // moved, which is the point of the Mutex<Option<T>> cells.
        let items: Vec<Box<u32>> = (0..64).map(Box::new).collect();
        let out = parallel_map(items, |b| *b + 1);
        assert_eq!(out[63], 64);
    }
}
