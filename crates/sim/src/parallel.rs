//! Deterministic parallel execution of independent work items.
//!
//! The paper ran its sweeps on four 16-core Xeon nodes; here the same
//! embarrassing parallelism is captured with `std::thread::scope` (stable
//! since Rust 1.63, so no crossbeam dependency). Work is claimed in
//! *batches*: a single atomic cursor hands each worker a contiguous index
//! range, so claiming costs one atomic op per `batch` items instead of one
//! per item, and nothing about the work list is materialized up front — the
//! caller maps indices to work on the fly (the engine derives the whole
//! `(algorithm, n, trial)` work item from the index arithmetically). Small
//! batches give near-perfect load balance when item costs vary by orders of
//! magnitude across `n` — exactly the shape of these sweeps; large batches
//! amortize scheduling for cheap items. Either way the caller routes results
//! by *index*, so output placement (and, because every trial derives its own
//! RNG from its index, every number) is independent of scheduling, thread
//! count and batch size.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default fixed batch size for callers that pin one (`--batch N` pins it
/// explicitly; `None` now means tapered claiming instead): aim for ~32
/// claims per worker, which keeps the cursor cold while preserving load
/// balance when per-item cost varies by orders of magnitude; capped so one
/// straggler batch can never serialize a large sweep.
pub fn auto_batch(total: usize, threads: usize) -> usize {
    (total / (threads.max(1) * 32)).clamp(1, 1024)
}

/// A tapered (guided self-scheduling) claim plan over `total` work items
/// with known (estimated) per-item costs.
///
/// Fixed-size batches are a compromise tuned blind: big batches amortize
/// cursor traffic but let one straggler batch of expensive items serialize
/// the join; small batches balance load but pay per-claim overhead on cheap
/// items. Tapering resolves the tension by sizing every claim off the
/// *remaining* estimated work: a claim targets `remaining / (2 × workers)`
/// worth of cost — large contiguous runs early (cheap scheduling), claims
/// shrinking toward a single item at the tail (no straggler can hold the
/// join for more than one item's cost beyond its peers). Costs are
/// estimates and only shape claim boundaries; which items run, and what
/// they compute, is untouched — so results stay bit-identical to any other
/// schedule as long as the caller routes results by index.
#[derive(Debug, Clone)]
pub struct TaperSchedule {
    /// Prefix sums of sanitized per-item costs; `prefix[i]` is the cost of
    /// items `[0, i)`, so `len = prefix.len() - 1`.
    prefix: Vec<f64>,
}

impl TaperSchedule {
    /// A plan over items with the given estimated costs, in execution
    /// order. Non-finite or negative costs are treated as zero (they can
    /// only mis-shape claim sizes, never break coverage: every claim takes
    /// at least one item).
    pub fn new(costs: &[f64]) -> TaperSchedule {
        let mut prefix = Vec::with_capacity(costs.len() + 1);
        let mut acc = 0.0f64;
        prefix.push(0.0);
        for &c in costs {
            if c.is_finite() && c > 0.0 {
                acc += c;
            }
            prefix.push(acc);
        }
        TaperSchedule { prefix }
    }

    /// A plan over `total` equal-cost items — what a sweep without a cost
    /// model uses; tapering still beats fixed batches on the tail.
    pub fn uniform(total: usize) -> TaperSchedule {
        TaperSchedule {
            prefix: (0..=total).map(|i| i as f64).collect(),
        }
    }

    /// Number of work items planned.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The exclusive end of a claim starting at `start`: enough items to
    /// cover `remaining cost / (2 × threads)`, always at least one.
    pub fn claim_end(&self, start: usize, threads: usize) -> usize {
        let total = self.len();
        debug_assert!(start < total);
        let remaining = self.prefix[total] - self.prefix[start];
        let goal = self.prefix[start] + remaining / (2 * threads.max(1)) as f64;
        // First index whose prefix reaches the goal = one past the last
        // item the claim needs. Zero-cost runs collapse to goal == start's
        // prefix; the clamp keeps every claim non-empty and in range.
        let end = self.prefix.partition_point(|&p| p < goal);
        end.clamp(start + 1, total)
    }
}

/// Runs `body` once on each of `threads` workers — on the persistent pool
/// when it is free, on freshly scoped threads otherwise. Both paths return
/// after every worker finishes and re-raise worker panics.
fn run_on_workers(threads: usize, body: &(dyn Fn() + Sync)) {
    if crate::pool::run(threads, body) {
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(body);
        }
    });
}

/// Runs `work` over every index of `0..sched.len()`, claimed in tapered
/// (guided self-scheduling) contiguous ranges from an atomic cursor — the
/// cost-aware counterpart of [`parallel_for_batches`], with the same
/// routing contract: each index is visited exactly once, per-worker `state`
/// is built once per worker, and the caller must route results by index.
///
/// With `threads <= 1` the claims execute inline in order (identical claim
/// boundaries, no atomics), so the taper path itself is exercised on every
/// machine.
pub fn parallel_for_tapered<W, I, F>(sched: &TaperSchedule, threads: usize, init: I, work: F)
where
    I: Fn() -> W + Sync,
    F: Fn(Range<usize>, &mut W) + Sync,
{
    let total = sched.len();
    if total == 0 {
        return;
    }
    let threads = threads.max(1).min(total);
    if threads == 1 {
        let mut state = init();
        let mut start = 0;
        while start < total {
            let end = sched.claim_end(start, 1);
            work(start..end, &mut state);
            start = end;
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let body = || {
        let mut state = init();
        let mut start = next.load(Ordering::Relaxed);
        while start < total {
            let end = sched.claim_end(start, threads);
            // Claim via CAS — unlike a fixed-stride `fetch_add`, the claim
            // size depends on where the cursor actually is.
            match next.compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    work(start..end, &mut state);
                    start = next.load(Ordering::Relaxed);
                }
                Err(current) => start = current,
            }
        }
    };
    run_on_workers(threads, &body);
}

/// Runs `work` over every contiguous batch of `0..total`, on up to
/// `threads` workers claiming `batch`-sized ranges from an atomic cursor.
///
/// Each worker owns a `state` built once by `init` and threaded through all
/// of its batches — the engine parks per-trial scratch arenas there, so a
/// million-trial sweep reuses `threads` arenas instead of allocating one per
/// trial. Per-worker state cannot affect results: the engine routes outputs
/// by index, and anything observable must be reset per item.
///
/// Each index in `0..total` is visited exactly once; with `threads <= 1`
/// the ranges are executed inline in order on a single state. A worker
/// panic propagates when the scope joins.
pub fn parallel_for_batches<W, I, F>(total: usize, threads: usize, batch: usize, init: I, work: F)
where
    I: Fn() -> W + Sync,
    F: Fn(Range<usize>, &mut W) + Sync,
{
    if total == 0 {
        return;
    }
    let threads = threads.max(1).min(total);
    // Clamp to `total` so `start + batch` cannot overflow for any caller
    // value (the CLI accepts arbitrary usize batches).
    let batch = batch.clamp(1, total);
    if threads == 1 {
        let mut state = init();
        let mut start = 0;
        while start < total {
            let end = (start + batch).min(total);
            work(start..end, &mut state);
            start = end;
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let body = || {
        let mut state = init();
        loop {
            let start = next.fetch_add(batch, Ordering::Relaxed);
            if start >= total {
                break;
            }
            work(start..(start + batch).min(total), &mut state);
        }
    };
    run_on_workers(threads, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn batches_cover_every_index_exactly_once() {
        for threads in [1usize, 2, 8] {
            for batch in [1usize, 3, 16, 1024] {
                let total = 1000;
                let hits: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
                parallel_for_batches(
                    total,
                    threads,
                    batch,
                    || (),
                    |range, _| {
                        for i in range {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    },
                );
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} batch={batch}: index visited != once"
                );
            }
        }
    }

    #[test]
    fn index_routed_results_are_schedule_independent() {
        // The engine's usage pattern in miniature: derive work from the
        // index, write the result at the index. Any schedule must produce
        // the same output vector.
        let compute = |i: usize| {
            // Skewed cost to exercise load balancing.
            let mut acc = i as u64;
            for _ in 0..(i % 97) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let run = |threads: usize, batch: usize| -> Vec<u64> {
            let out = Mutex::new(vec![0u64; 500]);
            parallel_for_batches(
                500,
                threads,
                batch,
                || (),
                |range, _| {
                    let results: Vec<u64> = range.clone().map(compute).collect();
                    let mut out = out.lock();
                    for (i, r) in range.zip(results) {
                        out[i] = r;
                    }
                },
            );
            out.into_inner()
        };
        let golden = run(1, 1);
        for threads in [2usize, 8] {
            for batch in [1usize, 7, 64] {
                assert_eq!(
                    golden,
                    run(threads, batch),
                    "threads={threads} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn sequential_path_runs_in_order() {
        let seen = Mutex::new(Vec::new());
        parallel_for_batches(10, 1, 3, || (), |range, _| seen.lock().extend(range));
        assert_eq!(seen.into_inner(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_total_is_a_noop() {
        parallel_for_batches(0, 4, 16, || (), |_, _| panic!("no work expected"));
    }

    #[test]
    fn batch_zero_is_clamped() {
        let count = AtomicUsize::new(0);
        parallel_for_batches(
            10,
            2,
            0,
            || (),
            |range, _| {
                count.fetch_add(range.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn huge_batch_does_not_overflow() {
        for threads in [1usize, 4] {
            let count = AtomicUsize::new(0);
            parallel_for_batches(
                10,
                threads,
                usize::MAX,
                || (),
                |range, _| {
                    count.fetch_add(range.len(), Ordering::Relaxed);
                },
            );
            assert_eq!(count.load(Ordering::Relaxed), 10, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let count = AtomicUsize::new(0);
        parallel_for_batches(
            3,
            64,
            1,
            || (),
            |range, _| {
                count.fetch_add(range.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn auto_batch_is_sane() {
        assert_eq!(auto_batch(0, 8), 1);
        assert_eq!(auto_batch(10, 8), 1);
        assert_eq!(auto_batch(1 << 20, 8), 1024); // capped
        assert!(auto_batch(10_000, 4) >= 1);
    }

    /// Costs with heavy items up front, junk values mixed in — the shape
    /// the engine feeds after heaviest-first ordering.
    fn skewed_costs(total: usize) -> Vec<f64> {
        (0..total)
            .map(|i| match i % 11 {
                0 => f64::NAN,
                1 => -3.0,
                2 => 0.0,
                _ => ((total - i) as f64).powi(2),
            })
            .collect()
    }

    #[test]
    fn tapered_claims_cover_every_index_exactly_once() {
        for threads in [1usize, 2, 8] {
            for costs in [skewed_costs(1000), vec![1.0; 1000], vec![0.0; 1000]] {
                let sched = TaperSchedule::new(&costs);
                assert_eq!(sched.len(), 1000);
                let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
                parallel_for_tapered(
                    &sched,
                    threads,
                    || (),
                    |range, _| {
                        for i in range {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    },
                );
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads}: index visited != once"
                );
            }
        }
    }

    #[test]
    fn tapered_results_match_fixed_batches() {
        // Same index-routed contract, so the output vector must equal the
        // fixed-batch runner's for any schedule.
        let compute = |i: usize| {
            let mut acc = i as u64;
            for _ in 0..(i % 97) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let golden: Vec<u64> = (0..500).map(compute).collect();
        for threads in [1usize, 2, 8] {
            let out = Mutex::new(vec![0u64; 500]);
            let sched = TaperSchedule::new(&skewed_costs(500));
            parallel_for_tapered(
                &sched,
                threads,
                || (),
                |range, _| {
                    let results: Vec<u64> = range.clone().map(compute).collect();
                    let mut out = out.lock();
                    for (i, r) in range.zip(results) {
                        out[i] = r;
                    }
                },
            );
            assert_eq!(golden, out.into_inner(), "threads={threads}");
        }
    }

    #[test]
    fn taper_shrinks_toward_single_item_claims() {
        // Uniform costs, 2 workers: first claim takes total/4, and the
        // claim sequence decays to single items at the tail instead of
        // ending in one big straggler batch.
        let sched = TaperSchedule::uniform(1000);
        let mut sizes = Vec::new();
        let mut start = 0;
        while start < 1000 {
            let end = sched.claim_end(start, 2);
            sizes.push(end - start);
            start = end;
        }
        assert_eq!(sizes[0], 250);
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]), "{sizes:?}");
        assert_eq!(*sizes.last().unwrap(), 1);
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn taper_claims_respect_cost_not_count() {
        // One huge item up front: the first claim must stop after it
        // rather than dragging half the item count along.
        let mut costs = vec![1.0; 100];
        costs[0] = 1_000_000.0;
        let sched = TaperSchedule::new(&costs);
        assert_eq!(sched.claim_end(0, 2), 1);
        // Past the spike, claims behave like the uniform tail.
        assert!(sched.claim_end(1, 2) > 2);
    }

    #[test]
    fn taper_zero_and_junk_costs_still_make_progress() {
        let sched = TaperSchedule::new(&[f64::NAN, 0.0, -1.0, f64::INFINITY]);
        let mut start = 0;
        let mut steps = 0;
        while start < sched.len() {
            let end = sched.claim_end(start, 8);
            assert!(end > start && end <= sched.len());
            start = end;
            steps += 1;
        }
        assert!((1..=4).contains(&steps));
    }

    #[test]
    fn empty_taper_schedule_is_a_noop() {
        let sched = TaperSchedule::new(&[]);
        assert!(sched.is_empty());
        parallel_for_tapered(&sched, 4, || (), |_, _| panic!("no work expected"));
    }
}
