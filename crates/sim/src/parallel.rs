//! Deterministic parallel execution of independent work items.
//!
//! The paper ran its sweeps on four 16-core Xeon nodes; here the same
//! embarrassing parallelism is captured with `std::thread::scope` (stable
//! since Rust 1.63, so no crossbeam dependency). Work is claimed in
//! *batches*: a single atomic cursor hands each worker a contiguous index
//! range, so claiming costs one atomic op per `batch` items instead of one
//! per item, and nothing about the work list is materialized up front — the
//! caller maps indices to work on the fly (the engine derives the whole
//! `(algorithm, n, trial)` work item from the index arithmetically). Small
//! batches give near-perfect load balance when item costs vary by orders of
//! magnitude across `n` — exactly the shape of these sweeps; large batches
//! amortize scheduling for cheap items. Either way the caller routes results
//! by *index*, so output placement (and, because every trial derives its own
//! RNG from its index, every number) is independent of scheduling, thread
//! count and batch size.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default batch size: aim for ~32 claims per worker, which keeps the
/// cursor cold while preserving load balance when per-item cost varies by
/// orders of magnitude; capped so one straggler batch can never serialize a
/// large sweep.
pub fn auto_batch(total: usize, threads: usize) -> usize {
    (total / (threads.max(1) * 32)).clamp(1, 1024)
}

/// Runs `work` over every contiguous batch of `0..total`, on up to
/// `threads` workers claiming `batch`-sized ranges from an atomic cursor.
///
/// Each worker owns a `state` built once by `init` and threaded through all
/// of its batches — the engine parks per-trial scratch arenas there, so a
/// million-trial sweep reuses `threads` arenas instead of allocating one per
/// trial. Per-worker state cannot affect results: the engine routes outputs
/// by index, and anything observable must be reset per item.
///
/// Each index in `0..total` is visited exactly once; with `threads <= 1`
/// the ranges are executed inline in order on a single state. A worker
/// panic propagates when the scope joins.
pub fn parallel_for_batches<W, I, F>(total: usize, threads: usize, batch: usize, init: I, work: F)
where
    I: Fn() -> W + Sync,
    F: Fn(Range<usize>, &mut W) + Sync,
{
    if total == 0 {
        return;
    }
    let threads = threads.max(1).min(total);
    // Clamp to `total` so `start + batch` cannot overflow for any caller
    // value (the CLI accepts arbitrary usize batches).
    let batch = batch.clamp(1, total);
    if threads == 1 {
        let mut state = init();
        let mut start = 0;
        while start < total {
            let end = (start + batch).min(total);
            work(start..end, &mut state);
            start = end;
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let start = next.fetch_add(batch, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    work(start..(start + batch).min(total), &mut state);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn batches_cover_every_index_exactly_once() {
        for threads in [1usize, 2, 8] {
            for batch in [1usize, 3, 16, 1024] {
                let total = 1000;
                let hits: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
                parallel_for_batches(
                    total,
                    threads,
                    batch,
                    || (),
                    |range, _| {
                        for i in range {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    },
                );
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} batch={batch}: index visited != once"
                );
            }
        }
    }

    #[test]
    fn index_routed_results_are_schedule_independent() {
        // The engine's usage pattern in miniature: derive work from the
        // index, write the result at the index. Any schedule must produce
        // the same output vector.
        let compute = |i: usize| {
            // Skewed cost to exercise load balancing.
            let mut acc = i as u64;
            for _ in 0..(i % 97) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let run = |threads: usize, batch: usize| -> Vec<u64> {
            let out = Mutex::new(vec![0u64; 500]);
            parallel_for_batches(
                500,
                threads,
                batch,
                || (),
                |range, _| {
                    let results: Vec<u64> = range.clone().map(compute).collect();
                    let mut out = out.lock();
                    for (i, r) in range.zip(results) {
                        out[i] = r;
                    }
                },
            );
            out.into_inner()
        };
        let golden = run(1, 1);
        for threads in [2usize, 8] {
            for batch in [1usize, 7, 64] {
                assert_eq!(
                    golden,
                    run(threads, batch),
                    "threads={threads} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn sequential_path_runs_in_order() {
        let seen = Mutex::new(Vec::new());
        parallel_for_batches(10, 1, 3, || (), |range, _| seen.lock().extend(range));
        assert_eq!(seen.into_inner(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_total_is_a_noop() {
        parallel_for_batches(0, 4, 16, || (), |_, _| panic!("no work expected"));
    }

    #[test]
    fn batch_zero_is_clamped() {
        let count = AtomicUsize::new(0);
        parallel_for_batches(
            10,
            2,
            0,
            || (),
            |range, _| {
                count.fetch_add(range.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn huge_batch_does_not_overflow() {
        for threads in [1usize, 4] {
            let count = AtomicUsize::new(0);
            parallel_for_batches(
                10,
                threads,
                usize::MAX,
                || (),
                |range, _| {
                    count.fetch_add(range.len(), Ordering::Relaxed);
                },
            );
            assert_eq!(count.load(Ordering::Relaxed), 10, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let count = AtomicUsize::new(0);
        parallel_for_batches(
            3,
            64,
            1,
            || (),
            |range, _| {
                count.fetch_add(range.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn auto_batch_is_sane() {
        assert_eq!(auto_batch(0, 8), 1);
        assert_eq!(auto_batch(10, 8), 1);
        assert_eq!(auto_batch(1 << 20, 8), 1024); // capped
        assert!(auto_batch(10_000, 4) >= 1);
    }
}
