//! # contention-sim
//!
//! Execution substrate for the contention-resolution reproduction:
//!
//! * [`event`] — a time-ordered pending-event queue with O(log n) scheduling,
//!   stable FIFO tie-breaking at equal timestamps, and token-based lazy
//!   cancellation (needed for backoff timers that freeze when the medium
//!   goes busy).
//! * [`parallel`] — a deterministic parallel executor; workers claim
//!   contiguous index ranges from one atomic cursor — fixed batches or
//!   cost-tapered (guided self-scheduling) claims via
//!   [`parallel::TaperSchedule`] — and results are routed by index, so
//!   every number is independent of thread scheduling and claim sizing.
//! * [`pool`] — the persistent worker pool the executors borrow threads
//!   from, eliminating per-sub-sweep spawn/join overhead across the many
//!   sweeps of one figure run (with a scoped-thread fallback).
//! * [`sched`] — cost-aware scheduling metadata: the [`sched::CostModel`]
//!   trait, the analytic [`sched::CostSpec`] shapes experiment grids
//!   declare, and the [`sched::CalibratedCost`] quick-probe calibrator.
//! * [`engine`] — the generic sweep engine: the [`engine::Simulator`] trait
//!   every backend implements, the canonical per-trial RNG derivation, the
//!   [`engine::Accumulator`] streaming-fold seam, and the
//!   thread-count-independent [`engine::Sweep`] grid runner with its
//!   [`engine::ExecPolicy`] (threads / batch / progress).
//! * [`monitor`] — the live-observation seam: [`monitor::SnapshotCadence`],
//!   [`monitor::SweepSnapshot`], and the [`monitor::SweepMonitor`] sink a
//!   checkpoint writer attaches to an in-flight fold run.
//! * [`progress`] — the rate-limited stderr progress meter long sweeps use.
//! * [`summary`] — [`summary::TrialSummary`], the scalar per-trial record
//!   every backend's output reduces to, and the [`summary::Metric`]
//!   selectors figures plot.

pub mod engine;
pub mod event;
pub mod monitor;
pub mod parallel;
pub mod pool;
pub mod progress;
pub mod sched;
pub mod summary;

pub use engine::{
    cell, folded, run_trial, Accumulator, Cell, CellRange, ExecPolicy, FoldedCell,
    MergeableAccumulator, Simulator, Slots, Sweep, SweepCell,
};
pub use event::{EventQueue, EventToken};
pub use monitor::{SnapshotCadence, SweepMonitor, SweepSnapshot};
pub use parallel::{auto_batch, parallel_for_batches, parallel_for_tapered, TaperSchedule};
pub use sched::{CalibratedCost, CostModel, CostSpec};
pub use summary::{Metric, TrialSummary};
