//! # contention-sim
//!
//! Execution substrate for the contention-resolution reproduction:
//!
//! * [`event`] — a time-ordered pending-event queue with O(log n) scheduling,
//!   stable FIFO tie-breaking at equal timestamps, and token-based lazy
//!   cancellation (needed for backoff timers that freeze when the medium
//!   goes busy).
//! * [`parallel`] — a deterministic parallel trial executor built on
//!   std scoped threads; work items are claimed through an atomic
//!   index so the output order is always the input order regardless of
//!   thread scheduling.
//! * [`engine`] — the generic sweep engine: the [`engine::Simulator`] trait
//!   every backend implements, the canonical per-trial RNG derivation, and
//!   the thread-count-independent [`engine::Sweep`] grid runner.
//! * [`summary`] — [`summary::TrialSummary`], the scalar per-trial record
//!   every backend's output reduces to, and the [`summary::Metric`]
//!   selectors figures plot.

pub mod engine;
pub mod event;
pub mod parallel;
pub mod summary;

pub use engine::{cell, run_trial, Cell, Simulator, Sweep, SweepCell};
pub use event::{EventQueue, EventToken};
pub use parallel::{parallel_map, parallel_map_threads};
pub use summary::{Metric, TrialSummary};
