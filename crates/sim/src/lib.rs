//! # contention-sim
//!
//! Discrete-event simulation substrate for the contention-resolution
//! reproduction:
//!
//! * [`event`] — a time-ordered pending-event queue with O(log n) scheduling,
//!   stable FIFO tie-breaking at equal timestamps, and token-based lazy
//!   cancellation (needed for backoff timers that freeze when the medium
//!   goes busy).
//! * [`parallel`] — a deterministic parallel trial executor built on
//!   crossbeam scoped threads; work items are claimed through an atomic
//!   index so the output order is always the input order regardless of
//!   thread scheduling.

pub mod event;
pub mod parallel;

pub use event::{EventQueue, EventToken};
pub use parallel::{parallel_map, parallel_map_threads};
