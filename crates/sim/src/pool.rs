//! A persistent worker pool for the sweep runners.
//!
//! A figure run is many short sub-sweeps (every cell range, every panel,
//! every resumed plan runs its own `parallel_for_*` call). Spawning and
//! joining a fresh `thread::scope` per sub-sweep costs tens of microseconds
//! per thread — comparable to the sub-sweep itself on quick grids, and pure
//! overhead on full ones. This module keeps one process-wide set of
//! detached worker threads alive and *lends* them to one runner at a time:
//!
//! * [`run(threads, body)`](run) wakes `threads` workers, each of which
//!   calls `body()` exactly once, and returns after all of them finish —
//!   the same barrier semantics as spawning `threads` scoped threads.
//! * The pool serves **one submission at a time** (a `try_lock` on the
//!   submission mutex). A concurrent caller — e.g. two test sweeps on
//!   different test threads — gets `false` back and falls back to
//!   `thread::scope`, so the pool is an optimization, never a serialization
//!   point or a deadlock risk (a sweep started *from inside* a pool worker
//!   falls back the same way).
//! * Worker panics are caught per-worker and the first one is re-raised in
//!   the submitter after the barrier, mirroring `thread::scope`'s
//!   propagation; the pool stays usable afterwards.
//!
//! Safety: `body` is lifetime-erased into a raw pointer while it crosses
//! into the workers. This is sound because [`run`] blocks until every
//! participating worker has finished its call and re-entered the idle wait
//! (the `remaining` count under the slot mutex), so the pointer is never
//! dereferenced after [`run`] returns; and because workers register
//! themselves (and read the current epoch) *before* a submission can
//! publish a new job, no worker can observe an epoch's job pointer after
//! that epoch's barrier has completed.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Upper bound on pool size; a caller asking for more parallelism than this
/// falls back to scoped threads rather than growing the pool unboundedly.
const MAX_POOL_THREADS: usize = 256;

/// The lifetime-erased job pointer handed to workers for one epoch.
struct JobPtr(*const (dyn Fn() + Sync));
// SAFETY: the pointee is `Sync` (shared calls are fine) and the pointer
// only crosses threads while `run` keeps the referent alive (see the
// module-level safety argument).
unsafe impl Send for JobPtr {}

/// Coordination state shared by the submitter and every worker.
struct Slot {
    /// Submission generation; bumped once per `run`.
    epoch: u64,
    /// Workers participating in the current epoch (`index < active` runs).
    active: usize,
    /// Participants that have not yet finished the current epoch's call.
    remaining: usize,
    /// Workers that have started up and observed the current epoch.
    registered: usize,
    /// The current epoch's job (present exactly while `remaining > 0`).
    job: Option<JobPtr>,
    /// First panic payload caught this epoch.
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Signals workers: a new epoch is published.
    work: Condvar,
    /// Signals the submitter: registration or completion progressed.
    done: Condvar,
}

struct Pool {
    /// Serializes submissions; the guarded value is the number of worker
    /// threads spawned so far.
    submit: Mutex<usize>,
    shared: Shared,
    /// Total workers ever spawned (observable, for pool-reuse tests).
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        submit: Mutex::new(0),
        shared: Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                active: 0,
                remaining: 0,
                registered: 0,
                job: None,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        },
        spawned: AtomicUsize::new(0),
    })
}

/// Locks a mutex, shrugging off poisoning: the pool's own invariants never
/// depend on a panicking lock holder (jobs run outside the locks), so a
/// poisoned guard's state is still consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_main(index: usize) {
    let shared = &pool().shared;
    let mut guard = lock(&shared.slot);
    guard.registered += 1;
    // Observing the epoch under the same lock that publishes new ones is
    // what guarantees this worker cannot miss (or double-run) a submission.
    let mut seen = guard.epoch;
    shared.done.notify_all();
    loop {
        while guard.epoch == seen {
            guard = shared.work.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        seen = guard.epoch;
        if index >= guard.active {
            continue;
        }
        let job = guard.job.as_ref().expect("active epoch carries a job").0;
        drop(guard);
        // SAFETY: the submitter keeps the job alive until `remaining == 0`.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)() }));
        guard = lock(&shared.slot);
        if let Err(payload) = result {
            guard.panic.get_or_insert(payload);
        }
        guard.remaining -= 1;
        if guard.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Erases `body`'s borrow lifetime so it can sit in the shared slot.
///
/// SAFETY: callers must not let the returned pointer outlive the borrow —
/// [`run`] upholds this by blocking until `remaining == 0` (no worker still
/// holds the pointer) before returning. See the module-level argument.
fn erase<'a>(body: &'a (dyn Fn() + Sync)) -> JobPtr {
    let short: *const (dyn Fn() + Sync + 'a) = body;
    JobPtr(unsafe {
        std::mem::transmute::<*const (dyn Fn() + Sync + 'a), *const (dyn Fn() + Sync + 'static)>(
            short,
        )
    })
}

/// Runs `body` once on each of `threads` pooled workers and waits for all
/// of them — the pooled equivalent of spawning `threads` scoped threads.
///
/// Returns `false` without running anything when the pool cannot take the
/// submission (another submission is in flight, `threads` is out of the
/// pool's range, or workers cannot be spawned); the caller then runs the
/// same `body` on scoped threads. Panics from `body` are re-raised here
/// after every participant has finished.
pub fn run(threads: usize, body: &(dyn Fn() + Sync)) -> bool {
    if !(2..=MAX_POOL_THREADS).contains(&threads) {
        return false;
    }
    let pool = pool();
    // One submission at a time; never wait for another sweep (that path
    // would deadlock a sweep nested inside a pool worker).
    let Ok(mut workers) = pool.submit.try_lock() else {
        return false;
    };
    while *workers < threads {
        let index = *workers;
        let spawned = std::thread::Builder::new()
            .name(format!("sweep-pool-{index}"))
            .spawn(move || worker_main(index));
        if spawned.is_err() {
            return false;
        }
        *workers += 1;
        pool.spawned.store(*workers, Ordering::Relaxed);
    }
    let shared = &pool.shared;
    let job = erase(body);
    let mut guard = lock(&shared.slot);
    // Wait until every spawned worker has registered (each registers before
    // it can wait for work, so a newly grown pool cannot miss this epoch).
    while guard.registered < *workers {
        guard = shared.done.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
    guard.epoch += 1;
    guard.active = threads;
    guard.remaining = threads;
    guard.job = Some(job);
    guard.panic = None;
    shared.work.notify_all();
    while guard.remaining > 0 {
        guard = shared.done.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
    guard.job = None;
    let panic = guard.panic.take();
    drop(guard);
    drop(workers);
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    true
}

/// Total worker threads the pool has ever spawned — stable across repeated
/// [`run`] calls once the pool has grown to the working size, which is the
/// observable fact the pool exists to provide.
pub fn spawned_workers() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_body_once_per_worker_and_reuses_threads() {
        let count = AtomicUsize::new(0);
        let body = || {
            count.fetch_add(1, Ordering::Relaxed);
        };
        if !run(3, &body) {
            // Another test holds the pool; nothing to assert here — the
            // engine's fallback path is covered by the sweep suites.
            return;
        }
        assert_eq!(count.load(Ordering::Relaxed), 3);
        let after_first = spawned_workers();
        assert!(after_first >= 3);
        for _ in 0..5 {
            if !run(3, &body) {
                return;
            }
        }
        assert_eq!(
            spawned_workers(),
            after_first,
            "repeat submissions must reuse workers, not spawn more"
        );
        assert_eq!(count.load(Ordering::Relaxed), 18);
    }

    #[test]
    fn nested_submission_falls_back() {
        let inner_accepted = AtomicUsize::new(usize::MAX);
        let body = || {
            // A sweep started from inside a pool worker must not deadlock
            // on the pool; it reports "not taken" and the caller scopes.
            let nested = run(2, &|| {});
            inner_accepted.store(usize::from(nested), Ordering::Relaxed);
        };
        if !run(2, &body) {
            return;
        }
        assert_eq!(
            inner_accepted.load(Ordering::Relaxed),
            0,
            "nested submission must be rejected, not served"
        );
    }

    #[test]
    fn degenerate_thread_counts_are_rejected() {
        assert!(!run(0, &|| {}));
        assert!(!run(1, &|| {}));
        assert!(!run(MAX_POOL_THREADS + 1, &|| {}));
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let attempt = std::panic::catch_unwind(|| run(2, &|| panic!("pool probe panic")));
        match attempt {
            // Pool busy elsewhere: the submission was never taken.
            Ok(taken) => assert!(!taken),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .unwrap_or("<non-str payload>");
                assert!(msg.contains("pool probe panic"), "{msg}");
                // The pool still serves after a panicked epoch.
                let count = AtomicUsize::new(0);
                let body = || {
                    count.fetch_add(1, Ordering::Relaxed);
                };
                if run(2, &body) {
                    assert_eq!(count.load(Ordering::Relaxed), 2);
                }
            }
        }
    }
}
