//! Time-ordered pending-event queue with lazy cancellation.
//!
//! The MAC simulator schedules events (backoff expiry, transmission end, ACK
//! timeout, …) and must be able to *cancel* them: a station whose backoff
//! timer is running cancels the pending expiry when the medium turns busy.
//! Rather than removing entries from the binary heap (O(n)), cancellation
//! invalidates a token; stale entries are skipped on pop.
//!
//! Determinism: events at equal timestamps pop in scheduling (FIFO) order, so
//! a simulation's behaviour is a pure function of its inputs and RNG stream.

use contention_core::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event; used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct Entry<E> {
    at: Nanos,
    seq: u64,
    token: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse both keys for earliest-first,
        // FIFO within a timestamp.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The queue. `E` is the event payload type.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    next_token: u64,
    /// Tokens that have been cancelled but whose heap entries still exist.
    cancelled: std::collections::HashSet<u64>,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_token: 0,
            cancelled: std::collections::HashSet::new(),
            now: Nanos::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `payload` at absolute time `at`, which must not precede the
    /// current time (no time travel).
    pub fn schedule(&mut self, at: Nanos, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let token = self.next_token;
        self.next_token += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            token,
            payload,
        });
        EventToken(token)
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: Nanos, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op (returns `false`).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        // Only mark tokens that could still be in the heap.
        if token.0 < self.next_token {
            self.cancelled.insert(token.0)
        } else {
            false
        }
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.token) {
                continue; // stale
            }
            debug_assert!(entry.at >= self.now, "heap yielded a past event");
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Live events remaining (upper bound: includes not-yet-skipped stale
    /// entries).
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        // Drain stale entries off the top so the answer is exact.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.token) {
                let e = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&e.token);
            } else {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> Nanos {
        Nanos::from_micros(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(us(30), "c");
        q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        assert_eq!(q.pop(), Some((us(10), "a")));
        assert_eq!(q.pop(), Some((us(20), "b")));
        assert_eq!(q.pop(), Some((us(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(us(5), 1);
        q.schedule(us(5), 2);
        q.schedule(us(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), us(10));
        q.schedule_after(us(5), ());
        assert_eq!(q.pop().unwrap().0, us(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        q.pop();
        q.schedule(us(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(us(10), "dropme");
        q.schedule(us(20), "keep");
        assert!(q.cancel(t1));
        assert_eq!(q.pop(), Some((us(20), "keep")));
    }

    #[test]
    fn double_cancel_and_cancel_after_fire() {
        let mut q = EventQueue::new();
        let t = q.schedule(us(10), ());
        assert!(q.cancel(t));
        assert!(!q.cancel(t), "second cancel must be a no-op");
        let t2 = q.schedule(us(20), ());
        q.pop();
        // t2 has fired; cancelling it afterwards must not poison later events
        // (tokens are unique, so this is just a dead-set insert).
        q.cancel(t2);
        q.schedule(us(30), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn is_empty_sees_through_cancellations() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let t = q.schedule(us(10), ());
        assert!(!q.is_empty());
        q.cancel(t);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_cancel_stress() {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for i in 0..100u64 {
            tokens.push(q.schedule(Nanos(i * 10), i));
        }
        // Cancel every third event.
        for (i, t) in tokens.iter().enumerate() {
            if i % 3 == 0 {
                q.cancel(*t);
            }
        }
        let mut seen = Vec::new();
        while let Some((_, i)) = q.pop() {
            seen.push(i);
        }
        let expected: Vec<u64> = (0..100).filter(|i| i % 3 != 0).collect();
        assert_eq!(seen, expected);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Pops come out in (time, insertion) order no matter the schedule
        /// order, and cancelled tokens never surface.
        #[test]
        fn ordering_and_cancellation_hold(
            times in prop::collection::vec(0u64..1_000, 1..120),
            cancel_mask in prop::collection::vec(any::<bool>(), 120),
        ) {
            let mut q = EventQueue::new();
            let tokens: Vec<(EventToken, u64, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (q.schedule(Nanos(t), i), t, i))
                .collect();
            let mut expected: Vec<(u64, usize)> = Vec::new();
            for (token, t, i) in &tokens {
                if cancel_mask[*i % cancel_mask.len()] {
                    q.cancel(*token);
                } else {
                    expected.push((*t, *i));
                }
            }
            expected.sort(); // time, then insertion order (seq == index here)
            let mut got = Vec::new();
            let mut last = Nanos::ZERO;
            while let Some((at, payload)) = q.pop() {
                prop_assert!(at >= last, "time went backwards");
                last = at;
                got.push((at.as_nanos(), payload));
            }
            prop_assert_eq!(got, expected);
        }

        /// The clock equals the last popped timestamp and never regresses
        /// under interleaved schedule/pop.
        #[test]
        fn clock_is_monotone(delays in prop::collection::vec(1u64..500, 1..60)) {
            let mut q = EventQueue::new();
            let mut last = Nanos::ZERO;
            for (i, &d) in delays.iter().enumerate() {
                q.schedule_after(Nanos(d), i);
                let (at, _) = q.pop().expect("just scheduled");
                prop_assert!(at >= last);
                prop_assert_eq!(q.now(), at);
                last = at;
            }
        }
    }
}
