//! Time-ordered pending-event queue with indexed O(log n) cancellation.
//!
//! The MAC simulator schedules events (backoff expiry, transmission end, ACK
//! timeout, …) and must be able to *cancel* or *reschedule* them. The queue
//! is an **indexed 4-ary heap**: entries live in a flat array heap-ordered
//! by `(time, seq)`, and a generation-tagged slot slab maps every
//! [`EventToken`] to its current heap position. Cancellation removes the
//! entry in place (swap with the last entry, sift) — no tombstones
//! accumulate, no hashing happens anywhere on the hot path, and `len` /
//! `is_empty` count live entries in O(1). The 4-ary layout halves the tree
//! depth of a binary heap and keeps sift-down children in one cache line —
//! this queue is the MAC simulator's innermost structure.
//!
//! Determinism: events at equal timestamps pop in scheduling (FIFO) order
//! (`seq` breaks ties, and rescheduling assigns a fresh `seq`), so a
//! simulation's behaviour is a pure function of its inputs and RNG stream.
//!
//! Allocation discipline: the heap array, the slot slab and the free list
//! are the only allocations, they grow to the high-water mark and stay
//! there, and [`EventQueue::reset`] recycles all three — a simulator arena
//! can run millions of trials on one queue without touching the allocator.

use contention_core::time::Nanos;

/// Handle to a scheduled event; used to cancel or reschedule it. Tokens are
/// generation-tagged: a token for an event that already fired (or was
/// cancelled) is detected as stale even after its slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

/// Heap arity. Four keeps the tree shallow and sibling comparisons local.
const D: usize = 4;
/// Slab `pos` marker for "not in the heap" (free or fired).
const NOT_IN_HEAP: u32 = u32::MAX;

struct Entry<E> {
    at: Nanos,
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    /// Index into `heap`, or [`NOT_IN_HEAP`].
    pos: u32,
}

/// The queue. `E` is the event payload type.
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Live events pending. Exact and O(1): cancellation removes entries
    /// immediately, so there are no tombstones to see through.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain. Exact and O(1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Clears the queue for a fresh trial, keeping every allocation (heap
    /// array, slot slab, free list) at its high-water capacity. All
    /// outstanding tokens are invalidated by a generation bump.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.gen = slot.gen.wrapping_add(1);
            slot.pos = NOT_IN_HEAP;
            self.free.push(i as u32);
        }
        self.next_seq = 0;
        self.now = Nanos::ZERO;
    }

    /// Schedule `payload` at absolute time `at`, which must not precede the
    /// current time (no time travel).
    pub fn schedule(&mut self, at: Nanos, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    pos: NOT_IN_HEAP,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        let pos = self.heap.len();
        self.heap.push(Entry {
            at,
            seq,
            slot,
            payload,
        });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventToken { slot, gen }
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: Nanos, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Cancel a previously scheduled event, removing it from the heap in
    /// place (O(log n), no tombstone). Cancelling an already-fired or
    /// already-cancelled event is a no-op (returns `false`).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        match self.live_pos(token) {
            Some(pos) => {
                self.retire(token.slot);
                self.remove_at(pos);
                true
            }
            None => false,
        }
    }

    /// Move a pending event to a new time (`at` must not precede the
    /// current time). Equivalent to cancel + re-schedule — the event goes to
    /// the back of the FIFO order within its new timestamp — but reuses the
    /// heap entry and the token stays valid. Returns `false` (and does
    /// nothing) when the token is stale.
    pub fn reschedule(&mut self, token: EventToken, at: Nanos) -> bool {
        let Some(pos) = self.live_pos(token) else {
            return false;
        };
        assert!(
            at >= self.now,
            "rescheduling into the past: {} < {}",
            at,
            self.now
        );
        let pos = pos as usize;
        self.heap[pos].at = at;
        self.heap[pos].seq = self.next_seq;
        self.next_seq += 1;
        // The key can only have grown within its timestamp class (fresh
        // seq), but `at` may move either way: restore order both ways.
        self.sift_down(pos);
        self.sift_up(pos);
        true
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        if self.heap.is_empty() {
            return None;
        }
        // Specialized root removal: the displaced tail entry can only move
        // down, so skip `remove_at`'s up-sift.
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0); // writes the displaced entry's slab position
        }
        self.retire(entry.slot);
        debug_assert!(entry.at >= self.now, "heap yielded a past event");
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Heap position of a token's entry, if the event is still pending.
    #[inline]
    fn live_pos(&self, token: EventToken) -> Option<u32> {
        let slot = self.slots.get(token.slot as usize)?;
        (slot.gen == token.gen && slot.pos != NOT_IN_HEAP).then_some(slot.pos)
    }

    /// Invalidate a slot's tokens and put it back on the free list.
    #[inline]
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.pos = NOT_IN_HEAP;
        self.free.push(slot);
    }

    /// Remove and return the entry at `pos`, restoring the heap property.
    fn remove_at(&mut self, pos: u32) -> Entry<E> {
        let pos = pos as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let entry = self.heap.pop().expect("heap is non-empty");
        if pos < self.heap.len() {
            // The displaced tail entry may need to move either way relative
            // to its new neighbourhood.
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            self.sift_down(pos);
            self.sift_up(pos);
        }
        entry
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / D;
            if self.heap[pos].key() < self.heap[parent].key() {
                self.heap.swap(pos, parent);
                self.slots[self.heap[pos].slot as usize].pos = pos as u32;
                pos = parent;
            } else {
                break;
            }
        }
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let first_child = pos * D + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let mut best_key = self.heap[best].key();
            for child in (first_child + 1)..(first_child + D).min(len) {
                let key = self.heap[child].key();
                if key < best_key {
                    best = child;
                    best_key = key;
                }
            }
            if best_key < self.heap[pos].key() {
                self.heap.swap(pos, best);
                self.slots[self.heap[pos].slot as usize].pos = pos as u32;
                pos = best;
            } else {
                break;
            }
        }
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> Nanos {
        Nanos::from_micros(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(us(30), "c");
        q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        assert_eq!(q.pop(), Some((us(10), "a")));
        assert_eq!(q.pop(), Some((us(20), "b")));
        assert_eq!(q.pop(), Some((us(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(us(5), 1);
        q.schedule(us(5), 2);
        q.schedule(us(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), us(10));
        q.schedule_after(us(5), ());
        assert_eq!(q.pop().unwrap().0, us(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        q.pop();
        q.schedule(us(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(us(10), "dropme");
        q.schedule(us(20), "keep");
        assert!(q.cancel(t1));
        assert_eq!(q.pop(), Some((us(20), "keep")));
    }

    #[test]
    fn double_cancel_and_cancel_after_fire() {
        let mut q = EventQueue::new();
        let t = q.schedule(us(10), ());
        assert!(q.cancel(t));
        assert!(!q.cancel(t), "second cancel must be a no-op");
        let t2 = q.schedule(us(20), ());
        q.pop();
        // t2 has fired; cancelling it afterwards must not poison later
        // events, even though its slot has been recycled (generation tag).
        assert!(!q.cancel(t2));
        q.schedule(us(30), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn len_and_is_empty_are_exact_after_cancellation() {
        // Satellite guarantee: cancelled-entry bookkeeping is O(1) because
        // there are no tombstones — `len` counts live entries the moment
        // `cancel` returns, and `is_empty` needs no draining (`&self`).
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        let tokens: Vec<EventToken> = (0..10).map(|i| q.schedule(us(10 + i), i as u32)).collect();
        assert_eq!(q.len(), 10);
        for (i, t) in tokens.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            assert!(q.cancel(*t));
            assert_eq!(q.len(), 10 - i / 2 - 1);
        }
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        for t in &tokens {
            q.cancel(*t);
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reschedule_moves_and_refreshes_fifo_order() {
        let mut q = EventQueue::new();
        let early = q.schedule(us(10), "moved");
        q.schedule(us(20), "stays");
        // Move the early event later: it must pop after "stays".
        assert!(q.reschedule(early, us(20)));
        assert_eq!(q.pop().unwrap().1, "stays");
        assert_eq!(q.pop().unwrap().1, "moved");
        // Stale token: reschedule refuses.
        assert!(!q.reschedule(early, us(30)));
        // Moving earlier works too.
        let a = q.schedule(us(50), "a");
        q.schedule(us(40), "b");
        assert!(q.reschedule(a, us(30)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn reset_recycles_without_leaking_tokens() {
        let mut q = EventQueue::new();
        let stale = q.schedule(us(10), 1);
        q.schedule(us(20), 2);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), Nanos::ZERO);
        // A token from before the reset must not cancel anything scheduled
        // after it, even though slots are reused.
        let fresh = q.schedule(us(5), 3);
        assert!(!q.cancel(stale));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(fresh));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_cancel_stress() {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for i in 0..100u64 {
            tokens.push(q.schedule(Nanos(i * 10), i));
        }
        // Cancel every third event.
        for (i, t) in tokens.iter().enumerate() {
            if i % 3 == 0 {
                q.cancel(*t);
            }
        }
        let mut seen = Vec::new();
        while let Some((_, i)) = q.pop() {
            seen.push(i);
        }
        let expected: Vec<u64> = (0..100).filter(|i| i % 3 != 0).collect();
        assert_eq!(seen, expected);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: a sorted-on-demand `Vec` of `(time, seq, id)` with
    /// linear-scan cancellation — obviously correct, O(n) per op.
    #[derive(Default)]
    struct NaiveQueue {
        pending: Vec<(u64, u64, usize)>,
        next_seq: u64,
        now: u64,
    }

    impl NaiveQueue {
        fn schedule(&mut self, at: u64, id: usize) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push((at, seq, id));
        }

        fn cancel(&mut self, id: usize) -> bool {
            match self.pending.iter().position(|&(_, _, i)| i == id) {
                Some(pos) => {
                    self.pending.remove(pos);
                    true
                }
                None => false,
            }
        }

        fn reschedule(&mut self, id: usize, at: u64) -> bool {
            if self.cancel(id) {
                self.schedule(at, id);
                true
            } else {
                false
            }
        }

        fn pop(&mut self) -> Option<(u64, usize)> {
            let best = self.pending.iter().enumerate().min_by_key(|(_, e)| **e)?;
            let (at, _, id) = *best.1;
            let pos = best.0;
            self.pending.remove(pos);
            self.now = at;
            Some((at, id))
        }
    }

    /// One scripted operation over both queues.
    #[derive(Debug, Clone)]
    enum Op {
        Schedule { delay: u64 },
        Cancel { pick: usize },
        Reschedule { pick: usize, delay: u64 },
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u64..500).prop_map(|delay| Op::Schedule { delay }),
            (0usize..64).prop_map(|pick| Op::Cancel { pick }),
            ((0usize..64), (1u64..500)).prop_map(|(pick, delay)| Op::Reschedule { pick, delay }),
            Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The indexed heap agrees with the naive sorted-Vec model under
        /// arbitrary interleavings of schedule / cancel / reschedule / pop —
        /// same pop sequence, same cancel outcomes, same clock, same len.
        #[test]
        fn matches_naive_reference_model(
            ops in prop::collection::vec(op_strategy(), 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            // id -> token for events the *model* still considers pending.
            let mut live: Vec<(usize, EventToken)> = Vec::new();
            let mut next_id = 0usize;
            for op in ops {
                match op {
                    Op::Schedule { delay } => {
                        let at = model.now + delay;
                        let token = q.schedule(Nanos(at), next_id);
                        model.schedule(at, next_id);
                        live.push((next_id, token));
                        next_id += 1;
                    }
                    Op::Cancel { pick } => {
                        if live.is_empty() { continue; }
                        let (id, token) = live[pick % live.len()];
                        prop_assert_eq!(q.cancel(token), model.cancel(id));
                        live.retain(|&(i, _)| i != id);
                        // Cancelling again must be a no-op on both.
                        prop_assert!(!q.cancel(token));
                        prop_assert!(!model.cancel(id));
                    }
                    Op::Reschedule { pick, delay } => {
                        if live.is_empty() { continue; }
                        let (id, token) = live[pick % live.len()];
                        let at = model.now + delay;
                        prop_assert_eq!(
                            q.reschedule(token, Nanos(at)),
                            model.reschedule(id, at)
                        );
                    }
                    Op::Pop => {
                        let got = q.pop().map(|(at, id)| (at.as_nanos(), id));
                        let want = model.pop();
                        prop_assert_eq!(got, want);
                        if let Some((_, id)) = want {
                            live.retain(|&(i, _)| i != id);
                        }
                        prop_assert_eq!(q.now().as_nanos(), model.now);
                    }
                }
                prop_assert_eq!(q.len(), model.pending.len());
                prop_assert_eq!(q.is_empty(), model.pending.is_empty());
            }
            // Drain: remaining events agree in full.
            loop {
                let got = q.pop().map(|(at, id)| (at.as_nanos(), id));
                let want = model.pop();
                prop_assert_eq!(got, want);
                if want.is_none() { break; }
            }
        }

        /// The clock equals the last popped timestamp and never regresses
        /// under interleaved schedule/pop.
        #[test]
        fn clock_is_monotone(delays in prop::collection::vec(1u64..500, 1..60)) {
            let mut q = EventQueue::new();
            let mut last = Nanos::ZERO;
            for (i, &d) in delays.iter().enumerate() {
                q.schedule_after(Nanos(d), i);
                let (at, _) = q.pop().expect("just scheduled");
                prop_assert!(at >= last);
                prop_assert_eq!(q.now(), at);
                last = at;
            }
        }
    }
}
