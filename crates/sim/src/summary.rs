//! Scalar per-trial metrics — the lingua franca of the sweep engine.
//!
//! Every simulator's raw output converts into a [`TrialSummary`] (via
//! `From`), so the generic [`crate::engine::Sweep`] can aggregate trials
//! from any simulator uniformly. The conversion happens *inside* the worker
//! thread, so large per-station vectors are dropped before results are
//! collected and big abstract sweeps stay memory-light.

use contention_core::metrics::BatchMetrics;
use serde::{Deserialize, Serialize};

/// Everything a figure might plot, extracted from one trial.
///
/// Times are in microseconds (the unit of every figure axis in the paper).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSummary {
    pub n: u32,
    pub successes: u32,
    pub cw_slots: f64,
    pub half_cw_slots: f64,
    pub total_time_us: f64,
    pub half_time_us: f64,
    pub collisions: f64,
    pub colliding_stations: f64,
    /// Total ACK timeouts across stations ≡ station-level collision events.
    pub ack_timeouts: f64,
    pub max_ack_timeouts: f64,
    pub max_ack_timeout_time_us: f64,
    /// Median BEST-OF-k estimate across stations (0 when not estimating).
    pub median_estimate: f64,
    // --- dynamic-traffic fields (0 for the single-batch simulators). The
    // dynamic engine's `n` axis is not a station count: depending on
    // `DynAxis` it selects a cost model or an offered-load level.
    /// Packets offered (arrived) within the horizon.
    pub offered: f64,
    /// Completed / offered (1.0 when every packet drained).
    pub completion_rate: f64,
    /// Wall-clock length of the trial in slots (≥ horizon).
    pub wall_slots: f64,
    pub mean_latency_slots: f64,
    pub p50_latency_slots: f64,
    pub p95_latency_slots: f64,
    pub p99_latency_slots: f64,
    pub max_latency_slots: f64,
    /// Completed packets per wall slot.
    pub throughput_pkts_per_slot: f64,
}

impl TrialSummary {
    /// Extracts the summary, dropping the per-station detail.
    pub fn from_metrics(m: &BatchMetrics) -> TrialSummary {
        TrialSummary {
            n: m.n,
            successes: m.successes,
            cw_slots: m.cw_slots as f64,
            half_cw_slots: m.half_cw_slots as f64,
            total_time_us: m.total_time.as_micros_f64(),
            half_time_us: m.half_time.as_micros_f64(),
            collisions: m.collisions as f64,
            colliding_stations: m.colliding_stations as f64,
            ack_timeouts: m.total_ack_timeouts() as f64,
            max_ack_timeouts: m.max_ack_timeouts() as f64,
            max_ack_timeout_time_us: m.max_ack_timeout_time().as_micros_f64(),
            ..TrialSummary::default()
        }
    }

    /// Attaches a per-trial estimate statistic (BEST-OF-k sweeps).
    pub fn with_estimates(mut self, estimates: &[Option<u32>]) -> TrialSummary {
        let mut vals: Vec<f64> = estimates.iter().flatten().map(|&w| w as f64).collect();
        if !vals.is_empty() {
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            self.median_estimate = vals[vals.len() / 2];
        }
        self
    }
}

impl From<BatchMetrics> for TrialSummary {
    fn from(m: BatchMetrics) -> TrialSummary {
        TrialSummary::from_metrics(&m)
    }
}

/// The metric a figure plots; selects a field of [`TrialSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    Successes,
    CwSlots,
    HalfCwSlots,
    TotalTimeUs,
    HalfTimeUs,
    Collisions,
    CollidingStations,
    AckTimeouts,
    MaxAckTimeouts,
    MaxAckTimeoutTimeUs,
    MedianEstimate,
    // Dynamic-traffic metrics (streaming arrivals; latencies in slots).
    Offered,
    CompletionRate,
    WallSlots,
    MeanLatencySlots,
    P50LatencySlots,
    P95LatencySlots,
    P99LatencySlots,
    MaxLatencySlots,
    Throughput,
}

impl Metric {
    /// Every metric, in [`TrialSummary`] field order — for consumers that
    /// need the full per-trial record through the streaming path.
    pub const ALL: [Metric; 20] = [
        Metric::Successes,
        Metric::CwSlots,
        Metric::HalfCwSlots,
        Metric::TotalTimeUs,
        Metric::HalfTimeUs,
        Metric::Collisions,
        Metric::CollidingStations,
        Metric::AckTimeouts,
        Metric::MaxAckTimeouts,
        Metric::MaxAckTimeoutTimeUs,
        Metric::MedianEstimate,
        Metric::Offered,
        Metric::CompletionRate,
        Metric::WallSlots,
        Metric::MeanLatencySlots,
        Metric::P50LatencySlots,
        Metric::P95LatencySlots,
        Metric::P99LatencySlots,
        Metric::MaxLatencySlots,
        Metric::Throughput,
    ];

    pub fn extract(self, t: &TrialSummary) -> f64 {
        match self {
            Metric::Successes => t.successes as f64,
            Metric::CwSlots => t.cw_slots,
            Metric::HalfCwSlots => t.half_cw_slots,
            Metric::TotalTimeUs => t.total_time_us,
            Metric::HalfTimeUs => t.half_time_us,
            Metric::Collisions => t.collisions,
            Metric::CollidingStations => t.colliding_stations,
            Metric::AckTimeouts => t.ack_timeouts,
            Metric::MaxAckTimeouts => t.max_ack_timeouts,
            Metric::MaxAckTimeoutTimeUs => t.max_ack_timeout_time_us,
            Metric::MedianEstimate => t.median_estimate,
            Metric::Offered => t.offered,
            Metric::CompletionRate => t.completion_rate,
            Metric::WallSlots => t.wall_slots,
            Metric::MeanLatencySlots => t.mean_latency_slots,
            Metric::P50LatencySlots => t.p50_latency_slots,
            Metric::P95LatencySlots => t.p95_latency_slots,
            Metric::P99LatencySlots => t.p99_latency_slots,
            Metric::MaxLatencySlots => t.max_latency_slots,
            Metric::Throughput => t.throughput_pkts_per_slot,
        }
    }

    /// Stable machine-readable identifier, round-trippable through
    /// [`Metric::from_key`] — what serialized artifacts (e.g. the
    /// `shard_state/v1` files) store instead of the display label.
    pub fn key(self) -> &'static str {
        match self {
            Metric::Successes => "successes",
            Metric::CwSlots => "cw_slots",
            Metric::HalfCwSlots => "half_cw_slots",
            Metric::TotalTimeUs => "total_time_us",
            Metric::HalfTimeUs => "half_time_us",
            Metric::Collisions => "collisions",
            Metric::CollidingStations => "colliding_stations",
            Metric::AckTimeouts => "ack_timeouts",
            Metric::MaxAckTimeouts => "max_ack_timeouts",
            Metric::MaxAckTimeoutTimeUs => "max_ack_timeout_time_us",
            Metric::MedianEstimate => "median_estimate",
            Metric::Offered => "offered",
            Metric::CompletionRate => "completion_rate",
            Metric::WallSlots => "wall_slots",
            Metric::MeanLatencySlots => "mean_latency_slots",
            Metric::P50LatencySlots => "p50_latency_slots",
            Metric::P95LatencySlots => "p95_latency_slots",
            Metric::P99LatencySlots => "p99_latency_slots",
            Metric::MaxLatencySlots => "max_latency_slots",
            Metric::Throughput => "throughput_pkts_per_slot",
        }
    }

    /// Parses a [`Metric::key`] string back into the metric.
    pub fn from_key(key: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.key() == key)
    }

    /// Axis label used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Successes => "successes",
            Metric::CwSlots => "CW slots",
            Metric::HalfCwSlots => "CW slots (n/2)",
            Metric::TotalTimeUs => "total time (µs)",
            Metric::HalfTimeUs => "time for n/2 (µs)",
            Metric::Collisions => "disjoint collisions",
            Metric::CollidingStations => "collision participants",
            Metric::AckTimeouts => "total ACK timeouts",
            Metric::MaxAckTimeouts => "max ACK timeouts",
            Metric::MaxAckTimeoutTimeUs => "max ACK-timeout time (µs)",
            Metric::MedianEstimate => "estimate of n",
            Metric::Offered => "offered packets",
            Metric::CompletionRate => "completion rate",
            Metric::WallSlots => "wall slots",
            Metric::MeanLatencySlots => "mean latency (slots)",
            Metric::P50LatencySlots => "p50 latency (slots)",
            Metric::P95LatencySlots => "p95 latency (slots)",
            Metric::P99LatencySlots => "p99 latency (slots)",
            Metric::MaxLatencySlots => "max latency (slots)",
            Metric::Throughput => "throughput (pkts/slot)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::metrics::StationMetrics;
    use contention_core::time::Nanos;

    fn metrics() -> BatchMetrics {
        BatchMetrics {
            n: 2,
            successes: 2,
            total_time: Nanos::from_micros(1_500),
            half_time: Nanos::from_micros(700),
            cw_slots: 42,
            half_cw_slots: 17,
            collisions: 3,
            colliding_stations: 7,
            stations: vec![
                StationMetrics {
                    ack_timeouts: 4,
                    ack_timeout_time: Nanos::from_micros(300),
                    ..StationMetrics::default()
                },
                StationMetrics::default(),
            ],
        }
    }

    #[test]
    fn all_lists_every_metric_exactly_once() {
        // Exhaustive match, no wildcard: adding a `Metric` variant fails to
        // compile here — update `Metric::ALL` in the same change.
        fn listed(m: Metric) {
            match m {
                Metric::Successes
                | Metric::CwSlots
                | Metric::HalfCwSlots
                | Metric::TotalTimeUs
                | Metric::HalfTimeUs
                | Metric::Collisions
                | Metric::CollidingStations
                | Metric::AckTimeouts
                | Metric::MaxAckTimeouts
                | Metric::MaxAckTimeoutTimeUs
                | Metric::MedianEstimate
                | Metric::Offered
                | Metric::CompletionRate
                | Metric::WallSlots
                | Metric::MeanLatencySlots
                | Metric::P50LatencySlots
                | Metric::P95LatencySlots
                | Metric::P99LatencySlots
                | Metric::MaxLatencySlots
                | Metric::Throughput => {}
            }
        }
        for m in Metric::ALL {
            listed(m);
        }
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert!(!Metric::ALL[..i].contains(m), "duplicate {m:?} in ALL");
        }
    }

    #[test]
    fn keys_round_trip_every_metric() {
        for m in Metric::ALL {
            assert_eq!(Metric::from_key(m.key()), Some(m), "{m:?}");
        }
        assert_eq!(Metric::from_key("not_a_metric"), None);
    }

    #[test]
    fn extraction_matches_fields() {
        let t = TrialSummary::from_metrics(&metrics());
        assert_eq!(Metric::Successes.extract(&t), 2.0);
        assert_eq!(Metric::CwSlots.extract(&t), 42.0);
        assert_eq!(Metric::HalfCwSlots.extract(&t), 17.0);
        assert_eq!(Metric::TotalTimeUs.extract(&t), 1_500.0);
        assert_eq!(Metric::HalfTimeUs.extract(&t), 700.0);
        assert_eq!(Metric::Collisions.extract(&t), 3.0);
        assert_eq!(Metric::AckTimeouts.extract(&t), 4.0);
        assert_eq!(Metric::MaxAckTimeouts.extract(&t), 4.0);
        assert_eq!(Metric::MaxAckTimeoutTimeUs.extract(&t), 300.0);
    }

    #[test]
    fn from_batch_metrics_matches_from_metrics() {
        let m = metrics();
        assert_eq!(
            TrialSummary::from(m.clone()),
            TrialSummary::from_metrics(&m)
        );
    }

    #[test]
    fn estimates_attach_median() {
        let t = TrialSummary::from_metrics(&metrics()).with_estimates(&[
            Some(128),
            Some(256),
            Some(512),
            None,
        ]);
        assert_eq!(t.median_estimate, 256.0);
    }

    #[test]
    fn no_estimates_stay_zero() {
        let t = TrialSummary::from_metrics(&metrics()).with_estimates(&[None, None]);
        assert_eq!(t.median_estimate, 0.0);
    }
}
