//! Cost-aware scheduling: analytic per-trial cost estimates for sweep grids.
//!
//! Per-trial cost across one sweep grid varies by 2–3 orders of magnitude
//! (the `scale` experiment spans n = 12 500 … 10⁶; the saturation sweep
//! spans offered loads of 5 % … 120 % of channel capacity). A scheduler or
//! shard partitioner that treats every `(algorithm, n)` cell as equal work
//! therefore balances *counts*, not *work*: one shard inherits all the
//! n = 10⁶ cells, and the join waits on whichever worker drew the heavy
//! tail. This module gives the runtime a common currency for "estimated
//! work":
//!
//! * [`CostSpec`] — a small, serializable analytic shape (`uniform`,
//!   `linear-n`, `n-log-n`) each experiment's grid description declares for
//!   its backend. The absolute scale is irrelevant everywhere it is used —
//!   batching, claim ordering and shard partitioning only compare costs
//!   against each other — so an analytic shape is enough.
//! * [`CostModel`] — the trait the scheduler consumes: per-trial cost as a
//!   function of `(algorithm, n)`. `CostSpec` implements it with the
//!   algorithm ignored (the paper's algorithms differ by small constant
//!   factors, the grid axes by orders of magnitude).
//! * [`CalibratedCost`] — an optional quick-probe calibrator wrapping any
//!   base model with measured per-algorithm scale factors, for callers that
//!   do want the constant factors (e.g. a work server splitting a grid
//!   across heterogeneous machines).
//!
//! Estimates feed scheduling only. A wrong cost estimate can slow a sweep
//! down; it can never change a bit of its output, because results are
//! routed by grid position and per-trial RNG streams are derived from grid
//! coordinates alone.

use contention_core::algorithm::AlgorithmKind;
use std::time::Instant;

/// An analytic per-trial cost shape, keyed by the grid's `n` axis.
///
/// This is pure data — it serializes into shard/checkpoint artifacts (as
/// its [`key`](CostSpec::key)) so a resumed or merged run plans work with
/// the same estimates the original run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostSpec {
    /// Every cell costs the same (the safe default; also what artifacts
    /// recorded before cost metadata existed deserialize to).
    #[default]
    Uniform,
    /// Cost proportional to `n` — e.g. the saturation sweep, where the `n`
    /// axis encodes offered load and arrivals dominate the trial.
    LinearN,
    /// Cost proportional to `n·log₂ n` — the windowed/MAC resolution
    /// backends, whose backoff runs last Θ(log n) windows of Θ(n) slots.
    NLogN,
}

impl CostSpec {
    /// The stable serialization key (`"uniform"` / `"linear-n"` /
    /// `"n-log-n"`).
    pub fn key(&self) -> &'static str {
        match self {
            CostSpec::Uniform => "uniform",
            CostSpec::LinearN => "linear-n",
            CostSpec::NLogN => "n-log-n",
        }
    }

    /// Parses a [`key`](CostSpec::key) back into its spec.
    pub fn from_key(key: &str) -> Option<CostSpec> {
        match key {
            "uniform" => Some(CostSpec::Uniform),
            "linear-n" => Some(CostSpec::LinearN),
            "n-log-n" => Some(CostSpec::NLogN),
            _ => None,
        }
    }

    /// The estimated cost of one trial at `n`, in arbitrary units (only
    /// ratios matter). Always finite and ≥ 1, so degenerate axes (n = 0
    /// placeholder cells) still carry schedulable weight.
    pub fn cost(&self, n: u32) -> f64 {
        let x = f64::from(n).max(1.0);
        match self {
            CostSpec::Uniform => 1.0,
            CostSpec::LinearN => x,
            CostSpec::NLogN => x * x.max(2.0).log2(),
        }
    }
}

/// Estimated execution cost of trials, the scheduler's only view of a
/// backend's performance profile.
pub trait CostModel {
    /// Estimated cost of one `(algorithm, n)` trial, in arbitrary units.
    fn trial_cost(&self, algorithm: AlgorithmKind, n: u32) -> f64;

    /// Estimated cost of a whole cell: `trials × trial_cost`.
    fn cell_cost(&self, algorithm: AlgorithmKind, n: u32, trials: u32) -> f64 {
        self.trial_cost(algorithm, n) * f64::from(trials)
    }
}

impl CostModel for CostSpec {
    fn trial_cost(&self, _algorithm: AlgorithmKind, n: u32) -> f64 {
        self.cost(n)
    }
}

/// A base [`CostModel`] corrected by measured per-algorithm scale factors —
/// the quick-probe calibrator.
///
/// The analytic specs capture how cost scales along the `n` axis but not
/// the constant factor between algorithms (e.g. SAWTOOTH's tighter windows
/// cost more slots per window than BEB's). Timing a handful of probe trials
/// and dividing by the base model's prediction recovers exactly that
/// constant; the geometric mean over a probe set keeps one outlier probe
/// (a page fault, a neighbor burst) from skewing the factor.
#[derive(Debug, Clone)]
pub struct CalibratedCost<M> {
    base: M,
    /// Measured/predicted scale per algorithm; algorithms without probes
    /// fall through at scale 1.
    scales: Vec<(AlgorithmKind, f64)>,
}

impl<M: CostModel> CalibratedCost<M> {
    /// Calibrates `base` from probe measurements: `(algorithm, n, measured
    /// cost)` triples, where `measured` is any consistent unit (seconds,
    /// nanoseconds — only ratios survive). Non-finite or non-positive
    /// measurements are discarded.
    pub fn from_probes(base: M, probes: &[(AlgorithmKind, u32, f64)]) -> CalibratedCost<M> {
        let mut scales: Vec<(AlgorithmKind, f64)> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for &(algorithm, n, measured) in probes {
            let predicted = base.trial_cost(algorithm, n);
            if !(measured.is_finite() && measured > 0.0 && predicted > 0.0) {
                continue;
            }
            let log_ratio = (measured / predicted).ln();
            match scales
                .iter_mut()
                .zip(&mut counts)
                .find(|((a, _), _)| *a == algorithm)
            {
                Some(((_, acc), count)) => {
                    *acc += log_ratio;
                    *count += 1;
                }
                None => {
                    scales.push((algorithm, log_ratio));
                    counts.push(1);
                }
            }
        }
        // Log-sums → geometric means.
        for ((_, acc), count) in scales.iter_mut().zip(&counts) {
            *acc = (*acc / *count as f64).exp();
        }
        CalibratedCost { base, scales }
    }

    /// Calibrates `base` by *running* quick probes: `run(algorithm, n)` is
    /// executed once per listed probe point and wall-clock timed.
    pub fn probe_with(
        base: M,
        points: &[(AlgorithmKind, u32)],
        mut run: impl FnMut(AlgorithmKind, u32),
    ) -> CalibratedCost<M> {
        let measured: Vec<(AlgorithmKind, u32, f64)> = points
            .iter()
            .map(|&(algorithm, n)| {
                let start = Instant::now();
                run(algorithm, n);
                (algorithm, n, start.elapsed().as_nanos() as f64)
            })
            .collect();
        CalibratedCost::from_probes(base, &measured)
    }

    /// The measured scale factor for `algorithm` (1.0 without probes).
    pub fn scale(&self, algorithm: AlgorithmKind) -> f64 {
        self.scales
            .iter()
            .find(|(a, _)| *a == algorithm)
            .map(|&(_, s)| s)
            .unwrap_or(1.0)
    }
}

impl<M: CostModel> CostModel for CalibratedCost<M> {
    fn trial_cost(&self, algorithm: AlgorithmKind, n: u32) -> f64 {
        self.base.trial_cost(algorithm, n) * self.scale(algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for spec in [CostSpec::Uniform, CostSpec::LinearN, CostSpec::NLogN] {
            assert_eq!(CostSpec::from_key(spec.key()), Some(spec));
        }
        assert_eq!(CostSpec::from_key("bogus"), None);
    }

    #[test]
    fn costs_are_positive_and_monotone() {
        for spec in [CostSpec::Uniform, CostSpec::LinearN, CostSpec::NLogN] {
            let mut last = 0.0;
            for n in [0u32, 1, 2, 100, 12_500, 1_000_000] {
                let c = spec.cost(n);
                assert!(c.is_finite() && c >= 1.0, "{spec:?} at n={n}: {c}");
                assert!(c >= last, "{spec:?} not monotone at n={n}");
                last = c;
            }
        }
        // The shapes actually separate: at n = 10⁶, n·log n ≫ n ≫ 1.
        assert!(CostSpec::NLogN.cost(1_000_000) > 10.0 * CostSpec::LinearN.cost(1_000_000));
        assert_eq!(CostSpec::Uniform.cost(1_000_000), 1.0);
    }

    #[test]
    fn cell_cost_multiplies_trials() {
        let spec = CostSpec::LinearN;
        assert_eq!(
            spec.cell_cost(AlgorithmKind::Beb, 100, 30),
            30.0 * spec.trial_cost(AlgorithmKind::Beb, 100)
        );
    }

    #[test]
    fn calibration_recovers_per_algorithm_factors() {
        // Probes generated from a "true" cost = spec × {1× for BEB, 3× for
        // SAWTOOTH}: calibration must recover the factors (geometric mean
        // of exact ratios is exact).
        let spec = CostSpec::NLogN;
        let probes: Vec<(AlgorithmKind, u32, f64)> = [100u32, 1_000, 10_000]
            .iter()
            .flat_map(|&n| {
                [
                    (AlgorithmKind::Beb, n, spec.cost(n)),
                    (AlgorithmKind::Sawtooth, n, 3.0 * spec.cost(n)),
                ]
            })
            .collect();
        let cal = CalibratedCost::from_probes(spec, &probes);
        assert!((cal.scale(AlgorithmKind::Beb) - 1.0).abs() < 1e-12);
        assert!((cal.scale(AlgorithmKind::Sawtooth) - 3.0).abs() < 1e-12);
        // The calibrated model preserves the base model's n-scaling.
        let r = cal.trial_cost(AlgorithmKind::Sawtooth, 10_000)
            / cal.trial_cost(AlgorithmKind::Sawtooth, 100);
        assert!((r - spec.cost(10_000) / spec.cost(100)).abs() < 1e-9);
        // Unprobed algorithms fall through at scale 1.
        assert_eq!(cal.scale(AlgorithmKind::LogBackoff), 1.0);
    }

    #[test]
    fn calibration_discards_junk_probes() {
        let junk = [
            (AlgorithmKind::Beb, 100, f64::NAN),
            (AlgorithmKind::Beb, 100, -5.0),
            (AlgorithmKind::Beb, 100, 0.0),
        ];
        let cal = CalibratedCost::from_probes(CostSpec::Uniform, &junk);
        assert_eq!(cal.scale(AlgorithmKind::Beb), 1.0);
    }

    #[test]
    fn probe_with_times_every_point() {
        let mut ran: Vec<(AlgorithmKind, u32)> = Vec::new();
        let cal = CalibratedCost::probe_with(
            CostSpec::Uniform,
            &[(AlgorithmKind::Beb, 10), (AlgorithmKind::Sawtooth, 20)],
            |a, n| ran.push((a, n)),
        );
        assert_eq!(
            ran,
            vec![(AlgorithmKind::Beb, 10), (AlgorithmKind::Sawtooth, 20)]
        );
        // Timed scales are positive whatever the clock resolution did.
        assert!(cal.scale(AlgorithmKind::Beb) >= 0.0);
    }
}
