//! Coarse progress reporting for long sweeps.
//!
//! A [`Progress`] counts completed trials and, when enabled *and* stderr is
//! a terminal, repaints a one-line `done/total (pct%, ETA …)` status. Prints
//! are rate-limited (and contention-free: a worker that can't take the print
//! lock just skips), so ticking per trial from every worker is safe even for
//! micro-trials. When stderr is piped — CI logs, `2>file` — nothing is ever
//! printed, as batch output should be.

use parking_lot::Mutex;
use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Minimum interval between repaints.
const MIN_INTERVAL: Duration = Duration::from_millis(200);

/// A shared trials-completed counter with optional stderr reporting.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    started: Instant,
    last_print: Mutex<Instant>,
    /// The newline-terminated 100 % line has been painted.
    finished: AtomicBool,
    enabled: bool,
}

impl Progress {
    /// A meter over `total` work items; reporting happens only when
    /// `requested` is set *and* stderr is a TTY.
    pub fn new(total: usize, requested: bool) -> Progress {
        let now = Instant::now();
        Progress {
            total,
            done: AtomicUsize::new(0),
            started: now,
            // Backdate so the very first tick paints immediately.
            last_print: Mutex::new(now.checked_sub(MIN_INTERVAL).unwrap_or(now)),
            finished: AtomicBool::new(false),
            enabled: requested && std::io::stderr().is_terminal(),
        }
    }

    /// Records one completed item; repaints if due. Callable from any thread.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let Some(mut last) = self.last_print.try_lock() else {
            // Another worker is painting. If this was the *final* tick the
            // repaint it deserved comes from `finish()` after the join, so
            // dropping it here cannot strand a stale line.
            return;
        };
        if done < self.total && last.elapsed() < MIN_INTERVAL {
            return;
        }
        *last = Instant::now();
        self.paint(done);
        if done >= self.total {
            eprintln!();
            self.finished.store(true, Ordering::Relaxed);
        }
    }

    /// Paints the final newline-terminated status unless a tick already did.
    /// Call once after the workers have joined — the meter must never leave
    /// a stale, unterminated line behind on stderr.
    pub fn finish(&self) {
        if !self.enabled || self.total == 0 || self.finished.swap(true, Ordering::Relaxed) {
            return;
        }
        self.paint(self.done.load(Ordering::Relaxed));
        eprintln!();
    }

    /// One repaint: carriage return, status, clear-to-end-of-line (the new
    /// line can be shorter than the previous one — e.g. `ETA 17m` → `ETA 9s`
    /// — and must not leave its tail visible).
    fn paint(&self, done: usize) {
        eprint!(
            "\r{}\x1b[K",
            render(done, self.total, self.started.elapsed())
        );
    }

    /// Items completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

/// The status line: `done/total trials (pct%, ETA …)`. Pure, for testing.
pub fn render(done: usize, total: usize, elapsed: Duration) -> String {
    let pct = 100.0 * done as f64 / total.max(1) as f64;
    if done >= total {
        return format!(
            "{done}/{total} trials (100%, {})",
            coarse(elapsed.as_secs_f64())
        );
    }
    let eta = if done == 0 {
        "—".to_string()
    } else {
        let remaining = elapsed.as_secs_f64() * (total - done) as f64 / done as f64;
        format!("ETA {}", coarse(remaining))
    };
    format!("{done}/{total} trials ({pct:.0}%, {eta})")
}

/// Coarse duration: whole seconds below two minutes, minutes above.
fn coarse(seconds: f64) -> String {
    if seconds < 120.0 {
        format!("{}s", seconds.round() as u64)
    } else {
        format!("{}m", (seconds / 60.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_midway_has_percent_and_eta() {
        let line = render(25, 100, Duration::from_secs(10));
        assert_eq!(line, "25/100 trials (25%, ETA 30s)");
    }

    #[test]
    fn render_start_has_no_eta() {
        let line = render(0, 100, Duration::ZERO);
        assert!(line.contains("(0%, —)"), "{line}");
    }

    #[test]
    fn render_done_reports_elapsed() {
        let line = render(100, 100, Duration::from_secs(7));
        assert_eq!(line, "100/100 trials (100%, 7s)");
    }

    #[test]
    fn long_etas_switch_to_minutes() {
        let line = render(1, 100, Duration::from_secs(10));
        assert_eq!(line, "1/100 trials (1%, ETA 17m)");
    }

    #[test]
    fn ticks_count_even_when_disabled() {
        let p = Progress::new(3, false);
        p.tick();
        p.tick();
        assert_eq!(p.completed(), 2);
        // Disabled meters never paint; finish (idempotent) is a no-op.
        p.finish();
        p.finish();
        assert_eq!(p.completed(), 2);
    }

    #[test]
    fn zero_total_renders_without_dividing_by_zero() {
        let line = render(0, 0, Duration::ZERO);
        assert!(line.starts_with("0/0"), "{line}");
    }
}
