//! Live observation of an in-flight sweep: the checkpoint/metrics seam.
//!
//! A long sweep (10⁷ trials at n = 10⁶) that dies at 90 % should not restart
//! from zero. The engine therefore lets a caller attach a [`SweepMonitor`]
//! to a fold run: a dedicated snapshot thread wakes on a [`SnapshotCadence`]
//! (wall time and/or completed trials), clones the per-cell accumulator
//! state **off the fold seam** — workers keep claiming batches; only a
//! worker recording into the one cell currently being cloned briefly waits
//! on that cell's lock — and hands the clone to the monitor as a
//! [`SweepSnapshot`]. The monitor side (in `contention-experiments`) turns
//! snapshots into atomic `shard_state/v1` checkpoint artifacts and a
//! `metrics.json` sidecar.
//!
//! Snapshots are read-only observations: they can never change a single bit
//! of the sweep's results, so determinism across thread counts and batch
//! sizes is untouched. The state they capture is a *ragged cut* — each cell
//! is internally consistent (cloned under its lock, and a trial's metrics
//! are recorded atomically under that lock), but cells are cloned one after
//! another while workers race ahead. That is exactly what the
//! position-addressed artifact format tolerates: a resumed run recomputes
//! whatever trials the cut missed and merges bit-identically.

use crate::engine::FoldedCell;
use std::time::Duration;

/// When the snapshot thread should capture in-flight state.
///
/// Either trigger fires a snapshot; with both `None` only the guaranteed
/// final snapshot (after the workers join) is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotCadence {
    /// Snapshot when this much wall time passed since the last snapshot.
    pub every: Option<Duration>,
    /// Snapshot when this many trials completed since the last snapshot.
    pub every_trials: Option<usize>,
}

impl SnapshotCadence {
    /// Wall-clock cadence: every `secs` seconds.
    pub fn secs(secs: u64) -> SnapshotCadence {
        SnapshotCadence {
            every: Some(Duration::from_secs(secs)),
            every_trials: None,
        }
    }

    /// Trial-count cadence: every `trials` completed trials.
    pub fn trials(trials: usize) -> SnapshotCadence {
        SnapshotCadence {
            every: None,
            every_trials: Some(trials),
        }
    }

    /// Whether a snapshot is due, given what accumulated since the last one.
    pub fn due(&self, since_last: Duration, trials_since_last: usize) -> bool {
        self.every.is_some_and(|d| since_last >= d)
            || self
                .every_trials
                .is_some_and(|t| t > 0 && trials_since_last >= t)
    }
}

/// One observation of an in-flight sweep, handed to a [`SweepMonitor`].
#[derive(Debug, Clone)]
pub struct SweepSnapshot<A> {
    /// Clones of every accumulator the run is folding into, in grid order —
    /// the whole (range-restricted) grid for a full run, only the re-run
    /// cells for a resume ([`Sweep::run_fold_monitored`]'s `missing` plan).
    ///
    /// [`Sweep::run_fold_monitored`]: crate::engine::Sweep::run_fold_monitored
    pub cells: Vec<FoldedCell<A>>,
    /// Trials completed *by this run* at capture time.
    pub completed_trials: usize,
    /// Trials this run will execute in total (not the whole grid's count
    /// when resuming — the monitor knows its own baseline).
    pub total_trials: usize,
    /// Wall time since the run's workers started.
    pub elapsed: Duration,
    /// Worker threads executing the run.
    pub workers: usize,
    /// True for the guaranteed last snapshot, taken after the workers have
    /// joined — `completed_trials == total_trials` and every cell is final.
    pub finished: bool,
}

/// A sink for in-flight sweep state, called from the snapshot thread.
///
/// Implementations must tolerate being called at any moment between (and
/// once after) worker batches, and should not panic: a failing sink would
/// tear down the whole sweep. I/O-backed monitors (checkpoint writers)
/// swallow and report their own errors instead of propagating them.
pub trait SweepMonitor<A>: Sync {
    /// Observes one snapshot. Runs on the dedicated snapshot thread, never
    /// on a worker, so moderate work here (serialization, file writes) does
    /// not stall the sweep.
    fn snapshot(&self, snap: SweepSnapshot<A>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_triggers_on_either_axis() {
        let c = SnapshotCadence {
            every: Some(Duration::from_secs(5)),
            every_trials: Some(100),
        };
        assert!(!c.due(Duration::from_secs(1), 99));
        assert!(c.due(Duration::from_secs(5), 0));
        assert!(c.due(Duration::from_secs(1), 100));
    }

    #[test]
    fn empty_cadence_is_never_due() {
        let c = SnapshotCadence::default();
        assert!(!c.due(Duration::from_secs(3600), usize::MAX));
    }

    #[test]
    fn constructors_set_one_axis() {
        assert_eq!(
            SnapshotCadence::secs(30).every,
            Some(Duration::from_secs(30))
        );
        assert_eq!(SnapshotCadence::secs(30).every_trials, None);
        assert_eq!(SnapshotCadence::trials(64).every_trials, Some(64));
    }
}
