//! Aligned-window execution over a noisy channel with softened collisions.
//!
//! Same window semantics as [`crate::windowed::WindowedSim`] (all stations
//! arrive at slot 0, windows are globally aligned, a failed station waits out
//! the window), but assumption A1 is replaced by a
//! [`ChannelModel`]: a slot carrying `k ≥ 2` transmissions still delivers one
//! of them with probability `p_recover(k)`, and any slot can be erased by
//! noise — the regime of *Softening the Impact of Collisions in Contention
//! Resolution* (arXiv:2408.11275).
//!
//! RNG discipline: each window first draws every alive station's slot (in
//! alive order), then resolves occupied slots in ascending slot order
//! through [`ChannelModel::sample_slot`]. Because the ideal channel samples
//! without consuming randomness, the `p = 0` / zero-noise configuration *is*
//! assumption A1 with the identical RNG stream — which is why
//! [`crate::windowed::WindowedSim`] is implemented as a delegation to this
//! loop over [`ChannelModel::ideal`], and why the workspace's
//! degenerate-equality regression tests can demand bit-identity.

use contention_core::algorithm::AlgorithmKind;
use contention_core::channel::{ChannelModel, SlotFate};
use contention_core::metrics::{BatchMetrics, StationMetrics};
use contention_core::schedule::{Schedule, Truncation, WindowSchedule};
use contention_core::time::Nanos;
use contention_sim::engine::Simulator;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration for one noisy-channel windowed run.
#[derive(Debug, Clone, Copy)]
pub struct NoisyConfig {
    /// Which backoff algorithm every station runs.
    pub algorithm: AlgorithmKind,
    /// Window clamping; unbounded by default to mirror the abstract model.
    pub truncation: Truncation,
    /// Slot duration used only to express `total_time = cw_slots × slot`.
    pub slot: Nanos,
    /// The channel: collision softening + per-slot noise.
    pub channel: ChannelModel,
    /// Safety valve: abort after this many windows (0 = no limit). Unlike
    /// the fatal-collision model, a noisy channel with `noise = 1` would
    /// never finish, so long-running noisy sweeps should set this.
    pub max_windows: u32,
}

impl NoisyConfig {
    /// Abstract-model geometry (unbounded windows, 9 µs slots) over an
    /// arbitrary channel.
    pub fn abstract_model(algorithm: AlgorithmKind, channel: ChannelModel) -> NoisyConfig {
        NoisyConfig {
            algorithm,
            truncation: Truncation::unbounded(),
            slot: Nanos::from_micros(9),
            channel,
            max_windows: 0,
        }
    }

    /// The degenerate configuration: ideal channel, i.e. exactly
    /// [`crate::windowed::WindowedConfig::abstract_model`] semantics.
    pub fn fatal(algorithm: AlgorithmKind) -> NoisyConfig {
        NoisyConfig::abstract_model(algorithm, ChannelModel::ideal())
    }
}

/// Reusable per-worker buffers for the windowed loop: the occupancy
/// counters, the alive/done tables and the per-window draw lists all keep
/// their high-water capacity from trial to trial. A fresh (`Default`)
/// scratch behaves identically — reuse may only move memory, never results.
#[derive(Default)]
pub struct NoisyScratch {
    /// Occupancy counter per slot of the current window (ideal path; only
    /// touched slots are reset between windows).
    occupancy: Vec<u32>,
    /// Marks collision slots already counted this window (ideal path).
    counted: Vec<bool>,
    alive: Vec<u32>,
    done: Vec<bool>,
    /// Draws of the current window: (station, slot), in alive order.
    draws: Vec<(u32, usize)>,
    /// Successes of the current window in ascending slot order:
    /// (slot, station).
    window_successes: Vec<(usize, u32)>,
    /// Sampled path: indices into `draws`, sorted by (slot, draw order).
    order: Vec<u32>,
}

/// The noisy-channel aligned-window simulator.
///
/// Two window-resolution paths share one loop: ideal channels (which sample
/// without randomness) classify slots with O(alive) occupancy counters —
/// the hot path every paper figure runs — while non-ideal channels group
/// same-slot draws by sorting and resolve each group through
/// [`ChannelModel::sample_slot`]. Both paths are outcome-identical for an
/// ideal channel (a unit test forces the sampled path and checks
/// bit-equality), so which one runs is purely a performance choice.
pub struct NoisySim {
    config: NoisyConfig,
    schedule: Schedule,
    scratch: NoisyScratch,
}

impl NoisySim {
    /// Builds a simulator; panics for algorithms without a static window
    /// schedule (BEST-OF-k belongs to the MAC simulator).
    pub fn new(config: NoisyConfig) -> NoisySim {
        NoisySim {
            config,
            schedule: noisy_schedule(&config),
            scratch: NoisyScratch::default(),
        }
    }

    /// Runs one single-batch trial of `n` stations.
    pub fn run<R: Rng>(&mut self, n: u32, rng: &mut R) -> BatchMetrics {
        self.run_inner(n, rng, false)
    }

    fn run_inner<R: Rng>(&mut self, n: u32, rng: &mut R, force_sampled: bool) -> BatchMetrics {
        self.schedule.reset();
        run_windows(
            &self.config,
            &mut self.schedule,
            &mut self.scratch,
            n,
            rng,
            force_sampled,
        )
    }
}

/// The schedule a config prescribes; panics for algorithms without one.
fn noisy_schedule(config: &NoisyConfig) -> Schedule {
    config
        .algorithm
        .schedule(config.truncation)
        .unwrap_or_else(|| {
            panic!(
                "{} has no static window schedule; use the MAC simulator",
                config.algorithm
            )
        })
}

/// The shared windowed loop over caller-owned scratch buffers. `schedule`
/// must be freshly built or reset.
fn run_windows<R: Rng>(
    config: &NoisyConfig,
    schedule: &mut Schedule,
    scratch: &mut NoisyScratch,
    n: u32,
    rng: &mut R,
    force_sampled: bool,
) -> BatchMetrics {
    let mut metrics = BatchMetrics {
        n,
        stations: vec![StationMetrics::default(); n as usize],
        ..BatchMetrics::default()
    };
    if n == 0 {
        return metrics;
    }

    let fast_path = config.channel.is_ideal() && !force_sampled;
    let half_target = n.div_ceil(2);
    let NoisyScratch {
        occupancy,
        counted,
        alive,
        done,
        draws,
        window_successes,
        order,
    } = scratch;
    alive.clear();
    alive.extend(0..n);
    done.clear();
    done.resize(n as usize, false);
    let mut slots_before_window: u64 = 0;
    let mut windows_run: u32 = 0;

    while !alive.is_empty() {
        if config.max_windows != 0 && windows_run >= config.max_windows {
            break;
        }
        windows_run += 1;
        let width = schedule.next_window() as usize;
        if fast_path && occupancy.len() < width {
            occupancy.resize(width, 0);
            counted.resize(width, false);
        }

        draws.clear();
        for &station in alive.iter() {
            let slot = rng.gen_range(0..width);
            draws.push((station, slot));
            if fast_path {
                occupancy[slot] += 1;
            }
            let s = &mut metrics.stations[station as usize];
            s.attempts += 1;
            s.backoff_slots += slot as u64;
        }

        window_successes.clear();
        if fast_path {
            // A1 classification with occupancy counters: the ideal
            // channel draws nothing, so no per-slot sampling is needed.
            for &(station, slot) in draws.iter() {
                if occupancy[slot] == 1 {
                    window_successes.push((slot, station));
                } else {
                    // A1 failure; under A2 the station learns it in-slot
                    // at zero extra cost — the assumption under test.
                    metrics.stations[station as usize].ack_timeouts += 1;
                    if !counted[slot] {
                        counted[slot] = true;
                        metrics.collisions += 1;
                    }
                    metrics.colliding_stations += 1;
                }
            }
            window_successes.sort_unstable();
            // Reset only the touched slots (windows can be huge; zeroing
            // the whole buffer every window would dominate the run time).
            for &(_, slot) in draws.iter() {
                occupancy[slot] = 0;
                counted[slot] = false;
            }
        } else {
            // Group same-slot draws (ascending slot; draw order within a
            // slot) and resolve each group through the channel.
            order.clear();
            order.extend(0..draws.len() as u32);
            order.sort_unstable_by_key(|&i| (draws[i as usize].1, i));
            let mut group_start = 0usize;
            while group_start < order.len() {
                let slot = draws[order[group_start] as usize].1;
                let mut group_end = group_start + 1;
                while group_end < order.len() && draws[order[group_end] as usize].1 == slot {
                    group_end += 1;
                }
                let k = (group_end - group_start) as u32;
                let fate = config.channel.sample_slot(k, rng);
                if k >= 2 {
                    metrics.collisions += 1;
                    metrics.colliding_stations += k as u64;
                }
                for (j, &draw_idx) in order[group_start..group_end].iter().enumerate() {
                    let station = draws[draw_idx as usize].0;
                    if matches!(fate, SlotFate::Delivered { winner } if winner as usize == j) {
                        window_successes.push((slot, station));
                    } else {
                        // Collision loss or noise erasure; the station
                        // learns it in-slot (A2) and waits out the window.
                        metrics.stations[station as usize].ack_timeouts += 1;
                    }
                }
                group_start = group_end;
            }
        }

        for &(slot, station) in window_successes.iter() {
            done[station as usize] = true;
            metrics.successes += 1;
            let at_slot = slots_before_window + slot as u64 + 1;
            metrics.stations[station as usize].success_time = Some(config.slot * at_slot);
            if metrics.successes == half_target {
                metrics.half_cw_slots = at_slot;
            }
            if metrics.successes == n {
                metrics.cw_slots = at_slot;
            }
        }

        if window_successes.len() == alive.len() {
            alive.clear();
        } else if !window_successes.is_empty() {
            alive.retain(|&st| !done[st as usize]);
        }
        slots_before_window += width as u64;
    }

    metrics.total_time = config.slot * metrics.cw_slots;
    metrics.half_time = config.slot * metrics.half_cw_slots;
    metrics
}

/// Plugs the noisy-channel semantics into the generic sweep engine.
impl Simulator for NoisySim {
    type Config = NoisyConfig;
    type Output = BatchMetrics;
    const NAME: &'static str = "noisy";

    fn algorithm(config: &NoisyConfig) -> AlgorithmKind {
        config.algorithm
    }

    fn with_algorithm(config: &NoisyConfig, algorithm: AlgorithmKind) -> NoisyConfig {
        NoisyConfig {
            algorithm,
            ..*config
        }
    }

    type Scratch = NoisyScratch;

    fn run_with(
        config: &NoisyConfig,
        n: u32,
        rng: &mut SmallRng,
        scratch: &mut NoisyScratch,
    ) -> BatchMetrics {
        run_windows(config, &mut noisy_schedule(config), scratch, n, rng, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowed::{WindowedConfig, WindowedSim};
    use contention_core::channel::Recovery;
    use contention_core::rng::{experiment_tag, trial_rng};

    fn run_once(config: NoisyConfig, n: u32, trial: u32) -> BatchMetrics {
        let mut sim = NoisySim::new(config);
        let mut rng = trial_rng(experiment_tag("noisy-test"), config.algorithm, n, trial);
        sim.run(n, &mut rng)
    }

    #[test]
    fn all_packets_finish_with_softening() {
        for kind in AlgorithmKind::PAPER_SET {
            let m = run_once(
                NoisyConfig::abstract_model(kind, ChannelModel::softened(0.5)),
                100,
                0,
            );
            assert_eq!(m.successes, 100, "{kind}");
            assert!(m.stations.iter().all(|s| s.success_time.is_some()));
            assert!(m.attempts_balance(), "{kind}");
        }
    }

    #[test]
    fn degenerate_channel_replays_windowed_sim_exactly() {
        // The acceptance-criterion regression in miniature: ideal channel ⇒
        // the full BatchMetrics (not just the summary) match WindowedSim
        // draw for draw.
        for kind in AlgorithmKind::PAPER_SET {
            for trial in 0..3 {
                let n = 80;
                let noisy = run_once(NoisyConfig::fatal(kind), n, trial);
                let mut sim = WindowedSim::new(WindowedConfig::abstract_model(kind));
                let mut rng = trial_rng(experiment_tag("noisy-test"), kind, n, trial);
                let windowed = sim.run(n, &mut rng);
                assert_eq!(noisy, windowed, "{kind} trial {trial}");
            }
        }
    }

    #[test]
    fn sampled_path_matches_fast_path_bit_for_bit() {
        // The ideal channel draws nothing in either path, so forcing the
        // sampled (grouping) path must reproduce the occupancy fast path
        // exactly — same outcomes from the same RNG stream. This is what
        // makes the fast/sampled split purely a performance choice.
        for kind in AlgorithmKind::PAPER_SET {
            for trial in 0..3 {
                let n = 90;
                let config = NoisyConfig::fatal(kind);
                let mut rng = trial_rng(experiment_tag("noisy-paths"), kind, n, trial);
                let fast = NoisySim::new(config).run_inner(n, &mut rng, false);
                let mut rng = trial_rng(experiment_tag("noisy-paths"), kind, n, trial);
                let sampled = NoisySim::new(config).run_inner(n, &mut rng, true);
                assert_eq!(fast, sampled, "{kind} trial {trial}");
            }
        }
    }

    #[test]
    fn certain_recovery_finishes_faster_than_fatal() {
        // With p = 1 every collision still delivers a packet, so the batch
        // drains at least as fast as under fatal collisions, usually faster.
        let med = |channel: ChannelModel| -> u64 {
            let mut xs: Vec<u64> = (0..9)
                .map(|t| {
                    run_once(
                        NoisyConfig::abstract_model(AlgorithmKind::Beb, channel),
                        400,
                        t,
                    )
                    .cw_slots
                })
                .collect();
            xs.sort_unstable();
            xs[4]
        };
        let fatal = med(ChannelModel::ideal());
        let soft = med(ChannelModel::softened(1.0));
        assert!(soft < fatal, "softened {soft} should beat fatal {fatal}");
    }

    #[test]
    fn noise_slows_the_batch_down() {
        let med = |channel: ChannelModel| -> u64 {
            let mut xs: Vec<u64> = (0..9)
                .map(|t| {
                    run_once(
                        NoisyConfig::abstract_model(AlgorithmKind::Beb, channel),
                        200,
                        t,
                    )
                    .cw_slots
                })
                .collect();
            xs.sort_unstable();
            xs[4]
        };
        assert!(med(ChannelModel::noisy(0.4)) > med(ChannelModel::ideal()));
    }

    #[test]
    fn recovered_collisions_still_count_as_collisions() {
        let m = run_once(
            NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::softened(1.0)),
            50,
            1,
        );
        assert!(m.collisions > 0);
        // Every disjoint collision involves ≥ 2 participants…
        assert!(m.colliding_stations >= 2 * m.collisions);
        // …and with p = 1 exactly one participant per collision is rescued,
        // so failures = participants − collisions (no noise in this config).
        assert_eq!(m.total_ack_timeouts(), m.colliding_stations - m.collisions);
    }

    #[test]
    fn noise_failures_are_not_collisions() {
        // A lone station on a noisy channel fails repeatedly without a
        // single collision being recorded.
        let m = run_once(
            NoisyConfig::abstract_model(
                AlgorithmKind::Fixed { window: 4 },
                ChannelModel::noisy(0.7),
            ),
            1,
            0,
        );
        assert_eq!(m.successes, 1);
        assert_eq!(m.collisions, 0);
        assert_eq!(m.colliding_stations, 0);
        assert_eq!(m.total_ack_timeouts(), m.stations[0].ack_timeouts as u64);
    }

    #[test]
    fn max_windows_valve_truncates() {
        let mut config = NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::noisy(1.0));
        config.max_windows = 25;
        let m = run_once(config, 10, 0);
        // Full noise: nothing can ever succeed; the valve must stop the run.
        assert_eq!(m.successes, 0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let config = NoisyConfig::abstract_model(
            AlgorithmKind::Sawtooth,
            ChannelModel {
                recovery: Recovery::Geometric { base: 0.6 },
                noise: 0.1,
            },
        );
        let a = run_once(config, 120, 7);
        let b = run_once(config, 120, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_stations_is_a_noop() {
        let m = run_once(NoisyConfig::fatal(AlgorithmKind::Beb), 0, 0);
        assert_eq!(m.successes, 0);
        assert_eq!(m.cw_slots, 0);
    }

    #[test]
    #[should_panic(expected = "no static window schedule")]
    fn best_of_k_is_rejected() {
        let _ = NoisySim::new(NoisyConfig::fatal(AlgorithmKind::BestOfK { k: 3 }));
    }
}
