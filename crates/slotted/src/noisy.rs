//! Aligned-window execution over a noisy channel with softened collisions.
//!
//! Same window semantics as [`crate::windowed::WindowedSim`] (all stations
//! arrive at slot 0, windows are globally aligned, a failed station waits out
//! the window), but assumption A1 is replaced by a
//! [`ChannelModel`]: a slot carrying `k ≥ 2` transmissions still delivers one
//! of them with probability `p_recover(k)`, and any slot can be erased by
//! noise — the regime of *Softening the Impact of Collisions in Contention
//! Resolution* (arXiv:2408.11275).
//!
//! RNG discipline: each window first draws every alive station's slot (in
//! alive order), then resolves occupied slots in ascending slot order
//! through [`ChannelModel::sample_slot`]. Because the ideal channel samples
//! without consuming randomness, the `p = 0` / zero-noise configuration *is*
//! assumption A1 with the identical RNG stream — which is why
//! [`crate::windowed::WindowedSim`] is implemented as a delegation to this
//! loop over [`ChannelModel::ideal`], and why the workspace's
//! degenerate-equality regression tests can demand bit-identity.

use contention_core::algorithm::AlgorithmKind;
use contention_core::channel::{ChannelModel, SlotFate};
use contention_core::metrics::{BatchMetrics, StationMetrics};
use contention_core::rng::DrawBuffer;
use contention_core::schedule::{Schedule, Truncation, WindowSchedule};
use contention_core::time::Nanos;
use contention_sim::engine::Simulator;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration for one noisy-channel windowed run.
#[derive(Debug, Clone, Copy)]
pub struct NoisyConfig {
    /// Which backoff algorithm every station runs.
    pub algorithm: AlgorithmKind,
    /// Window clamping; unbounded by default to mirror the abstract model.
    pub truncation: Truncation,
    /// Slot duration used only to express `total_time = cw_slots × slot`.
    pub slot: Nanos,
    /// The channel: collision softening + per-slot noise.
    pub channel: ChannelModel,
    /// Safety valve: abort after this many windows (0 = no limit). Unlike
    /// the fatal-collision model, a noisy channel with `noise = 1` would
    /// never finish, so long-running noisy sweeps should set this.
    pub max_windows: u32,
}

impl NoisyConfig {
    /// Abstract-model geometry (unbounded windows, 9 µs slots) over an
    /// arbitrary channel.
    pub fn abstract_model(algorithm: AlgorithmKind, channel: ChannelModel) -> NoisyConfig {
        NoisyConfig {
            algorithm,
            truncation: Truncation::unbounded(),
            slot: Nanos::from_micros(9),
            channel,
            max_windows: 0,
        }
    }

    /// The degenerate configuration: ideal channel, i.e. exactly
    /// [`crate::windowed::WindowedConfig::abstract_model`] semantics.
    pub fn fatal(algorithm: AlgorithmKind) -> NoisyConfig {
        NoisyConfig::abstract_model(algorithm, ChannelModel::ideal())
    }
}

/// Slot-indexed buffers above this many entries are released at the end of
/// a trial (see [`NoisyScratch`]): a sharded sweep parks its workers for
/// long stretches, and one pathological (huge-window) trial must not pin
/// that window's high-water memory for the rest of the shard. 2²¹ entries
/// keeps every window the paper's grids produce allocation-free while
/// capping the retained slot state at 16 MB per worker.
const MAX_RETAINED_SLOT_ENTRIES: usize = 1 << 21;

/// Dense ideal windows track occupancy as plain `u32` counts up to this many
/// slots (an 8 KB, L1-resident table) and as `seen`/`dup` bitmaps above it.
/// Counts win at small widths, where the bitmaps' read-modify-write chains
/// pile onto a handful of words and serialize on store forwarding; bitmaps
/// win at large widths, where a count table would fall out of L1 but the
/// `width/8`-byte bitmaps never do.
const DENSE_COUNTS_MAX_SLOTS: usize = 2048;

/// Reusable per-worker buffers for the windowed loop: the epoch-stamped
/// occupancy counters and the per-window draw lists all keep their
/// high-water capacity from trial to trial (slot-indexed buffers up to
/// [`MAX_RETAINED_SLOT_ENTRIES`]). A fresh (`Default`) scratch behaves
/// identically — reuse may only move memory, never results.
#[derive(Default)]
pub struct NoisyScratch {
    /// Epoch-stamped per-slot state: `(epoch << 32) | first drawer`, or
    /// `(epoch << 32) | u32::MAX` once the slot collided. A stale epoch
    /// reads as empty, so neither window turnover nor buffer growth ever
    /// has to reset slots — the per-window touched-slot reset loop and the
    /// growth re-zeroing of the old `occupancy`/`counted` pair are gone.
    slot_state: Vec<u64>,
    /// The stamp of the current window. Persistent across trials (resetting
    /// it would alias stale stamps); on the 2³²-window wraparound the whole
    /// buffer is cleared once instead.
    epoch: u32,
    alive: Vec<u32>,
    /// Slot drawn by each alive station this window (alive order; the
    /// drawer of entry `i` is `alive[i]`, which compaction reads first).
    /// Power-of-two windows skip this buffer and re-derive slots from the
    /// raw words directly.
    slots: Vec<u32>,
    /// Per-station backoff-slot accumulators, station-indexed. The only
    /// per-station state the hot loop touches: `attempts`/`ack_timeouts`
    /// need no accumulator, because a station attempts every window until
    /// it exits by winning — both counts derive from its exit window.
    backoff: Vec<u64>,
    /// Success slots of a window that may cross the half-`n` target
    /// (unsorted; the crossing window selects its k-th smallest once).
    window_successes: Vec<u32>,
    /// Sampled path: `(slot << 32) | draw index`, grouped ascending — packed
    /// so plain `u64` order is exactly (slot, draw order).
    order: Vec<u64>,
    /// Sampled path, counting-sort group-by: scatter cursor per slot.
    slot_offsets: Vec<u32>,
    /// Dense ideal windows: slot-occupancy bitmaps (`seen` = drawn at least
    /// once, `dup` = drawn at least twice), `width/8` bytes each so they
    /// stay L1-resident at any dense width. Every per-window aggregate is
    /// a popcount over them: collided slots = |dup|, singleton slots =
    /// |seen| − |dup|, colliding stations = alive − singletons.
    seen: Vec<u64>,
    dup: Vec<u64>,
    /// Which draws won their slot, for the classify/compaction pass.
    won: Vec<bool>,
    /// Batched raw RNG words for the per-window draw pass.
    buf: DrawBuffer,
}

impl NoisyScratch {
    /// Releases slot-indexed buffers beyond [`MAX_RETAINED_SLOT_ENTRIES`];
    /// called at the end of every trial (a no-op for ordinary widths).
    fn shed_pathological_buffers(&mut self) {
        if self.slot_state.capacity() > MAX_RETAINED_SLOT_ENTRIES {
            self.slot_state.truncate(MAX_RETAINED_SLOT_ENTRIES);
            self.slot_state.shrink_to(MAX_RETAINED_SLOT_ENTRIES);
        }
        if self.slot_offsets.capacity() > MAX_RETAINED_SLOT_ENTRIES {
            self.slot_offsets.truncate(MAX_RETAINED_SLOT_ENTRIES);
            self.slot_offsets.shrink_to(MAX_RETAINED_SLOT_ENTRIES);
        }
        // The occupancy bitmaps hold width/64 entries, so the same entry cap
        // translates to 64×-wider windows; still worth shedding — one
        // 2³⁰-slot window would otherwise pin 2 × 16 MB of bitmap forever.
        if self.seen.capacity() > MAX_RETAINED_SLOT_ENTRIES {
            self.seen.truncate(MAX_RETAINED_SLOT_ENTRIES);
            self.seen.shrink_to(MAX_RETAINED_SLOT_ENTRIES);
        }
        if self.dup.capacity() > MAX_RETAINED_SLOT_ENTRIES {
            self.dup.truncate(MAX_RETAINED_SLOT_ENTRIES);
            self.dup.shrink_to(MAX_RETAINED_SLOT_ENTRIES);
        }
    }
}

/// The noisy-channel aligned-window simulator.
///
/// Two window-resolution paths share one loop: ideal channels (which sample
/// without randomness) classify slots with O(alive) occupancy counters —
/// the hot path every paper figure runs — while non-ideal channels group
/// same-slot draws by sorting and resolve each group through
/// [`ChannelModel::sample_slot`]. Both paths are outcome-identical for an
/// ideal channel (a unit test forces the sampled path and checks
/// bit-equality), so which one runs is purely a performance choice.
pub struct NoisySim {
    config: NoisyConfig,
    schedule: Schedule,
    scratch: NoisyScratch,
}

impl NoisySim {
    /// Builds a simulator; panics for algorithms without a static window
    /// schedule (BEST-OF-k belongs to the MAC simulator).
    pub fn new(config: NoisyConfig) -> NoisySim {
        NoisySim {
            config,
            schedule: noisy_schedule(&config),
            scratch: NoisyScratch::default(),
        }
    }

    /// Runs one single-batch trial of `n` stations.
    pub fn run<R: Rng>(&mut self, n: u32, rng: &mut R) -> BatchMetrics {
        self.run_inner(n, rng, false)
    }

    /// Runs one trial forcing the sampled (channel-grouping) resolution path
    /// even when the channel is ideal. Outcomes are bit-identical to
    /// [`run`](Self::run) — the fast/sampled split is purely a performance
    /// choice — which is exactly what the workspace's path-equality golden
    /// and proptests use this seam to demand.
    pub fn run_sampled<R: Rng>(&mut self, n: u32, rng: &mut R) -> BatchMetrics {
        self.run_inner(n, rng, true)
    }

    fn run_inner<R: Rng>(&mut self, n: u32, rng: &mut R, force_sampled: bool) -> BatchMetrics {
        self.schedule.reset();
        run_windows(
            &self.config,
            &mut self.schedule,
            &mut self.scratch,
            n,
            rng,
            force_sampled,
        )
    }
}

/// The schedule a config prescribes; panics for algorithms without one.
fn noisy_schedule(config: &NoisyConfig) -> Schedule {
    config
        .algorithm
        .schedule(config.truncation)
        .unwrap_or_else(|| {
            panic!(
                "{} has no static window schedule; use the MAC simulator",
                config.algorithm
            )
        })
}

/// The shared windowed loop over caller-owned scratch buffers. `schedule`
/// must be freshly built or reset.
///
/// Hot-path structure (every outcome bit-identical to the straightforward
/// loop it replaced — the windowed golden fixture and the path-equality
/// proptest pin this):
///
/// * **Batched RNG.** Each window prefetches exactly one raw word per alive
///   station into the scratch [`DrawBuffer`] and consumes them in alive
///   order, so the underlying word stream is unchanged (rejection
///   replacements continue the stream; width 1 consumes nothing).
/// * **Epoch-stamped occupancy** (ideal path + counting-sort group-by).
///   Slots carry `(epoch << 32) | count`; bumping the epoch retires a whole
///   window in O(1) instead of re-zeroing touched slots.
/// * **Sort-free success classification** (ideal path). Success ⟺ final
///   slot count 1, which is order-independent — as are every aggregate
///   except `half_cw_slots` (the k-th smallest success slot of the one
///   window crossing ⌈n/2⌉, selected once per trial) and `cw_slots` (the
///   max success slot of the final window). The per-window sort of
///   successes is gone.
/// * **Counting-sort group-by** (sampled path). When the window is at most
///   4× the alive set, same-slot groups are formed by prefix-summed
///   scatter in O(alive + width) instead of `sort_unstable`; wider windows
///   sort packed `(slot << 32) | index` keys, whose plain `u64` order is
///   exactly the old (slot, draw index) order.
/// * **Fused compaction.** Failures are written back into `alive` in
///   order during classification — no `done` table, no `retain` pass —
///   and per-station metrics are touched in alive order throughout.
/// * **Compact per-station accumulation.** The hot loop touches one `u64`
///   backoff accumulator per draw instead of the 40-byte
///   [`StationMetrics`]; `attempts` and `ack_timeouts` are derived once
///   per trial from each station's exit window (a station attempts every
///   window until it exits by winning, and every attempt except a final
///   winning one times out — true in both resolution paths).
/// * **Width-1 windows resolve arithmetically** on the ideal path: a slot-1
///   window consumes no RNG words and every alive station lands in slot 0,
///   so its outcome (all collide, or a lone station succeeds) needs no
///   draw, occupancy or classify work at all.
fn run_windows<R: Rng>(
    config: &NoisyConfig,
    schedule: &mut Schedule,
    scratch: &mut NoisyScratch,
    n: u32,
    rng: &mut R,
    force_sampled: bool,
) -> BatchMetrics {
    /// Collision accounting over a dense window's occupancy state, returned
    /// as `(collided slots, singleton slots)`: each slot with ≥ 2 drawers
    /// is one disjoint collision, and no per-slot participant tally is
    /// needed because participants across the window are simply
    /// `alive − singletons`. A zero singleton count additionally lets the
    /// caller skip classification outright (no winners means no metrics
    /// changes and no compaction) — the common case for every window with
    /// width ≪ alive. One sweep per occupancy representation:
    #[inline]
    fn count_sweep(counts: &[u32]) -> (u64, u64) {
        let mut collided_slots = 0u64;
        let mut singles = 0u64;
        for &c in counts {
            collided_slots += u64::from(c >= 2);
            singles += u64::from(c == 1);
        }
        (collided_slots, singles)
    }

    /// …and the popcount version over the `seen`/`dup` bitmaps:
    /// `(|dup|, |seen| − |dup|)`.
    #[inline]
    fn bitmap_sweep(seen: &[u64], dup: &[u64]) -> (u64, u64) {
        let mut occupied = 0u64;
        let mut collided_slots = 0u64;
        for (&s, &d) in seen.iter().zip(dup.iter()) {
            occupied += s.count_ones() as u64;
            collided_slots += d.count_ones() as u64;
        }
        (collided_slots, occupied - collided_slots)
    }

    /// Classify + compact one ideal-channel window in alive order: the
    /// drawer of entry `i` is `alive[i]`, still intact during the pass
    /// because compaction writes trail reads. Winners get their success
    /// time and attempt count (= this window's index — a station attempts
    /// every window until it exits by winning) stamped directly; failures
    /// are compacted back into `alive` and take their ACK timeout
    /// implicitly, reconstructed by the end-of-trial fold. Returns the
    /// window's maximum success slot (for the final window's `cw_slots`).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn classify_window(
        alive_n: usize,
        slot_of: impl Fn(usize) -> u32,
        is_success: impl Fn(usize, u32) -> bool,
        alive: &mut Vec<u32>,
        stations: &mut [StationMetrics],
        successes: &mut u32,
        window_successes: &mut Vec<u32>,
        crossing: bool,
        slots_before_window: u64,
        slot_len: Nanos,
        windows_run: u32,
    ) -> u32 {
        let mut kept = 0usize;
        let mut last_slot_max = 0u32;
        for i in 0..alive_n {
            let slot = slot_of(i);
            if is_success(i, slot) {
                *successes += 1;
                let s = &mut stations[alive[i] as usize];
                s.success_time = Some(slot_len * (slots_before_window + slot as u64 + 1));
                s.attempts = windows_run;
                last_slot_max = last_slot_max.max(slot);
                if crossing {
                    window_successes.push(slot);
                }
            } else {
                // A1 failure; under A2 the station learns it in-slot at
                // zero extra cost — the assumption under test.
                alive[kept] = alive[i];
                kept += 1;
            }
        }
        alive.truncate(kept);
        last_slot_max
    }

    let mut metrics = BatchMetrics {
        n,
        stations: vec![StationMetrics::default(); n as usize],
        ..BatchMetrics::default()
    };
    if n == 0 {
        return metrics;
    }

    let fast_path = config.channel.is_ideal() && !force_sampled;
    let half_target = n.div_ceil(2);
    let NoisyScratch {
        slot_state,
        epoch,
        alive,
        slots,
        backoff,
        window_successes,
        order,
        slot_offsets,
        seen,
        dup,
        won,
        buf,
    } = scratch;
    alive.clear();
    alive.extend(0..n);
    backoff.clear();
    backoff.resize(n as usize, 0);
    let mut slots_before_window: u64 = 0;
    let mut windows_run: u32 = 0;

    while !alive.is_empty() {
        if config.max_windows != 0 && windows_run >= config.max_windows {
            break;
        }
        windows_run += 1;
        let width = schedule.next_window();
        let span = width as u64;
        let wslots = width as usize;
        let alive_n = alive.len();
        // Width-bounded O(width) sweeps (a count reset, a collision scan, a
        // prefix sum) are worth buying while they stay within a small factor
        // of the draw count; both paths switch strategy on that boundary.
        let dense = wslots <= 4 * alive_n;
        let counting = !fast_path && dense;

        if fast_path && width == 1 {
            // Everyone is in slot 0 and no RNG word is consumed, so the
            // window resolves in O(1): a lone station succeeds there, two
            // or more all collide, add zero backoff and all stay alive —
            // no per-station work at all.
            if alive_n >= 2 {
                metrics.collisions += 1;
                metrics.colliding_stations += alive_n as u64;
            } else {
                let s = &mut metrics.stations[alive[0] as usize];
                let at_slot = slots_before_window + 1;
                s.success_time = Some(config.slot * at_slot);
                s.attempts = windows_run;
                metrics.successes += 1;
                if metrics.successes == half_target {
                    metrics.half_cw_slots = at_slot;
                }
                if metrics.successes == n {
                    metrics.cw_slots = at_slot;
                }
                alive.clear();
            }
            slots_before_window += 1;
            continue;
        }

        if (fast_path && !dense) || counting {
            // One epoch per window; stale stamps read as count 0, so there
            // is nothing to reset. On the (once per 2³² windows) wrap the
            // buffer is cleared instead, because stamp 0 becomes live again.
            *epoch = epoch.wrapping_add(1);
            if *epoch == 0 {
                slot_state.iter_mut().for_each(|s| *s = 0);
                *epoch = 1;
            }
            if slot_state.len() < wslots {
                // Fresh entries carry stamp 0 = stale, i.e. count 0: growth
                // needs no re-zeroing of previously grown regions either.
                slot_state.resize(wslots, 0);
            }
        }
        let stamp = (*epoch as u64) << 32;

        if fast_path {
            let prior = metrics.successes;
            let crossing = prior < half_target;
            window_successes.clear();
            let last_slot_max;

            if dense {
                // Dense windows — the collision-heavy early/mid windows that
                // carry most of a trial's draws. Occupancy is width-bounded:
                // plain `u32` counts reset by one memset while the table
                // fits in L1, first-seen/duplicate bitmaps past that (see
                // `DENSE_COUNTS_MAX_SLOTS`); either way every per-draw step
                // is branch-free, which beats cleverer schemes exactly where
                // slot occupancy makes branches unpredictable. Reuses
                // `slot_offsets` (the sampled path's scatter cursors; the
                // paths are exclusive).
                let use_counts = wslots <= DENSE_COUNTS_MAX_SLOTS;
                if use_counts {
                    slot_offsets.clear();
                    slot_offsets.resize(wslots, 0);
                } else {
                    let bm_words = wslots.div_ceil(64);
                    seen.clear();
                    seen.resize(bm_words, 0);
                    dup.clear();
                    dup.resize(bm_words, 0);
                }
                // Alive counts only ever shrink within a trial, so this
                // resize is a truncation (no refill) after the first window.
                slots.resize(alive_n, 0);
                if span.is_power_of_two() {
                    // Power-of-two spans reduce rejection-free
                    // (`word & mask`), so generation, backoff accumulation
                    // and occupancy fuse into one pass with no buffered
                    // round trip through memory; words are consumed in
                    // exactly generation order, so the stream is
                    // bit-identical to the buffered form. The generator's
                    // serial dependency chain leaves the ALU slack that
                    // hides the fused bookkeeping. Each variant is its own
                    // tight loop so no dead occupancy pointers stay live.
                    let mask = span - 1;
                    if alive_n == n as usize {
                        // Identity regime: no station has exited yet, so
                        // `alive[i] == i` and the indirection (with its
                        // bounds check) drops out — every window before
                        // the first success, i.e. most of a large batch's
                        // draws.
                        if use_counts {
                            for (b, s) in backoff.iter_mut().zip(slots.iter_mut()) {
                                let slot = (rng.next_u64() & mask) as u32;
                                *b += slot as u64;
                                *s = slot;
                                slot_offsets[slot as usize] += 1;
                            }
                        } else {
                            for (b, s) in backoff.iter_mut().zip(slots.iter_mut()) {
                                let slot = (rng.next_u64() & mask) as u32;
                                *b += slot as u64;
                                *s = slot;
                                let idx = (slot >> 6) as usize;
                                let bit = 1u64 << (slot & 63);
                                dup[idx] |= seen[idx] & bit;
                                seen[idx] |= bit;
                            }
                        }
                    } else if use_counts {
                        for (&station, s) in alive.iter().zip(slots.iter_mut()) {
                            let slot = (rng.next_u64() & mask) as u32;
                            backoff[station as usize] += slot as u64;
                            *s = slot;
                            slot_offsets[slot as usize] += 1;
                        }
                    } else {
                        for (&station, s) in alive.iter().zip(slots.iter_mut()) {
                            let slot = (rng.next_u64() & mask) as u32;
                            backoff[station as usize] += slot as u64;
                            *s = slot;
                            let idx = (slot >> 6) as usize;
                            let bit = 1u64 << (slot & 63);
                            dup[idx] |= seen[idx] & bit;
                            seen[idx] |= bit;
                        }
                    }
                } else {
                    // Non-power-of-two spans go through the zone-rejection
                    // reduction, batched through the draw buffer.
                    buf.prefill(rng, alive_n);
                    if use_counts {
                        for (&station, s) in alive.iter().zip(slots.iter_mut()) {
                            let slot = buf.uniform_below(rng, span) as u32;
                            backoff[station as usize] += slot as u64;
                            *s = slot;
                            slot_offsets[slot as usize] += 1;
                        }
                    } else {
                        for (&station, s) in alive.iter().zip(slots.iter_mut()) {
                            let slot = buf.uniform_below(rng, span) as u32;
                            backoff[station as usize] += slot as u64;
                            *s = slot;
                            let idx = (slot >> 6) as usize;
                            let bit = 1u64 << (slot & 63);
                            dup[idx] |= seen[idx] & bit;
                            seen[idx] |= bit;
                        }
                    }
                }
                let (collided_slots, singles) = if use_counts {
                    count_sweep(slot_offsets)
                } else {
                    bitmap_sweep(seen, dup)
                };
                metrics.collisions += collided_slots;
                metrics.colliding_stations += alive_n as u64 - singles;
                last_slot_max = if singles == 0 {
                    0
                } else if use_counts {
                    classify_window(
                        alive_n,
                        |i| slots[i],
                        |_, slot| slot_offsets[slot as usize] == 1,
                        alive,
                        &mut metrics.stations,
                        &mut metrics.successes,
                        window_successes,
                        crossing,
                        slots_before_window,
                        config.slot,
                        windows_run,
                    )
                } else {
                    classify_window(
                        alive_n,
                        |i| slots[i],
                        |_, slot| dup[(slot >> 6) as usize] & (1u64 << (slot & 63)) == 0,
                        alive,
                        &mut metrics.stations,
                        &mut metrics.successes,
                        window_successes,
                        crossing,
                        slots_before_window,
                        config.slot,
                        windows_run,
                    )
                };
            } else {
                // Sparse windows (width ≫ alive, the resolution tail):
                // epoch-stamped first-drawer entries. A slot records its
                // first drawer (`stamp | draw index`); the second arrival
                // demotes that drawer in the `won` bitmap and marks the slot
                // collided (`stamp | u32::MAX`) — one new disjoint collision
                // with two participants, every further arrival adding one.
                // The mostly-empty branch predicts well here, and no
                // width-bounded sweep ever runs.
                slots.clear();
                buf.prefill(rng, alive_n);
                won.clear();
                won.resize(alive_n, false);
                for (i, &station) in alive.iter().enumerate() {
                    let slot = buf.uniform_below(rng, span) as u32;
                    slots.push(slot);
                    backoff[station as usize] += slot as u64;
                    let entry = &mut slot_state[slot as usize];
                    let e = *entry;
                    if e < stamp {
                        *entry = stamp | i as u64;
                        won[i] = true;
                    } else {
                        let first = e as u32;
                        if first != u32::MAX {
                            won[first as usize] = false;
                            *entry = stamp | u32::MAX as u64;
                            metrics.collisions += 1;
                            metrics.colliding_stations += 2;
                        } else {
                            metrics.colliding_stations += 1;
                        }
                    }
                }
                last_slot_max = classify_window(
                    alive_n,
                    |i| slots[i],
                    |i, _| won[i],
                    alive,
                    &mut metrics.stations,
                    &mut metrics.successes,
                    window_successes,
                    crossing,
                    slots_before_window,
                    config.slot,
                    windows_run,
                );
            }

            if crossing && metrics.successes >= half_target {
                // The one window that crosses ⌈n/2⌉: the ⌈n/2⌉-th success
                // overall is the (⌈n/2⌉ − prior)-th smallest success slot
                // here (success slots are distinct singletons).
                let rank = (half_target - prior - 1) as usize;
                let (_, kth, _) = window_successes.select_nth_unstable(rank);
                metrics.half_cw_slots = slots_before_window + *kth as u64 + 1;
            }
            if metrics.successes == n {
                metrics.cw_slots = slots_before_window + last_slot_max as u64 + 1;
            }
        } else {
            // Sampled path: draw pass (batched words, sequential station
            // accumulators, occupancy counts when the counting-sort group-by
            // applies)…
            slots.clear();
            buf.prefill(rng, if width == 1 { 0 } else { alive_n });
            for &station in alive.iter() {
                let slot = buf.uniform_below(rng, span) as u32;
                slots.push(slot);
                backoff[station as usize] += slot as u64;
                if counting {
                    let entry = &mut slot_state[slot as usize];
                    *entry = if *entry >= stamp { *entry } else { stamp } + 1;
                }
            }

            // …then group same-slot draws in (slot, draw order) order.
            order.clear();
            if counting {
                // Prefix-summed scatter: O(alive + width), no comparisons.
                slot_offsets.clear();
                slot_offsets.reserve(wslots);
                let mut running = 0u32;
                for &entry in slot_state.iter().take(wslots) {
                    slot_offsets.push(running);
                    if entry >= stamp {
                        running += entry as u32;
                    }
                }
                order.resize(alive_n, 0);
                for (i, &slot) in slots.iter().enumerate() {
                    let cursor = &mut slot_offsets[slot as usize];
                    order[*cursor as usize] = ((slot as u64) << 32) | i as u64;
                    *cursor += 1;
                }
            } else {
                order.extend(
                    slots
                        .iter()
                        .enumerate()
                        .map(|(i, &slot)| ((slot as u64) << 32) | i as u64),
                );
                order.sort_unstable();
            }

            // Resolve each occupied slot through the channel in ascending
            // slot order (the RNG contract), recording winners; successes
            // arrive in slot order, so the half/full targets are direct.
            won.clear();
            won.resize(alive_n, false);
            let mut group_start = 0usize;
            while group_start < order.len() {
                let slot = (order[group_start] >> 32) as u32;
                let mut group_end = group_start + 1;
                while group_end < order.len() && (order[group_end] >> 32) as u32 == slot {
                    group_end += 1;
                }
                let k = (group_end - group_start) as u32;
                let fate = config.channel.sample_slot(k, rng);
                if k >= 2 {
                    metrics.collisions += 1;
                    metrics.colliding_stations += k as u64;
                }
                if let SlotFate::Delivered { winner } = fate {
                    let draw_idx = order[group_start + winner as usize] as u32 as usize;
                    won[draw_idx] = true;
                    let station = alive[draw_idx];
                    metrics.successes += 1;
                    let at_slot = slots_before_window + slot as u64 + 1;
                    let s = &mut metrics.stations[station as usize];
                    s.success_time = Some(config.slot * at_slot);
                    s.attempts = windows_run;
                    if metrics.successes == half_target {
                        metrics.half_cw_slots = at_slot;
                    }
                    if metrics.successes == n {
                        metrics.cw_slots = at_slot;
                    }
                }
                group_start = group_end;
            }

            // Compaction pass in alive order: losers (collision loss or
            // noise erasure — the station learns it in-slot under A2 and
            // waits out the window) stay alive; their ACK timeouts are
            // reconstructed by the end-of-trial fold.
            let mut kept = 0usize;
            for i in 0..alive_n {
                if !won[i] {
                    alive[kept] = alive[i];
                    kept += 1;
                }
            }
            alive.truncate(kept);
        }

        slots_before_window += width as u64;
    }

    if alive.is_empty() {
        metrics.total_time = config.slot * metrics.cw_slots;
    } else {
        // Valve-truncated: `cw_slots` never fired, but the run did consume
        // every window it opened — report that elapsed span rather than 0,
        // mirroring the MAC valve's `max_sim_time` exception.
        metrics.total_time = config.slot * slots_before_window;
    }
    metrics.half_time = config.slot * metrics.half_cw_slots;

    // Fold the backoff accumulators into the per-station table and derive
    // the attempt counts: a station attempts every window until it exits
    // by winning (winners had `attempts` stamped with their exit window at
    // the success site; survivors attempted them all), and every attempt
    // except a final winning one took an ACK timeout.
    for (station, &b) in backoff.iter().enumerate() {
        let s = &mut metrics.stations[station];
        s.backoff_slots = b;
        if s.success_time.is_some() {
            s.ack_timeouts = s.attempts - 1;
        } else {
            s.attempts = windows_run;
            s.ack_timeouts = windows_run;
        }
    }
    scratch.shed_pathological_buffers();
    metrics
}

/// Plugs the noisy-channel semantics into the generic sweep engine.
impl Simulator for NoisySim {
    type Config = NoisyConfig;
    type Output = BatchMetrics;
    const NAME: &'static str = "noisy";

    fn algorithm(config: &NoisyConfig) -> AlgorithmKind {
        config.algorithm
    }

    fn with_algorithm(config: &NoisyConfig, algorithm: AlgorithmKind) -> NoisyConfig {
        NoisyConfig {
            algorithm,
            ..*config
        }
    }

    type Scratch = NoisyScratch;

    fn run_with(
        config: &NoisyConfig,
        n: u32,
        rng: &mut SmallRng,
        scratch: &mut NoisyScratch,
    ) -> BatchMetrics {
        run_windows(config, &mut noisy_schedule(config), scratch, n, rng, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowed::{WindowedConfig, WindowedSim};
    use contention_core::channel::Recovery;
    use contention_core::rng::{experiment_tag, trial_rng};

    fn run_once(config: NoisyConfig, n: u32, trial: u32) -> BatchMetrics {
        let mut sim = NoisySim::new(config);
        let mut rng = trial_rng(experiment_tag("noisy-test"), config.algorithm, n, trial);
        sim.run(n, &mut rng)
    }

    #[test]
    fn all_packets_finish_with_softening() {
        for kind in AlgorithmKind::PAPER_SET {
            let m = run_once(
                NoisyConfig::abstract_model(kind, ChannelModel::softened(0.5)),
                100,
                0,
            );
            assert_eq!(m.successes, 100, "{kind}");
            assert!(m.stations.iter().all(|s| s.success_time.is_some()));
            assert!(m.attempts_balance(), "{kind}");
        }
    }

    #[test]
    fn degenerate_channel_replays_windowed_sim_exactly() {
        // The acceptance-criterion regression in miniature: ideal channel ⇒
        // the full BatchMetrics (not just the summary) match WindowedSim
        // draw for draw.
        for kind in AlgorithmKind::PAPER_SET {
            for trial in 0..3 {
                let n = 80;
                let noisy = run_once(NoisyConfig::fatal(kind), n, trial);
                let mut sim = WindowedSim::new(WindowedConfig::abstract_model(kind));
                let mut rng = trial_rng(experiment_tag("noisy-test"), kind, n, trial);
                let windowed = sim.run(n, &mut rng);
                assert_eq!(noisy, windowed, "{kind} trial {trial}");
            }
        }
    }

    #[test]
    fn sampled_path_matches_fast_path_bit_for_bit() {
        // The ideal channel draws nothing in either path, so forcing the
        // sampled (grouping) path must reproduce the occupancy fast path
        // exactly — same outcomes from the same RNG stream. This is what
        // makes the fast/sampled split purely a performance choice.
        for kind in AlgorithmKind::PAPER_SET {
            for trial in 0..3 {
                let n = 90;
                let config = NoisyConfig::fatal(kind);
                let mut rng = trial_rng(experiment_tag("noisy-paths"), kind, n, trial);
                let fast = NoisySim::new(config).run_inner(n, &mut rng, false);
                let mut rng = trial_rng(experiment_tag("noisy-paths"), kind, n, trial);
                let sampled = NoisySim::new(config).run_inner(n, &mut rng, true);
                assert_eq!(fast, sampled, "{kind} trial {trial}");
            }
        }
    }

    #[test]
    fn certain_recovery_finishes_faster_than_fatal() {
        // With p = 1 every collision still delivers a packet, so the batch
        // drains at least as fast as under fatal collisions, usually faster.
        let med = |channel: ChannelModel| -> u64 {
            let mut xs: Vec<u64> = (0..9)
                .map(|t| {
                    run_once(
                        NoisyConfig::abstract_model(AlgorithmKind::Beb, channel),
                        400,
                        t,
                    )
                    .cw_slots
                })
                .collect();
            xs.sort_unstable();
            xs[4]
        };
        let fatal = med(ChannelModel::ideal());
        let soft = med(ChannelModel::softened(1.0));
        assert!(soft < fatal, "softened {soft} should beat fatal {fatal}");
    }

    #[test]
    fn noise_slows_the_batch_down() {
        let med = |channel: ChannelModel| -> u64 {
            let mut xs: Vec<u64> = (0..9)
                .map(|t| {
                    run_once(
                        NoisyConfig::abstract_model(AlgorithmKind::Beb, channel),
                        200,
                        t,
                    )
                    .cw_slots
                })
                .collect();
            xs.sort_unstable();
            xs[4]
        };
        assert!(med(ChannelModel::noisy(0.4)) > med(ChannelModel::ideal()));
    }

    #[test]
    fn recovered_collisions_still_count_as_collisions() {
        let m = run_once(
            NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::softened(1.0)),
            50,
            1,
        );
        assert!(m.collisions > 0);
        // Every disjoint collision involves ≥ 2 participants…
        assert!(m.colliding_stations >= 2 * m.collisions);
        // …and with p = 1 exactly one participant per collision is rescued,
        // so failures = participants − collisions (no noise in this config).
        assert_eq!(m.total_ack_timeouts(), m.colliding_stations - m.collisions);
    }

    #[test]
    fn noise_failures_are_not_collisions() {
        // A lone station on a noisy channel fails repeatedly without a
        // single collision being recorded.
        let m = run_once(
            NoisyConfig::abstract_model(
                AlgorithmKind::Fixed { window: 4 },
                ChannelModel::noisy(0.7),
            ),
            1,
            0,
        );
        assert_eq!(m.successes, 1);
        assert_eq!(m.collisions, 0);
        assert_eq!(m.colliding_stations, 0);
        assert_eq!(m.total_ack_timeouts(), m.stations[0].ack_timeouts as u64);
    }

    #[test]
    fn max_windows_valve_truncates() {
        let mut config = NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::noisy(1.0));
        config.max_windows = 25;
        let m = run_once(config, 10, 0);
        // Full noise: nothing can ever succeed; the valve must stop the run.
        assert_eq!(m.successes, 0);
        // Stations attempted every window the valve allowed, timing out in
        // each one.
        assert!(m.stations.iter().all(|s| s.attempts == 25));
        assert!(m.stations.iter().all(|s| s.ack_timeouts == 25));
    }

    #[test]
    fn valve_truncation_reports_elapsed_slots() {
        // `cw_slots` never fires on a truncated run, but the run still
        // consumed every window it opened: unbounded BEB widths are
        // 1, 2, 4, …, so 25 windows span exactly 2²⁵ − 1 slots, and
        // `total_time` must report that span (× the 9 µs abstract slot)
        // rather than 0 — mirroring the MAC valve's `max_sim_time`
        // exception.
        let mut config = NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::noisy(1.0));
        config.max_windows = 25;
        let m = run_once(config, 10, 0);
        assert_eq!(m.cw_slots, 0);
        assert_eq!(m.total_time, Nanos::from_micros(9) * ((1u64 << 25) - 1));
        // An untruncated run keeps the completion-time identity.
        let m = run_once(
            NoisyConfig::abstract_model(AlgorithmKind::Beb, ChannelModel::ideal()),
            10,
            0,
        );
        assert_eq!(m.total_time, Nanos::from_micros(9) * m.cw_slots);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let config = NoisyConfig::abstract_model(
            AlgorithmKind::Sawtooth,
            ChannelModel {
                recovery: Recovery::Geometric { base: 0.6 },
                noise: 0.1,
            },
        );
        let a = run_once(config, 120, 7);
        let b = run_once(config, 120, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_stations_is_a_noop() {
        let m = run_once(NoisyConfig::fatal(AlgorithmKind::Beb), 0, 0);
        assert_eq!(m.successes, 0);
        assert_eq!(m.cw_slots, 0);
    }

    #[test]
    #[should_panic(expected = "no static window schedule")]
    fn best_of_k_is_rejected() {
        let _ = NoisySim::new(NoisyConfig::fatal(AlgorithmKind::BestOfK { k: 3 }));
    }
}
