//! # contention-slotted
//!
//! The abstract-model simulator: exactly the assumptions A0–A2 of §I-A and
//! nothing else.
//!
//! * **A0** — time is discrete slots, each able to hold one packet.
//! * **A1** — a slot with exactly one transmission succeeds; two or more
//!   collide and all fail.
//! * **A2** — every sender learns the outcome within the slot.
//!
//! This is the model in which the Table II guarantees are proved and is the
//! role the authors' "simple Java simulation" plays (Figures 5, 15, 16). Two
//! execution semantics are provided:
//!
//! * [`windowed::WindowedSim`] — the theory's semantics (Figure 2): globally
//!   aligned windows; a station picks one uniform slot per window and, on
//!   failure, waits out the window before the next (larger) one.
//! * [`residual::ResidualSim`] — 802.11-style residual timers in the same
//!   collision model: after each failure a station draws a fresh timer from
//!   its (grown) window and transmits when the countdown hits zero, with no
//!   alignment. This is the ablation separating *window semantics* from
//!   *collision cost* when comparing against the MAC simulator.
//! * [`noisy::NoisySim`] — windowed semantics with assumption A1 replaced by
//!   a [`contention_core::channel::ChannelModel`]: collisions of `k` senders
//!   are recovered with probability `p_recover(k)` and slots can be erased
//!   by noise (arXiv:2408.11275). With the ideal channel it replays
//!   `WindowedSim` bit for bit.
//!
//! Both report [`contention_core::metrics::BatchMetrics`]; `total_time` is
//! defined as `cw_slots × slot` — the total time the abstract model *thinks*
//! an execution takes, which is exactly the quantity the paper shows to be
//! misleading.

pub mod dynamic;
pub mod noisy;
pub mod residual;
pub mod windowed;

pub use dynamic::{
    ArrivalProcess, DynAxis, DynamicConfig, DynamicMetrics, DynamicScratch, DynamicSim,
};
pub use noisy::{NoisyConfig, NoisySim};
pub use residual::ResidualSim;
pub use windowed::WindowedSim;
