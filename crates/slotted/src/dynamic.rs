//! Dynamic (long-lived) traffic under a slotted channel with explicit
//! collision cost — the paper's §VIII question: *"Does this change when we
//! consider … long-lived bursty traffic?"*
//!
//! Packets arrive over time (see [`ArrivalProcess`]) and each runs its own
//! backoff schedule with residual timers. The channel is slotted, but —
//! unlike the pure A0–A2 model — a transmission *occupies* the channel for a
//! configurable number of slots:
//!
//! * `success_cost` slots for a successful transmission (data + SIFS + ACK
//!   in slot units), and
//! * `collision_cost` slots for a collision (data + ACK timeout in slot
//!   units — the §III-B cost that A2 prices at one slot).
//!
//! While the channel is occupied all backoff timers freeze, exactly like
//! DCF's carrier-sense freeze. Setting both costs to 1 recovers the abstract
//! model; setting them from [`contention_core::model::CostModel`] gives a
//! dynamic-traffic version of the paper's total-time accounting.
//!
//! Implementation notes (the heavy-traffic engine):
//!
//! * Timers are kept in *idle-slot coordinates* (a global clock that only
//!   ticks when the channel is free), so freezing is free: a busy period
//!   simply advances the wall clock without advancing the idle clock. An
//!   event due at idle-coordinate `x` fires at wall slot `x + busy_total`,
//!   where `busy_total` is the busy time accumulated before it — monotone
//!   because busy time only grows.
//! * Arrivals are **streamed** from a lazy inter-arrival generator (with its
//!   own RNG stream forked off the trial RNG), so memory never scales with
//!   `horizon × rate` — only with the instantaneous backlog. Streaming also
//!   fixes a semantic bug in the pre-streaming engine: that code ingested
//!   the *entire* arrival schedule on its first loop iteration (the heap was
//!   still empty, so the ingestion bound was `u64::MAX`) with
//!   `busy_total = 0`, which silently reinterpreted arrival times as
//!   idle-slot coordinates. Busy periods therefore postponed *arrivals*
//!   right along with the backoff timers — the offered load per idle slot
//!   never exceeded the offered load per wall slot, no matter how busy the
//!   channel was, and a packet's reported latency absorbed every busy slot
//!   accumulated between its arrival coordinate and its completion. With
//!   wall-time arrivals the channel really saturates: under 802.11g costs a
//!   sustained 39 % wall-time load is a multiple of that per *idle* slot,
//!   which is why collision-fragile schedules (SAWTOOTH in particular) now
//!   collapse under loads the old engine sailed through.
//! * Per-packet state is a slab entry of `{arrival_wall, backoff stage}`;
//!   window sizes come from a per-config [`WindowLookup`] table instead of a
//!   per-packet [`contention_core::schedule::Schedule`] value.
//! * Timers live in a calendar [`BucketQueue`] (2048 near-future buckets +
//!   an overflow heap), making push/pop O(1) amortized instead of the old
//!   global `BinaryHeap`'s O(log backlog).
//! * Latencies stream into a fixed-footprint
//!   [`contention_stats::histogram::LatencyHistogram`] — no per-packet
//!   latency vector, no end-of-trial sort.
//!
//! All reusable state lives in [`DynamicScratch`], threaded through
//! [`contention_sim::engine::Simulator::Scratch`], so steady-state trials
//! allocate nothing but their output.

use contention_core::algorithm::AlgorithmKind;
use contention_core::merge::MergeableAccumulator;
use contention_core::rng::DrawBuffer;
use contention_core::schedule::{Truncation, WindowSchedule};
use contention_sim::summary::TrialSummary;
use contention_stats::histogram::LatencyHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How packets arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Independent packets at `rate` packets per wall slot (Poisson).
    PoissonSingles { rate: f64 },
    /// Bursts of `size` simultaneous packets, burst instants Poisson at
    /// `rate` bursts per wall slot — the paper's bursty regime, repeated.
    PoissonBursts { rate: f64, size: u32 },
    /// One batch of `size` packets at slot 0 and nothing else — the
    /// single-batch drain problem of §III, embedded in the dynamic engine.
    SingleBatch { size: u32 },
    /// Sinusoidally modulated Poisson singles ("diurnal" load): instantaneous
    /// rate `mean_rate · (1 + amplitude · sin(2πt/period))`, sampled by
    /// thinning. `amplitude ∈ [0, 1]`, `period` in slots.
    Diurnal {
        mean_rate: f64,
        amplitude: f64,
        period: f64,
    },
    /// Bursts at Poisson instants with heavy-tailed (Pareto) sizes:
    /// `size = ⌊min_size · U^(−1/alpha)⌋` clamped to `[min_size, max_size]`.
    ParetoBursts {
        rate: f64,
        alpha: f64,
        min_size: u32,
        max_size: u32,
    },
}

impl ArrivalProcess {
    /// Stationary offered load in packets per wall slot.
    ///
    /// [`ArrivalProcess::SingleBatch`] has no stationary rate and returns 0;
    /// [`ArrivalProcess::ParetoBursts`] uses the analytic clamped-Pareto
    /// mean burst size (`min·α/(α−1)` capped at `max`, or `max` for α ≤ 1),
    /// which ignores the floor-discretization — close enough for display and
    /// load rescaling.
    pub fn offered_load(&self) -> f64 {
        match *self {
            ArrivalProcess::PoissonSingles { rate } => rate,
            ArrivalProcess::PoissonBursts { rate, size } => rate * size as f64,
            ArrivalProcess::SingleBatch { .. } => 0.0,
            ArrivalProcess::Diurnal { mean_rate, .. } => mean_rate,
            ArrivalProcess::ParetoBursts {
                rate,
                alpha,
                min_size,
                max_size,
            } => rate * pareto_mean_size(alpha, min_size, max_size),
        }
    }

    /// The same process shape rescaled so [`ArrivalProcess::offered_load`]
    /// equals `load` (packets per slot). Panics for
    /// [`ArrivalProcess::SingleBatch`], which has no rate to scale.
    pub fn with_offered_load(&self, load: f64) -> ArrivalProcess {
        assert!(load > 0.0, "offered load must be positive");
        match *self {
            ArrivalProcess::PoissonSingles { .. } => ArrivalProcess::PoissonSingles { rate: load },
            ArrivalProcess::PoissonBursts { size, .. } => ArrivalProcess::PoissonBursts {
                rate: load / size as f64,
                size,
            },
            ArrivalProcess::SingleBatch { .. } => {
                panic!("SingleBatch has no stationary rate to rescale")
            }
            ArrivalProcess::Diurnal {
                amplitude, period, ..
            } => ArrivalProcess::Diurnal {
                mean_rate: load,
                amplitude,
                period,
            },
            ArrivalProcess::ParetoBursts {
                alpha,
                min_size,
                max_size,
                ..
            } => ArrivalProcess::ParetoBursts {
                rate: load / pareto_mean_size(alpha, min_size, max_size),
                alpha,
                min_size,
                max_size,
            },
        }
    }
}

fn pareto_mean_size(alpha: f64, min_size: u32, max_size: u32) -> f64 {
    if alpha > 1.0 {
        (min_size as f64 * alpha / (alpha - 1.0)).min(max_size as f64)
    } else {
        max_size as f64
    }
}

/// What the sweep engine's `n` axis means for a dynamic run.
///
/// Dynamic traffic has no station count, so the grid axis is repurposed —
/// which lets dynamic experiments ride the same `GridMeta`/shard/checkpoint
/// machinery (and `trial_rng(_, _, n, trial)` stream derivation) as the
/// batch figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynAxis {
    /// `n` carries no meaning; sweeps use the legacy `ns: vec![0]` shape.
    Ignored,
    /// `n` selects the cost model: 0 = unit costs (the abstract A2 pricing),
    /// 1 = 802.11g costs for `payload_bytes`.
    CostPreset { payload_bytes: u32 },
    /// `n` is offered load in per-mille of the channel's success capacity
    /// (`1/success_cost` packets per slot): the arrival process is rescaled
    /// so its stationary rate is `(n/1000) / success_cost`. `n = 1000` is
    /// the saturation boundary; `n = 0` leaves the configured rate as-is.
    LoadPerMille,
}

/// Configuration of a dynamic-traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    pub algorithm: AlgorithmKind,
    pub truncation: Truncation,
    pub arrivals: ArrivalProcess,
    /// Wall slots during which arrivals occur; the run then drains (up to
    /// `drain_slots` more wall slots) so latecomers can finish.
    pub horizon_slots: u64,
    pub drain_slots: u64,
    /// Channel occupancy of a successful transmission, in slots (≥ 1).
    pub success_cost: u64,
    /// Channel occupancy of a collision, in slots (≥ 1).
    pub collision_cost: u64,
    /// How sweeps interpret the engine's `n` for this config.
    pub axis: DynAxis,
}

impl DynamicConfig {
    /// Pure abstract model: both costs are one slot.
    pub fn abstract_model(algorithm: AlgorithmKind, arrivals: ArrivalProcess) -> DynamicConfig {
        DynamicConfig {
            algorithm,
            truncation: Truncation::paper(),
            arrivals,
            horizon_slots: 50_000,
            drain_slots: 200_000,
            success_cost: 1,
            collision_cost: 1,
            axis: DynAxis::Ignored,
        }
    }

    /// Costs from the paper's 802.11g numbers for a given payload:
    /// success ≈ ⌈(DIFS + data + SIFS + ACK)/slot⌉, collision ≈
    /// ⌈(DIFS + data + ACK-timeout)/slot⌉.
    pub fn mac_costs(
        algorithm: AlgorithmKind,
        arrivals: ArrivalProcess,
        payload_bytes: u32,
    ) -> DynamicConfig {
        let (success_cost, collision_cost) = mac_cost_slots(payload_bytes);
        DynamicConfig {
            success_cost,
            collision_cost,
            ..DynamicConfig::abstract_model(algorithm, arrivals)
        }
    }

    /// The concrete config a sweep cell `(config, n)` runs, applying the
    /// [`DynAxis`] interpretation of `n`.
    pub fn resolve(&self, n: u32) -> DynamicConfig {
        match self.axis {
            DynAxis::Ignored => *self,
            DynAxis::CostPreset { payload_bytes } => {
                let (success_cost, collision_cost) = match n {
                    0 => (1, 1),
                    1 => mac_cost_slots(payload_bytes),
                    _ => panic!("CostPreset axis takes n ∈ {{0, 1}}, got {n}"),
                };
                DynamicConfig {
                    success_cost,
                    collision_cost,
                    ..*self
                }
            }
            DynAxis::LoadPerMille => {
                if n == 0 {
                    *self
                } else {
                    let load = (n as f64 / 1000.0) / self.success_cost as f64;
                    DynamicConfig {
                        arrivals: self.arrivals.with_offered_load(load),
                        ..*self
                    }
                }
            }
        }
    }

    /// Panics unless the config is runnable (the old `DynamicSim::new`
    /// asserts, factored out so sweeps validate once, not once per trial).
    fn validate(&self) {
        assert!(self.success_cost >= 1 && self.collision_cost >= 1);
        assert!(
            self.truncation.cw_min <= self.truncation.cw_max,
            "truncation must satisfy cw_min ≤ cw_max"
        );
        assert!(
            !matches!(self.algorithm, AlgorithmKind::BestOfK { .. }),
            "{} has no static window schedule",
            self.algorithm
        );
        match self.arrivals {
            ArrivalProcess::SingleBatch { size } => {
                assert!(size > 0, "batch size must be positive");
            }
            ArrivalProcess::Diurnal {
                amplitude, period, ..
            } => {
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "diurnal amplitude must be in [0, 1]"
                );
                assert!(period > 0.0, "diurnal period must be positive");
                assert!(
                    self.arrivals.offered_load() > 0.0,
                    "arrival rate must be positive"
                );
            }
            ArrivalProcess::ParetoBursts {
                alpha,
                min_size,
                max_size,
                ..
            } => {
                assert!(alpha > 0.0, "Pareto alpha must be positive");
                assert!(
                    min_size >= 1 && max_size >= min_size,
                    "Pareto burst sizes must satisfy 1 ≤ min ≤ max"
                );
                assert!(
                    self.arrivals.offered_load() > 0.0,
                    "arrival rate must be positive"
                );
            }
            _ => assert!(
                self.arrivals.offered_load() > 0.0,
                "arrival rate must be positive"
            ),
        }
    }
}

/// 802.11g per-transmission slot costs for a payload (shared by
/// [`DynamicConfig::mac_costs`] and the [`DynAxis::CostPreset`] axis).
fn mac_cost_slots(payload_bytes: u32) -> (u64, u64) {
    let phy = contention_core::params::Phy80211g::paper_defaults();
    let success = phy.difs + phy.success_exchange_time(payload_bytes);
    let collision = phy.difs + phy.collision_exchange_time(payload_bytes);
    let to_slots = |d: contention_core::time::Nanos| {
        contention_core::util::div_ceil_u64(d.as_nanos(), phy.slot.as_nanos()).max(1)
    };
    (to_slots(success), to_slots(collision))
}

/// Aggregate results of a dynamic run.
///
/// Latency statistics come from a log-bucketed [`LatencyHistogram`]: the
/// mean and max are exact, percentiles are nearest-rank with `< 1/64`
/// relative error (exact below 128 slots). Two metrics [`merge`] by
/// concatenation — counts and wall time add, histograms add bucket-wise —
/// so per-shard accumulations combine into exactly the single-process
/// result.
///
/// [`merge`]: MergeableAccumulator::merge
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicMetrics {
    /// Packets that arrived during the horizon.
    pub offered: u64,
    /// Packets that completed before the drain deadline.
    pub completed: u64,
    /// Wall slots the run covered (arrival horizon + drain actually used).
    pub wall_slots: u64,
    /// Disjoint collisions.
    pub collisions: u64,
    latency: LatencyHistogram,
}

impl DynamicMetrics {
    /// Fraction of offered packets that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Throughput: completed packets per wall slot.
    pub fn throughput(&self) -> f64 {
        if self.wall_slots == 0 {
            0.0
        } else {
            self.completed as f64 / self.wall_slots as f64
        }
    }

    /// Exact mean packet latency (arrival → end of successful exchange) in
    /// wall slots, over completed packets.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Median latency in wall slots (nearest rank).
    pub fn p50_latency(&self) -> f64 {
        self.latency.percentile(0.50) as f64
    }

    /// 95th-percentile latency in wall slots (nearest rank).
    pub fn p95_latency(&self) -> f64 {
        self.latency.percentile(0.95) as f64
    }

    /// 99th-percentile latency in wall slots (nearest rank).
    pub fn p99_latency(&self) -> f64 {
        self.latency.percentile(0.99) as f64
    }

    /// Largest observed latency (exact).
    pub fn max_latency(&self) -> u64 {
        self.latency.max()
    }

    /// The underlying latency histogram.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }
}

impl MergeableAccumulator for DynamicMetrics {
    fn merge(&mut self, other: Self) {
        self.offered += other.offered;
        self.completed += other.completed;
        self.wall_slots += other.wall_slots;
        self.collisions += other.collisions;
        self.latency.merge(&other.latency);
    }
}

impl From<DynamicMetrics> for TrialSummary {
    fn from(m: DynamicMetrics) -> TrialSummary {
        TrialSummary {
            n: 0,
            successes: m.completed.min(u32::MAX as u64) as u32,
            collisions: m.collisions as f64,
            offered: m.offered as f64,
            completion_rate: m.completion_rate(),
            wall_slots: m.wall_slots as f64,
            mean_latency_slots: m.mean_latency(),
            p50_latency_slots: m.p50_latency(),
            p95_latency_slots: m.p95_latency(),
            p99_latency_slots: m.p99_latency(),
            max_latency_slots: m.max_latency() as f64,
            throughput_pkts_per_slot: m.throughput(),
            ..TrialSummary::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Window lookup: AlgorithmKind → stage ↦ window size, without per-packet
// Schedule state.
// ---------------------------------------------------------------------------

/// Precomputed `stage ↦ window` map for one `(algorithm, truncation)`.
///
/// Every truncated schedule except POLYNOMIAL becomes eventually periodic:
/// the monotone schedules (BEB, LB, LLB, FIXED) end in a constant tail, and
/// SAWTOOTH cycles its saturated descent `CWmax, CWmax/2, …`. Those are
/// stored as a finite prefix plus repeating cycle, generated from the *real*
/// [`contention_core::schedule::Schedule`] so the emitted values are
/// bit-identical to walking a per-packet schedule. POLYNOMIAL grows without
/// a short period, but is a closed form — evaluated directly.
#[derive(Debug, Clone)]
enum WindowLookup {
    Poly {
        degree: u32,
        trunc: Truncation,
    },
    Table {
        prefix: Box<[u32]>,
        cycle: Box<[u32]>,
    },
}

impl WindowLookup {
    fn build(kind: AlgorithmKind, trunc: Truncation) -> WindowLookup {
        assert!(trunc.cw_min <= trunc.cw_max);
        match kind {
            AlgorithmKind::Polynomial { degree } => WindowLookup::Poly { degree, trunc },
            AlgorithmKind::Fixed { .. } => {
                let mut s = kind.schedule(trunc).expect("fixed has a schedule");
                WindowLookup::Table {
                    prefix: Box::new([]),
                    cycle: vec![s.next_window()].into_boxed_slice(),
                }
            }
            AlgorithmKind::Beb
            | AlgorithmKind::LogBackoff
            | AlgorithmKind::LogLogBackoff
            | AlgorithmKind::Sawtooth => {
                let mut s = kind.schedule(trunc).expect("windowed schedule");
                // The clamped emission once growth saturates; every one of
                // these schedules reaches it (BEB/LB/LLB grow strictly until
                // the clamp, SAWTOOTH's outer window doubles to CWmax).
                let top = trunc.cw_max;
                let mut emitted: Vec<u32> = Vec::new();
                let mut first_top: Option<usize> = None;
                loop {
                    let w = s.next_window();
                    if w == top {
                        if let Some(i0) = first_top {
                            let cycle = emitted.split_off(i0);
                            return WindowLookup::Table {
                                prefix: emitted.into_boxed_slice(),
                                cycle: cycle.into_boxed_slice(),
                            };
                        }
                        first_top = Some(emitted.len());
                    }
                    emitted.push(w);
                    assert!(
                        emitted.len() <= 100_000,
                        "{kind:?} did not saturate within 100k windows"
                    );
                }
            }
            AlgorithmKind::BestOfK { .. } => {
                unreachable!("rejected by DynamicConfig::validate")
            }
        }
    }

    /// Window size for the `stage`-th transmission attempt (stage 0 = the
    /// arrival draw). Matches `Schedule::next_window()` call `stage + 1`.
    #[inline]
    fn window(&self, stage: u32) -> u32 {
        match self {
            WindowLookup::Poly { degree, trunc } => {
                let base = (stage as u64 + 1).saturating_pow((*degree).max(1));
                trunc.clamp(base.min(u32::MAX as u64) as u32)
            }
            WindowLookup::Table { prefix, cycle } => {
                let i = stage as usize;
                if i < prefix.len() {
                    prefix[i]
                } else {
                    cycle[(i - prefix.len()) % cycle.len()]
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Calendar bucket queue over idle-slot coordinates.
// ---------------------------------------------------------------------------

const RING_BITS: u32 = 11;
/// Near-future window: coordinates in `[base, base + RING)` go into ring
/// buckets (the paper's CWmax = 1024 redraws always land here); farther
/// timers wait in an overflow heap and are promoted as `base` advances.
const RING: u64 = 1 << RING_BITS;
const RING_WORDS: usize = (RING as usize) / 64;

/// Calendar queue of `(idle-coordinate, packet id)` timers.
///
/// O(1) amortized push and pop-min: a 2048-slot ring of buckets indexed by
/// `coord mod RING` with an occupancy bitmap for constant-time min scans,
/// plus a `BinaryHeap` for coordinates beyond the ring window. Entries at
/// the same coordinate pop as one group, in push order (deterministic).
#[derive(Debug)]
struct BucketQueue {
    ring: Vec<Vec<u32>>,
    occupied: [u64; RING_WORDS],
    /// Smallest coordinate the ring can currently hold; all live entries
    /// have coordinates ≥ `base`.
    base: u64,
    ring_len: usize,
    len: usize,
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
}

impl Default for BucketQueue {
    fn default() -> Self {
        BucketQueue {
            ring: (0..RING).map(|_| Vec::new()).collect(),
            occupied: [0; RING_WORDS],
            base: 0,
            ring_len: 0,
            len: 0,
            overflow: BinaryHeap::new(),
        }
    }
}

impl BucketQueue {
    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset to empty, retaining every allocation.
    fn clear(&mut self) {
        for w in 0..RING_WORDS {
            let mut bits = self.occupied[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                self.ring[w * 64 + b].clear();
                bits &= bits - 1;
            }
            self.occupied[w] = 0;
        }
        self.base = 0;
        self.ring_len = 0;
        self.len = 0;
        self.overflow.clear();
    }

    #[inline]
    fn push(&mut self, coord: u64, id: u32) {
        debug_assert!(coord >= self.base, "cannot schedule into the past");
        if coord - self.base < RING {
            let i = (coord % RING) as usize;
            self.ring[i].push(id);
            self.occupied[i / 64] |= 1u64 << (i % 64);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((coord, id)));
        }
        self.len += 1;
    }

    /// Smallest live coordinate, if any.
    fn peek(&self) -> Option<u64> {
        let ring = self.next_ring_coord();
        let over = self.overflow.peek().map(|&Reverse((c, _))| c);
        match (ring, over) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops every entry at the minimum coordinate into `group` (appended in
    /// push order) and returns that coordinate.
    fn pop_group(&mut self, group: &mut Vec<u32>) -> Option<u64> {
        let target = self.peek()?;
        if target >= self.base + RING {
            // Only reachable with an empty ring: jump the window forward.
            debug_assert_eq!(self.ring_len, 0);
            self.base = target;
        }
        // Promote overflow timers that now fall inside the ring window.
        while let Some(&Reverse((c, id))) = self.overflow.peek() {
            if c - self.base >= RING {
                break;
            }
            self.overflow.pop();
            let i = (c % RING) as usize;
            self.ring[i].push(id);
            self.occupied[i / 64] |= 1u64 << (i % 64);
            self.ring_len += 1;
        }
        let x = self.next_ring_coord().expect("nonempty after promotion");
        debug_assert_eq!(x, target);
        let i = (x % RING) as usize;
        let count = self.ring[i].len();
        group.append(&mut self.ring[i]);
        self.occupied[i / 64] &= !(1u64 << (i % 64));
        self.ring_len -= count;
        self.len -= count;
        self.base = x + 1;
        Some(x)
    }

    /// Smallest coordinate present in the ring (bitmap scan from `base`).
    fn next_ring_coord(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let start = (self.base % RING) as usize;
        let (w0, b0) = (start / 64, start % 64);
        let mut word = self.occupied[w0] & (u64::MAX << b0);
        let mut wi = w0;
        for _ in 0..=RING_WORDS {
            if word != 0 {
                let bit = wi * 64 + word.trailing_zeros() as usize;
                let delta = (bit + RING as usize - start) % RING as usize;
                return Some(self.base + delta as u64);
            }
            wi = (wi + 1) % RING_WORDS;
            word = self.occupied[wi];
            if wi == w0 {
                // Wrapped all the way around: only the bits below the
                // starting offset remain unexamined.
                word &= !(u64::MAX << b0);
            }
        }
        unreachable!("ring_len > 0 but no occupied bucket")
    }
}

// ---------------------------------------------------------------------------
// Streaming arrival generation.
// ---------------------------------------------------------------------------

/// Lazy arrival stream: yields `(wall slot, packet count)` batches in
/// nondecreasing wall order until the horizon, drawing from its own RNG so
/// the arrival sequence is independent of event-loop draw interleaving.
struct ArrivalGen {
    process: ArrivalProcess,
    horizon: f64,
    rng: SmallRng,
    t: f64,
    done: bool,
}

impl ArrivalGen {
    fn new(process: ArrivalProcess, horizon_slots: u64, rng: SmallRng) -> ArrivalGen {
        ArrivalGen {
            process,
            horizon: horizon_slots as f64,
            rng,
            t: 0.0,
            done: false,
        }
    }

    fn next(&mut self) -> Option<(u64, u32)> {
        if self.done {
            return None;
        }
        let batch = match self.process {
            ArrivalProcess::PoissonSingles { rate } => self.poisson_step(rate).map(|w| (w, 1)),
            ArrivalProcess::PoissonBursts { rate, size } => {
                self.poisson_step(rate).map(|w| (w, size))
            }
            ArrivalProcess::SingleBatch { size } => {
                self.done = true;
                return Some((0, size));
            }
            ArrivalProcess::Diurnal {
                mean_rate,
                amplitude,
                period,
            } => loop {
                // Thinning: sample at the peak rate, accept proportionally.
                let peak = mean_rate * (1.0 + amplitude);
                let Some(w) = self.poisson_step(peak) else {
                    break None;
                };
                let instantaneous =
                    1.0 + amplitude * (2.0 * std::f64::consts::PI * self.t / period).sin();
                let accept = instantaneous / (1.0 + amplitude);
                if self.rng.gen_range(0.0..1.0) < accept {
                    break Some((w, 1));
                }
            },
            ArrivalProcess::ParetoBursts {
                rate,
                alpha,
                min_size,
                max_size,
            } => self.poisson_step(rate).map(|w| {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let raw = (min_size as f64 * u.powf(-1.0 / alpha)).floor();
                let size = if raw >= max_size as f64 {
                    max_size
                } else {
                    (raw as u32).max(min_size)
                };
                (w, size)
            }),
        };
        if batch.is_none() {
            self.done = true;
        }
        batch
    }

    /// Advances the exponential clock; `None` once past the horizon.
    fn poisson_step(&mut self, rate: f64) -> Option<u64> {
        self.t += exp_sample(&mut self.rng, rate);
        if self.t >= self.horizon {
            None
        } else {
            Some(self.t as u64)
        }
    }

    /// Counts the packets remaining in the stream (after the deadline cut).
    fn drain_count(&mut self) -> u64 {
        let mut total = 0u64;
        while let Some((_, count)) = self.next() {
            total += count as u64;
        }
        total
    }
}

/// Exponential inter-arrival sample with the given rate (events per slot).
fn exp_sample<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct PacketSlot {
    arrival_wall: u64,
    /// Backoff stage: how many windows this packet has drawn so far minus
    /// one (stage s draws from `WindowLookup::window(s)`).
    stage: u32,
    /// Free-list link when the slot is vacant.
    next_free: u32,
}

/// Reusable per-worker state for dynamic trials: the packet slab (bounded by
/// the instantaneous backlog, not by total arrivals), the calendar queue,
/// the latency histogram, and the cached per-config window table.
#[derive(Default)]
pub struct DynamicScratch {
    state: DynState,
    plan: Option<CachedPlan>,
}

#[derive(Default)]
struct DynState {
    slab: Vec<PacketSlot>,
    free_head: Option<u32>,
    queue: BucketQueue,
    group: Vec<u32>,
    hist: LatencyHistogram,
    draws: DrawBuffer,
}

/// Validation + window-table construction, done once per `(config, n)` cell
/// instead of once per trial (the old `DynamicSim::new(*config)`-per-trial
/// hot-path cost).
struct CachedPlan {
    config: DynamicConfig,
    n: u32,
    resolved: DynamicConfig,
    lookup: WindowLookup,
}

/// The dynamic-traffic simulator (direct API).
///
/// Runs the config exactly as given — the [`DynAxis`] interpretation of `n`
/// only applies when driven through the sweep engine.
pub struct DynamicSim {
    config: DynamicConfig,
    lookup: WindowLookup,
    state: DynState,
}

impl DynamicSim {
    pub fn new(config: DynamicConfig) -> DynamicSim {
        config.validate();
        DynamicSim {
            config,
            lookup: WindowLookup::build(config.algorithm, config.truncation),
            state: DynState::default(),
        }
    }

    /// Runs one trial.
    pub fn run<R: Rng>(&mut self, rng: &mut R) -> DynamicMetrics {
        run_streaming(&self.config, &self.lookup, &mut self.state, rng)
    }
}

fn run_streaming<R: Rng>(
    cfg: &DynamicConfig,
    lookup: &WindowLookup,
    state: &mut DynState,
    rng: &mut R,
) -> DynamicMetrics {
    let DynState {
        slab,
        free_head,
        queue,
        group,
        hist,
        draws,
    } = state;
    slab.clear();
    *free_head = None;
    queue.clear();
    group.clear();
    hist.clear();

    // Arrivals stream from their own generator, forked off the trial RNG up
    // front: the arrival sequence for a seed is fixed regardless of how many
    // timer draws the event loop interleaves (so e.g. unit-cost and
    // MAC-cost runs of one seed see identical traffic).
    let arrival_rng = SmallRng::seed_from_u64(rng.next_u64());
    let mut gen = ArrivalGen::new(cfg.arrivals, cfg.horizon_slots, arrival_rng);
    let mut pending = gen.next();

    let deadline = cfg.horizon_slots + cfg.drain_slots;
    let mut busy_total: u64 = 0;
    let mut last_idle: u64 = 0;
    let mut wall_now: u64 = 0;
    let mut offered: u64 = 0;
    let mut collisions: u64 = 0;
    let w0 = lookup.window(0) as u64;

    loop {
        // Ingest every arrival batch due before the next transmission event
        // (all of them if no timer is pending).
        while let Some((wall, count)) = pending {
            let next_event_wall = match queue.peek() {
                Some(x) => x + busy_total,
                None => u64::MAX,
            };
            if wall > next_event_wall {
                break;
            }
            pending = gen.next();
            offered += count as u64;
            // A packet arriving during a busy period starts counting at the
            // end of that period; its idle coordinate floor is the current
            // idle clock.
            let idle_coord = wall.saturating_sub(busy_total).max(last_idle);
            for _ in 0..count {
                let id = alloc_slot(slab, free_head, wall);
                let timer = draws.uniform_below(rng, w0);
                queue.push(idle_coord + timer, id);
            }
        }

        let Some(x) = queue.peek() else {
            break; // Everything completed.
        };
        wall_now = x + busy_total;
        if wall_now > deadline {
            break; // Drain deadline: whatever is left is incomplete.
        }
        group.clear();
        queue.pop_group(group);
        last_idle = x + 1;
        if group.len() == 1 {
            let id = group[0];
            busy_total += cfg.success_cost - 1;
            // Success is observed at the end of the exchange.
            let done_wall = wall_now + cfg.success_cost - 1;
            hist.record(done_wall - slab[id as usize].arrival_wall);
            free_slot(slab, free_head, id);
        } else {
            collisions += 1;
            busy_total += cfg.collision_cost - 1;
            for &id in group.iter() {
                let slot = &mut slab[id as usize];
                slot.stage = slot.stage.saturating_add(1);
                let w = lookup.window(slot.stage) as u64;
                let timer = draws.uniform_below(rng, w);
                queue.push(x + 1 + timer, id);
            }
        }
    }

    // Packets the loop never ingested still arrived within the horizon.
    if let Some((_, count)) = pending {
        offered += count as u64;
    }
    offered += gen.drain_count();

    DynamicMetrics {
        offered,
        completed: hist.count(),
        wall_slots: wall_now.max(cfg.horizon_slots),
        collisions,
        latency: hist.clone(),
    }
}

#[inline]
fn alloc_slot(slab: &mut Vec<PacketSlot>, free_head: &mut Option<u32>, arrival_wall: u64) -> u32 {
    match *free_head {
        Some(id) => {
            let slot = &mut slab[id as usize];
            *free_head = (slot.next_free != NO_SLOT).then_some(slot.next_free);
            slot.arrival_wall = arrival_wall;
            slot.stage = 0;
            slot.next_free = NO_SLOT;
            id
        }
        None => {
            let id = slab.len() as u32;
            slab.push(PacketSlot {
                arrival_wall,
                stage: 0,
                next_free: NO_SLOT,
            });
            id
        }
    }
}

#[inline]
fn free_slot(slab: &mut [PacketSlot], free_head: &mut Option<u32>, id: u32) {
    slab[id as usize].next_free = free_head.unwrap_or(NO_SLOT);
    *free_head = Some(id);
}

/// Plugs the dynamic-traffic simulator into the generic sweep engine.
///
/// A dynamic run has no batch size, so the engine's `n` is reinterpreted per
/// [`DynamicConfig::axis`] ([`DynAxis::Ignored`] keeps the legacy
/// `ns: vec![0]` convention; the `dynamic` figure sweeps cost models and the
/// `saturation` experiment sweeps offered load through the same axis).
impl contention_sim::engine::Simulator for DynamicSim {
    type Config = DynamicConfig;
    type Output = DynamicMetrics;
    type Scratch = DynamicScratch;
    const NAME: &'static str = "dynamic";

    fn algorithm(config: &DynamicConfig) -> AlgorithmKind {
        config.algorithm
    }

    fn with_algorithm(config: &DynamicConfig, algorithm: AlgorithmKind) -> DynamicConfig {
        DynamicConfig {
            algorithm,
            ..*config
        }
    }

    fn run_with(
        config: &DynamicConfig,
        n: u32,
        rng: &mut SmallRng,
        scratch: &mut DynamicScratch,
    ) -> DynamicMetrics {
        let stale = match &scratch.plan {
            Some(plan) => plan.config != *config || plan.n != n,
            None => true,
        };
        if stale {
            config.validate();
            let resolved = config.resolve(n);
            resolved.validate();
            scratch.plan = Some(CachedPlan {
                config: *config,
                n,
                lookup: WindowLookup::build(resolved.algorithm, resolved.truncation),
                resolved,
            });
        }
        let plan = scratch.plan.as_ref().expect("plan just cached");
        run_streaming(&plan.resolved, &plan.lookup, &mut scratch.state, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_core::rng::{experiment_tag, trial_rng};
    use contention_sim::engine::Simulator;
    use rand::RngCore;

    fn run(config: DynamicConfig, trial: u32) -> DynamicMetrics {
        let mut sim = DynamicSim::new(config);
        let mut rng = trial_rng(experiment_tag("dynamic-test"), config.algorithm, 0, trial);
        sim.run(&mut rng)
    }

    #[test]
    fn light_singles_all_complete_quickly() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonSingles { rate: 0.01 },
        );
        let m = run(config, 0);
        assert!(m.offered > 100, "horizon should see arrivals: {m:?}");
        assert_eq!(m.completed, m.offered, "{m:?}");
        // At 1% load packets rarely meet: latency stays tiny.
        assert!(m.mean_latency() < 10.0, "{m:?}");
    }

    #[test]
    fn offered_load_accounts_bursts() {
        let p = ArrivalProcess::PoissonBursts {
            rate: 0.001,
            size: 50,
        };
        assert!((p.offered_load() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn overload_fails_to_complete() {
        // Offered load 2 packets/slot with unit costs cannot all clear.
        let mut config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonSingles { rate: 2.0 },
        );
        config.horizon_slots = 5_000;
        config.drain_slots = 5_000;
        let m = run(config, 0);
        assert!(m.completion_rate() < 0.9, "{m:?}");
    }

    #[test]
    fn collision_cost_slows_completion() {
        let arrivals = ArrivalProcess::PoissonBursts {
            rate: 0.0005,
            size: 40,
        };
        let cheap = run(
            DynamicConfig::abstract_model(AlgorithmKind::LogBackoff, arrivals),
            1,
        );
        let pricey = run(
            DynamicConfig {
                collision_cost: 13,
                success_cost: 13,
                ..DynamicConfig::abstract_model(AlgorithmKind::LogBackoff, arrivals)
            },
            1,
        );
        // The arrival stream is forked off the trial RNG before any timer
        // draw, so a seed's traffic is identical across cost models.
        assert_eq!(cheap.offered, pricey.offered, "same seed, same arrivals");
        assert!(
            pricey.mean_latency() > cheap.mean_latency(),
            "cheap {cheap:?} vs pricey {pricey:?}"
        );
    }

    #[test]
    fn mac_costs_match_phy_arithmetic() {
        let config = DynamicConfig::mac_costs(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonSingles { rate: 0.001 },
            64,
        );
        // DIFS 34 + data 38.96 + SIFS 16 + ACK 22.07 ≈ 111 µs → 13 slots;
        // DIFS 34 + data 38.96 + timeout 75 ≈ 148 µs → 17 slots.
        assert_eq!(config.success_cost, 13);
        assert_eq!(config.collision_cost, 17);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::Sawtooth,
            ArrivalProcess::PoissonBursts {
                rate: 0.001,
                size: 20,
            },
        );
        assert_eq!(run(config, 3), run(config, 3));
        assert_ne!(run(config, 3), run(config, 4));
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonBursts {
                rate: 0.0008,
                size: 30,
            },
        );
        let m = run(config, 5);
        // p95 is a bucket lower bound (< 1/64 relative error), so allow the
        // mean that tiny slack.
        assert!(
            m.mean_latency() <= m.p95_latency() * (1.0 + 1.0 / 64.0) + 1e-9,
            "{m:?}"
        );
        assert!(m.p50_latency() <= m.p95_latency(), "{m:?}");
        assert!(m.p95_latency() <= m.p99_latency(), "{m:?}");
        assert!(m.p99_latency() <= m.max_latency() as f64, "{m:?}");
    }

    #[test]
    #[should_panic(expected = "no static window schedule")]
    fn best_of_k_rejected() {
        let _ = DynamicSim::new(DynamicConfig::abstract_model(
            AlgorithmKind::BestOfK { k: 3 },
            ArrivalProcess::PoissonSingles { rate: 0.1 },
        ));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = DynamicSim::new(DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonSingles { rate: 0.0 },
        ));
    }

    #[test]
    fn window_lookup_matches_schedule_everywhere() {
        let truncations = [
            Truncation::paper(),
            Truncation {
                cw_min: 1,
                cw_max: 8,
            },
            Truncation {
                cw_min: 2,
                cw_max: 100,
            },
            Truncation {
                cw_min: 16,
                cw_max: 1000, // non-power-of-two CWmax: the gnarly sawtooth
            },
            Truncation {
                cw_min: 64,
                cw_max: 64,
            },
            Truncation::unbounded(),
        ];
        let kinds = [
            AlgorithmKind::Beb,
            AlgorithmKind::LogBackoff,
            AlgorithmKind::LogLogBackoff,
            AlgorithmKind::Sawtooth,
            AlgorithmKind::Fixed { window: 37 },
            AlgorithmKind::Fixed { window: 100_000 },
            AlgorithmKind::Polynomial { degree: 1 },
            AlgorithmKind::Polynomial { degree: 2 },
            AlgorithmKind::Polynomial { degree: 3 },
        ];
        for trunc in truncations {
            for kind in kinds {
                let lookup = WindowLookup::build(kind, trunc);
                let mut sched = kind.schedule(trunc).expect("windowed");
                for stage in 0..3000u32 {
                    assert_eq!(
                        lookup.window(stage),
                        sched.next_window(),
                        "{kind:?} {trunc:?} stage {stage}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_queue_pops_in_coordinate_order_with_push_order_groups() {
        let mut q = BucketQueue::default();
        // Mix near-future, same-coordinate, and far-overflow pushes.
        q.push(5, 1);
        q.push(3, 2);
        q.push(5, 3);
        q.push(RING + 10_000, 4); // overflow
        q.push(3, 5);
        let mut group = Vec::new();
        assert_eq!(q.pop_group(&mut group), Some(3));
        assert_eq!(group, vec![2, 5]);
        group.clear();
        assert_eq!(q.pop_group(&mut group), Some(5));
        assert_eq!(group, vec![1, 3]);
        group.clear();
        // Ring now empty: base must jump to the overflow entry.
        assert_eq!(q.pop_group(&mut group), Some(RING + 10_000));
        assert_eq!(group, vec![4]);
        group.clear();
        assert_eq!(q.pop_group(&mut group), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_queue_matches_binary_heap_reference() {
        let mut rng = trial_rng(experiment_tag("bucket-queue"), AlgorithmKind::Beb, 0, 0);
        let mut q = BucketQueue::default();
        let mut reference: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut cursor = 0u64; // monotone pop frontier, as in the sim
        let mut next_id = 0u32;
        for _ in 0..2_000 {
            // A few pushes ahead of the frontier (some far into overflow)...
            for _ in 0..(rng.next_u32() % 4) {
                let gap = if rng.next_u32().is_multiple_of(10) {
                    RING + rng.next_u64() % 100_000
                } else {
                    rng.next_u64() % 1024
                };
                q.push(cursor + gap, next_id);
                reference.push(Reverse((cursor + gap, next_id)));
                next_id += 1;
            }
            // ...then drain one coordinate group from each and compare.
            let mut group = Vec::new();
            let got = q.pop_group(&mut group);
            let want = reference.peek().map(|&Reverse((c, _))| c);
            assert_eq!(got, want);
            let Some(x) = got else { continue };
            let mut ref_group = Vec::new();
            while let Some(&Reverse((c, id))) = reference.peek() {
                if c != x {
                    break;
                }
                reference.pop();
                ref_group.push(id);
            }
            group.sort_unstable();
            ref_group.sort_unstable();
            assert_eq!(group, ref_group, "members at coordinate {x}");
            cursor = x + 1;
        }
    }

    #[test]
    fn single_batch_is_one_burst_at_slot_zero() {
        let mut config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::SingleBatch { size: 64 },
        );
        config.horizon_slots = 1;
        config.drain_slots = 500_000;
        let m = run(config, 0);
        assert_eq!(m.offered, 64);
        assert_eq!(m.completed, 64, "{m:?}");
    }

    #[test]
    fn diurnal_mean_rate_matches_poisson_on_average() {
        let flat = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::Diurnal {
                mean_rate: 0.02,
                amplitude: 0.9,
                period: 5_000.0,
            },
        );
        let mut total = 0u64;
        let trials = 8;
        for t in 0..trials {
            total += run(flat, t).offered;
        }
        let mean = total as f64 / trials as f64;
        let expected = 0.02 * 50_000.0;
        assert!(
            (mean - expected).abs() < expected * 0.15,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn pareto_burst_sizes_stay_clamped() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::ParetoBursts {
                rate: 0.001,
                alpha: 1.2,
                min_size: 5,
                max_size: 200,
            },
        );
        let mut rng = trial_rng(experiment_tag("pareto-test"), config.algorithm, 0, 0);
        let arrival_rng = SmallRng::seed_from_u64(rng.next_u64());
        let mut gen = ArrivalGen::new(config.arrivals, config.horizon_slots, arrival_rng);
        let mut seen_any = false;
        while let Some((_, size)) = gen.next() {
            assert!((5..=200).contains(&size), "burst size {size}");
            seen_any = true;
        }
        assert!(seen_any);
    }

    #[test]
    fn load_per_mille_axis_rescales_to_capacity_fraction() {
        let config = DynamicConfig {
            axis: DynAxis::LoadPerMille,
            ..DynamicConfig::mac_costs(
                AlgorithmKind::Beb,
                ArrivalProcess::PoissonSingles { rate: 0.123 },
                64,
            )
        };
        let resolved = config.resolve(500);
        // Half the success capacity of a 13-slot channel.
        let want = 0.5 / 13.0;
        assert!((resolved.arrivals.offered_load() - want).abs() < 1e-12);
        // n = 0 keeps the configured rate.
        assert_eq!(config.resolve(0), config);
    }

    #[test]
    fn cost_preset_axis_selects_unit_or_mac() {
        let config = DynamicConfig {
            axis: DynAxis::CostPreset { payload_bytes: 64 },
            ..DynamicConfig::abstract_model(
                AlgorithmKind::Beb,
                ArrivalProcess::PoissonSingles { rate: 0.01 },
            )
        };
        let unit = config.resolve(0);
        assert_eq!((unit.success_cost, unit.collision_cost), (1, 1));
        let mac = config.resolve(1);
        assert_eq!((mac.success_cost, mac.collision_cost), (13, 17));
    }

    #[test]
    fn run_with_matches_direct_api_and_reuses_scratch() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::LogBackoff,
            ArrivalProcess::PoissonBursts {
                rate: 0.0008,
                size: 25,
            },
        );
        let mut scratch = DynamicScratch::default();
        let fresh = |trial: u32| {
            let mut rng = trial_rng(experiment_tag("dyn-scratch"), config.algorithm, 0, trial);
            DynamicSim::new(config).run(&mut rng)
        };
        for trial in [0u32, 1, 2, 0] {
            let mut rng = trial_rng(experiment_tag("dyn-scratch"), config.algorithm, 0, trial);
            let via_engine = DynamicSim::run_with(&config, 0, &mut rng, &mut scratch);
            assert_eq!(via_engine, fresh(trial), "trial {trial}");
        }
        // Changing the cell invalidates the cached plan, not the results.
        let other = DynamicConfig {
            algorithm: AlgorithmKind::Sawtooth,
            ..config
        };
        let mut rng = trial_rng(experiment_tag("dyn-scratch"), other.algorithm, 0, 7);
        let a = DynamicSim::run_with(&other, 0, &mut rng, &mut scratch);
        let mut rng = trial_rng(experiment_tag("dyn-scratch"), other.algorithm, 0, 7);
        let b = DynamicSim::new(other).run(&mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_merge_like_concatenated_runs() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonBursts {
                rate: 0.0008,
                size: 30,
            },
        );
        let a = run(config, 0);
        let b = run(config, 1);
        let mut merged = a.clone();
        merged.merge(b.clone());
        assert_eq!(merged.offered, a.offered + b.offered);
        assert_eq!(merged.completed, a.completed + b.completed);
        assert_eq!(merged.wall_slots, a.wall_slots + b.wall_slots);
        assert_eq!(merged.collisions, a.collisions + b.collisions);
        assert_eq!(
            merged.latency_histogram().count(),
            a.latency_histogram().count() + b.latency_histogram().count()
        );
        // Pooled mean is the weighted mean of the parts (exact sums).
        let want = (a.mean_latency() * a.completed as f64 + b.mean_latency() * b.completed as f64)
            / (a.completed + b.completed) as f64;
        assert!((merged.mean_latency() - want).abs() < 1e-9);
    }

    #[test]
    fn trial_summary_conversion_carries_dynamic_fields() {
        let config = DynamicConfig::abstract_model(
            AlgorithmKind::Beb,
            ArrivalProcess::PoissonSingles { rate: 0.01 },
        );
        let m = run(config, 2);
        let t = TrialSummary::from(m.clone());
        assert_eq!(t.offered, m.offered as f64);
        assert_eq!(t.completion_rate, m.completion_rate());
        assert_eq!(t.wall_slots, m.wall_slots as f64);
        assert_eq!(t.mean_latency_slots, m.mean_latency());
        assert_eq!(t.p95_latency_slots, m.p95_latency());
        assert_eq!(t.throughput_pkts_per_slot, m.throughput());
        assert_eq!(t.collisions, m.collisions as f64);
        assert_eq!(t.successes as u64, m.completed);
    }
}
